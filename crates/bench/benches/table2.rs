//! Benches behind Table 2: one SPLLIFT pass over the product line vs.
//! the A2 baseline — a single-configuration run per analysis, plus the
//! full brute-force campaign sharded across worker threads (the
//! `report` binary does the complete cutoff-and-extrapolate version).

use spllift_analyses::{PossibleTypes, ReachingDefs, UninitVars};
use spllift_bench::harness::Harness;
use spllift_bench::ClientAnalysis;
use spllift_benchgen::{subject_by_name, GeneratedSpl};
use spllift_core::{LiftedIcfg, LiftedSolution, ModelMode};
use spllift_features::BddConstraintContext;
use spllift_ifds::IfdsProblem;
use spllift_ir::ProgramIcfg;
use spllift_spl::{a2_campaign_parallel, default_jobs, solve_a2};
use std::hash::Hash;

fn bench_subject(h: &Harness, name: &str) {
    let spl = GeneratedSpl::generate(subject_by_name(name).unwrap());
    let icfg = ProgramIcfg::new(&spl.program);
    let ctx = BddConstraintContext::new(&spl.table);
    let model = spl.model_expr();
    let [full, _] = spl.extrapolation_configs();
    let lifted_icfg = LiftedIcfg::new(&icfg);
    let h = h.group(name);

    macro_rules! cells {
        ($label:expr, $problem:expr) => {{
            let p = $problem;
            h.bench(&format!("spllift/{}", $label), || {
                run_spllift(&p, &icfg, &ctx, &model);
            });
            h.bench(&format!("a2-one-config/{}", $label), || {
                let _ = solve_a2(&p, &lifted_icfg, &full);
            });
        }};
    }
    for analysis in ClientAnalysis::PAPER_THREE {
        match analysis {
            ClientAnalysis::PossibleTypes => {
                cells!(analysis.label(), PossibleTypes::new())
            }
            ClientAnalysis::ReachingDefs => cells!(analysis.label(), ReachingDefs::new()),
            ClientAnalysis::UninitVars => cells!(analysis.label(), UninitVars::new()),
            ClientAnalysis::Taint => unreachable!(),
        }
    }

    // The brute-force arm: the whole A2 campaign, sequential vs. sharded
    // across all cores. Only for subjects whose campaign is cheap enough
    // to sample repeatedly (GPL's 1872 configs belong to `report`, which
    // runs each campaign once with a cutoff).
    if spl.reachable.len() <= 30 {
        let configs = spl.valid_configurations();
        if configs.len() > 128 {
            return;
        }
        let jobs = default_jobs();
        let p = ReachingDefs::new();
        let seq = h.bench(
            &format!("a2-campaign/R. Def./jobs=1 ({} cfgs)", configs.len()),
            || {
                let _ = a2_campaign_parallel(&icfg, &p, &configs, 1);
            },
        );
        let par = h.bench(&format!("a2-campaign/R. Def./jobs={jobs}"), || {
            let _ = a2_campaign_parallel(&icfg, &p, &configs, jobs);
        });
        println!(
            "table2/{name}/a2-campaign: speedup {:.2}x at {jobs} threads",
            seq.mean.as_secs_f64() / par.mean.as_secs_f64().max(1e-9),
        );
    }
}

fn run_spllift<P, D>(
    problem: &P,
    icfg: &ProgramIcfg<'_>,
    ctx: &BddConstraintContext,
    model: &spllift_features::FeatureExpr,
) where
    P: for<'p> IfdsProblem<ProgramIcfg<'p>, Fact = D>,
    D: Clone + Eq + Hash + std::fmt::Debug,
{
    let _ = LiftedSolution::solve(problem, icfg, ctx, Some(model), ModelMode::OnEdges);
}

fn main() {
    let h = Harness::new("table2", 10);
    for name in ["MM08", "GPL", "Lampiro"] {
        bench_subject(&h, name);
    }
}
