//! Criterion benches behind Table 2: one SPLLIFT pass over the product
//! line vs. a single-configuration A2 run (multiply by the valid-config
//! count of Table 1 to recover the full campaign — the `report` binary
//! does the complete, cutoff-and-extrapolate version).

use criterion::{criterion_group, criterion_main, Criterion};
use spllift_analyses::{PossibleTypes, ReachingDefs, UninitVars};
use spllift_bench::ClientAnalysis;
use spllift_benchgen::{subject_by_name, GeneratedSpl};
use spllift_core::{LiftedIcfg, LiftedSolution, ModelMode};
use spllift_features::BddConstraintContext;
use spllift_ifds::IfdsProblem;
use spllift_ir::ProgramIcfg;
use spllift_spl::solve_a2;
use std::hash::Hash;

fn bench_subject(c: &mut Criterion, name: &str) {
    let spl = GeneratedSpl::generate(subject_by_name(name).unwrap());
    let icfg = ProgramIcfg::new(&spl.program);
    let ctx = BddConstraintContext::new(&spl.table);
    let model = spl.model_expr();
    let [full, _] = spl.extrapolation_configs();
    let lifted_icfg = LiftedIcfg::new(&icfg);

    let mut group = c.benchmark_group(format!("table2/{name}"));
    group.sample_size(10);

    macro_rules! cells {
        ($label:expr, $problem:expr) => {{
            let p = $problem;
            group.bench_function(format!("spllift/{}", $label), |b| {
                b.iter(|| {
                    run_spllift(&p, &icfg, &ctx, &model);
                })
            });
            group.bench_function(format!("a2-one-config/{}", $label), |b| {
                b.iter(|| {
                    let _ = solve_a2(&p, &lifted_icfg, &full);
                })
            });
        }};
    }
    for analysis in ClientAnalysis::PAPER_THREE {
        match analysis {
            ClientAnalysis::PossibleTypes => {
                cells!(analysis.label(), PossibleTypes::new())
            }
            ClientAnalysis::ReachingDefs => cells!(analysis.label(), ReachingDefs::new()),
            ClientAnalysis::UninitVars => cells!(analysis.label(), UninitVars::new()),
            ClientAnalysis::Taint => unreachable!(),
        }
    }
    group.finish();
}

fn run_spllift<P, D>(
    problem: &P,
    icfg: &ProgramIcfg<'_>,
    ctx: &BddConstraintContext,
    model: &spllift_features::FeatureExpr,
) where
    P: for<'p> IfdsProblem<ProgramIcfg<'p>, Fact = D>,
    D: Clone + Eq + Hash + std::fmt::Debug,
{
    let _ = LiftedSolution::solve(problem, icfg, ctx, Some(model), ModelMode::OnEdges);
}

fn benches(c: &mut Criterion) {
    for name in ["MM08", "GPL", "Lampiro"] {
        bench_subject(c, name);
    }
}

criterion_group!(table2, benches);
criterion_main!(table2);
