//! Ablations B and C: *where* the feature model enters the computation.
//!
//! * `on-edges` — the paper's final design (§4.2): `m` conjoined on every
//!   edge, early termination during supergraph construction;
//! * `start-value` — the earlier PLAS 2012 design: seed the start value
//!   with `m`, edges unchanged — same results, later termination (the
//!   paper: "it wastes performance ... exchanging the start value only
//!   leads to early termination in the propagation phase");
//! * `ignore` — no model at all (baseline for both).

use spllift_analyses::{ReachingDefs, UninitVars};
use spllift_bench::harness::Harness;
use spllift_benchgen::{subject_by_name, GeneratedSpl};
use spllift_core::{LiftedSolution, ModelMode};
use spllift_features::BddConstraintContext;
use spllift_ifds::IfdsProblem;
use spllift_ir::ProgramIcfg;
use std::hash::Hash;

fn run<P, D>(
    problem: &P,
    icfg: &ProgramIcfg<'_>,
    ctx: &BddConstraintContext,
    model: Option<&spllift_features::FeatureExpr>,
    mode: ModelMode,
) where
    P: for<'p> IfdsProblem<ProgramIcfg<'p>, Fact = D>,
    D: Clone + Eq + Hash + std::fmt::Debug,
{
    let _ = LiftedSolution::solve(problem, icfg, ctx, model, mode);
}

fn bench_subject(h: &Harness, name: &str) {
    let spl = GeneratedSpl::generate(subject_by_name(name).unwrap());
    let icfg = ProgramIcfg::new(&spl.program);
    let ctx = BddConstraintContext::new(&spl.table);
    let model = spl.model_expr();
    let h = h.group(name);

    macro_rules! modes {
        ($label:expr, $p:expr) => {{
            let p = $p;
            h.bench(&format!("on-edges/{}", $label), || {
                run(&p, &icfg, &ctx, Some(&model), ModelMode::OnEdges)
            });
            h.bench(&format!("start-value/{}", $label), || {
                run(&p, &icfg, &ctx, Some(&model), ModelMode::AtStartValue)
            });
            h.bench(&format!("ignore/{}", $label), || {
                run(&p, &icfg, &ctx, None, ModelMode::Ignore)
            });
        }};
    }
    modes!("R. Def.", ReachingDefs::new());
    modes!("U. Var.", UninitVars::new());
}

fn main() {
    let h = Harness::new("ablation_model", 10);
    for name in ["MM08", "GPL"] {
        bench_subject(&h, name);
    }
}
