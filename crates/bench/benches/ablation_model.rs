//! Ablations B and C: *where* the feature model enters the computation.
//!
//! * `on-edges` — the paper's final design (§4.2): `m` conjoined on every
//!   edge, early termination during supergraph construction;
//! * `start-value` — the earlier PLAS 2012 design: seed the start value
//!   with `m`, edges unchanged — same results, later termination (the
//!   paper: "it wastes performance ... exchanging the start value only
//!   leads to early termination in the propagation phase");
//! * `ignore` — no model at all (baseline for both).

use criterion::{criterion_group, criterion_main, Criterion};
use spllift_analyses::{ReachingDefs, UninitVars};
use spllift_benchgen::{subject_by_name, GeneratedSpl};
use spllift_core::{LiftedSolution, ModelMode};
use spllift_features::BddConstraintContext;
use spllift_ifds::IfdsProblem;
use spllift_ir::ProgramIcfg;
use std::hash::Hash;

fn run<P, D>(
    problem: &P,
    icfg: &ProgramIcfg<'_>,
    ctx: &BddConstraintContext,
    model: Option<&spllift_features::FeatureExpr>,
    mode: ModelMode,
) where
    P: for<'p> IfdsProblem<ProgramIcfg<'p>, Fact = D>,
    D: Clone + Eq + Hash + std::fmt::Debug,
{
    let _ = LiftedSolution::solve(problem, icfg, ctx, model, mode);
}

fn bench_subject(c: &mut Criterion, name: &str) {
    let spl = GeneratedSpl::generate(subject_by_name(name).unwrap());
    let icfg = ProgramIcfg::new(&spl.program);
    let ctx = BddConstraintContext::new(&spl.table);
    let model = spl.model_expr();
    let mut group = c.benchmark_group(format!("ablation_model/{name}"));
    group.sample_size(10);

    macro_rules! modes {
        ($label:expr, $p:expr) => {{
            let p = $p;
            group.bench_function(format!("on-edges/{}", $label), |b| {
                b.iter(|| run(&p, &icfg, &ctx, Some(&model), ModelMode::OnEdges))
            });
            group.bench_function(format!("start-value/{}", $label), |b| {
                b.iter(|| run(&p, &icfg, &ctx, Some(&model), ModelMode::AtStartValue))
            });
            group.bench_function(format!("ignore/{}", $label), |b| {
                b.iter(|| run(&p, &icfg, &ctx, None, ModelMode::Ignore))
            });
        }};
    }
    modes!("R. Def.", ReachingDefs::new());
    modes!("U. Var.", UninitVars::new());
    group.finish();
}

fn benches(c: &mut Criterion) {
    for name in ["MM08", "GPL"] {
        bench_subject(c, name);
    }
}

criterion_group!(ablation_model, benches);
criterion_main!(ablation_model);
