use crate::*;
use spllift_features::Configuration;
use spllift_ifds::IfdsSolver;
use spllift_ir::samples::{fig1, shapes};
use spllift_ir::{BinOp, Callee, Operand, ProgramBuilder, ProgramIcfg, Rvalue, StmtRef, Type};

mod taint {
    use super::*;

    #[test]
    fn fig1_product_leaks_secret() {
        // Figure 1b: the product ¬F ∧ G ∧ ¬H leaks.
        let ex = fig1();
        let [_, g, _] = ex.features;
        let product = ex.program.derive_product(&Configuration::from_enabled([g]));
        let icfg = ProgramIcfg::new(&product);
        let analysis = TaintAnalysis::secret_to_print();
        let solver = IfdsSolver::solve(&analysis, &icfg);
        let leaks = analysis.leaks(&icfg, &solver);
        assert_eq!(leaks.len(), 1);
        assert_eq!(leaks[0].sink_call, ex.print_call);
    }

    #[test]
    fn fig1_safe_products_do_not_leak() {
        let ex = fig1();
        let [f, g, h] = ex.features;
        let analysis = TaintAnalysis::secret_to_print();
        // F on: x is overwritten with 0 before the call.
        // G off: y is never assigned from foo.
        // H on: foo zeroes p.
        for config in [
            Configuration::from_enabled([f, g]),
            Configuration::empty(),
            Configuration::from_enabled([g, h]),
            Configuration::from_enabled([f, g, h]),
        ] {
            let product = ex.program.derive_product(&config);
            let icfg = ProgramIcfg::new(&product);
            let solver = IfdsSolver::solve(&analysis, &icfg);
            assert!(
                analysis.leaks(&icfg, &solver).is_empty(),
                "config {config:?} must not leak"
            );
        }
    }

    #[test]
    fn taint_through_binary_ops() {
        let mut pb = ProgramBuilder::new();
        let secret = pb.declare_method("secret", None, &[], Some(Type::Int), true);
        let print = pb.declare_method("print", None, &[Type::Int], None, true);
        let main = pb.declare_method("main", None, &[], None, true);
        for m in [secret, print] {
            let mb = pb.method_body(m);
            pb.finish_body(mb);
        }
        let mut mb = pb.method_body(main);
        let x = mb.local("x", Type::Int);
        let y = mb.local("y", Type::Int);
        mb.invoke(Some(x), Callee::Static(secret), vec![]);
        mb.assign(
            y,
            Rvalue::Binary(BinOp::Add, Operand::Local(x), Operand::IntConst(1)),
        );
        let sink = mb.invoke(None, Callee::Static(print), vec![Operand::Local(y)]);
        mb.ret(None);
        let sink = StmtRef {
            method: main,
            index: sink,
        };
        pb.finish_body(mb);
        pb.add_entry_point(main);
        let p = pb.finish();
        let icfg = ProgramIcfg::new(&p);
        let analysis = TaintAnalysis::secret_to_print();
        let solver = IfdsSolver::solve(&analysis, &icfg);
        let leaks = analysis.leaks(&icfg, &solver);
        assert_eq!(leaks.len(), 1);
        assert_eq!(leaks[0].sink_call, sink);
    }

    #[test]
    fn taint_through_fields_weak_update() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None);
        let fld = pb.add_field(c, "data", Type::Int);
        let secret = pb.declare_method("secret", None, &[], Some(Type::Int), true);
        let print = pb.declare_method("print", None, &[Type::Int], None, true);
        let main = pb.declare_method("main", None, &[], None, true);
        for m in [secret, print] {
            let mb = pb.method_body(m);
            pb.finish_body(mb);
        }
        let mut mb = pb.method_body(main);
        let x = mb.local("x", Type::Int);
        let z = mb.local("z", Type::Int);
        mb.invoke(Some(x), Callee::Static(secret), vec![]);
        mb.field_store(None, fld, Operand::Local(x));
        // Overwrite with a clean value — weak update keeps the taint.
        mb.field_store(None, fld, Operand::IntConst(0));
        mb.assign(
            z,
            Rvalue::FieldLoad {
                base: None,
                field: fld,
            },
        );
        mb.invoke(None, Callee::Static(print), vec![Operand::Local(z)]);
        mb.ret(None);
        pb.finish_body(mb);
        pb.add_entry_point(main);
        let p = pb.finish();
        let icfg = ProgramIcfg::new(&p);
        let analysis = TaintAnalysis::secret_to_print();
        let solver = IfdsSolver::solve(&analysis, &icfg);
        assert_eq!(analysis.leaks(&icfg, &solver).len(), 1);
    }

    #[test]
    fn overwrite_kills_taint() {
        let mut pb = ProgramBuilder::new();
        let secret = pb.declare_method("secret", None, &[], Some(Type::Int), true);
        let print = pb.declare_method("print", None, &[Type::Int], None, true);
        let main = pb.declare_method("main", None, &[], None, true);
        for m in [secret, print] {
            let mb = pb.method_body(m);
            pb.finish_body(mb);
        }
        let mut mb = pb.method_body(main);
        let x = mb.local("x", Type::Int);
        mb.invoke(Some(x), Callee::Static(secret), vec![]);
        mb.assign(x, Rvalue::Use(Operand::IntConst(0)));
        mb.invoke(None, Callee::Static(print), vec![Operand::Local(x)]);
        mb.ret(None);
        pb.finish_body(mb);
        pb.add_entry_point(main);
        let p = pb.finish();
        let icfg = ProgramIcfg::new(&p);
        let analysis = TaintAnalysis::secret_to_print();
        let solver = IfdsSolver::solve(&analysis, &icfg);
        assert!(analysis.leaks(&icfg, &solver).is_empty());
    }
}

mod possible_types {
    use super::*;

    #[test]
    fn allocation_types_tracked_through_copies() {
        // Analyzed as a *plain* program (annotations ignored), the second
        // allocation strongly updates `s`, so only Square survives. (The
        // lifted analysis instead keeps Circle under F — that is exactly
        // the point of SPLLIFT and is asserted in spllift-core's tests.)
        let ex = shapes();
        let icfg = ProgramIcfg::new(&ex.program);
        let solver = IfdsSolver::solve(&PossibleTypes::new(), &icfg);
        let [_, circle, square] = ex.classes;
        let facts = solver.results_at(ex.call_site);
        let types: Vec<_> = facts
            .iter()
            .filter_map(|f| match f {
                TypeFact::Local(_, c) => Some(*c),
                _ => None,
            })
            .collect();
        assert!(types.contains(&square));
        assert!(
            !types.contains(&circle),
            "plain analysis strongly updates s"
        );
    }

    #[test]
    fn types_flow_through_calls_and_returns() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None);
        let make = pb.declare_method("make", None, &[], Some(Type::Ref(c)), true);
        let main = pb.declare_method("main", None, &[], None, true);
        {
            let mut mb = pb.method_body(make);
            let t = mb.local("t", Type::Ref(c));
            mb.assign(t, Rvalue::New(c));
            mb.ret(Some(Operand::Local(t)));
            pb.finish_body(mb);
        }
        let sink;
        {
            let mut mb = pb.method_body(main);
            let r = mb.local("r", Type::Ref(c));
            mb.invoke(Some(r), Callee::Static(make), vec![]);
            sink = mb.nop();
            mb.ret(None);
            pb.finish_body(mb);
        }
        pb.add_entry_point(main);
        let p = pb.finish();
        let icfg = ProgramIcfg::new(&p);
        let solver = IfdsSolver::solve(&PossibleTypes::new(), &icfg);
        let facts = solver.results_at(StmtRef {
            method: main,
            index: sink,
        });
        assert!(facts
            .iter()
            .any(|f| matches!(f, TypeFact::Local(_, cc) if *cc == c)));
    }

    #[test]
    fn reassignment_kills_old_type() {
        let mut pb = ProgramBuilder::new();
        let a = pb.add_class("A", None);
        let b = pb.add_class("B", None);
        let main = pb.declare_method("main", None, &[], None, true);
        let mut mb = pb.method_body(main);
        let x = mb.local("x", Type::Ref(a));
        mb.assign(x, Rvalue::New(a));
        mb.assign(x, Rvalue::New(b));
        let probe = mb.nop();
        mb.ret(None);
        pb.finish_body(mb);
        pb.add_entry_point(main);
        let p = pb.finish();
        let icfg = ProgramIcfg::new(&p);
        let solver = IfdsSolver::solve(&PossibleTypes::new(), &icfg);
        let facts = solver.results_at(StmtRef {
            method: main,
            index: probe,
        });
        assert!(facts.contains(&TypeFact::Local(x, b)));
        assert!(
            !facts.contains(&TypeFact::Local(x, a)),
            "strong update on x"
        );
    }
}

mod reaching_defs {
    use super::*;

    #[test]
    fn defs_reach_uses_and_get_killed() {
        let mut pb = ProgramBuilder::new();
        let main = pb.declare_method("main", None, &[], None, true);
        let mut mb = pb.method_body(main);
        let x = mb.local("x", Type::Int);
        let d1 = mb.assign(x, Rvalue::Use(Operand::IntConst(1)));
        let probe1 = mb.nop();
        let d2 = mb.assign(x, Rvalue::Use(Operand::IntConst(2)));
        let probe2 = mb.nop();
        mb.ret(None);
        pb.finish_body(mb);
        pb.add_entry_point(main);
        let p = pb.finish();
        let icfg = ProgramIcfg::new(&p);
        let solver = IfdsSolver::solve(&ReachingDefs::new(), &icfg);
        let site1 = StmtRef {
            method: main,
            index: d1,
        };
        let site2 = StmtRef {
            method: main,
            index: d2,
        };
        let at1 = solver.results_at(StmtRef {
            method: main,
            index: probe1,
        });
        assert!(at1.contains(&DefFact::Def {
            site: site1,
            var: x
        }));
        let at2 = solver.results_at(StmtRef {
            method: main,
            index: probe2,
        });
        assert!(at2.contains(&DefFact::Def {
            site: site2,
            var: x
        }));
        assert!(
            !at2.contains(&DefFact::Def {
                site: site1,
                var: x
            }),
            "d1 killed by d2"
        );
    }

    #[test]
    fn defs_flow_through_params() {
        let mut pb = ProgramBuilder::new();
        let callee = pb.declare_method("use_it", None, &[Type::Int], None, true);
        let main = pb.declare_method("main", None, &[], None, true);
        let probe;
        {
            let mut mb = pb.method_body(callee);
            probe = mb.nop();
            mb.ret(None);
            pb.finish_body(mb);
        }
        let d1;
        {
            let mut mb = pb.method_body(main);
            let x = mb.local("x", Type::Int);
            d1 = mb.assign(x, Rvalue::Use(Operand::IntConst(1)));
            mb.invoke(None, Callee::Static(callee), vec![Operand::Local(x)]);
            mb.ret(None);
            pb.finish_body(mb);
        }
        pb.add_entry_point(main);
        let p = pb.finish();
        let formal = p.body(callee).param_locals[0];
        let icfg = ProgramIcfg::new(&p);
        let solver = IfdsSolver::solve(&ReachingDefs::new(), &icfg);
        let facts = solver.results_at(StmtRef {
            method: callee,
            index: probe,
        });
        assert!(facts.contains(&DefFact::Def {
            site: StmtRef {
                method: main,
                index: d1
            },
            var: formal
        }));
    }
}

mod uninit {
    use super::*;

    /// main: int x; foo(x) — the formal of foo is potentially uninit.
    #[test]
    fn uninit_flows_into_callee() {
        let mut pb = ProgramBuilder::new();
        let foo = pb.declare_method("foo", None, &[Type::Int], None, true);
        let main = pb.declare_method("main", None, &[], None, true);
        let use_stmt;
        {
            let mut mb = pb.method_body(foo);
            let t = mb.local("t", Type::Int);
            let param = mb.param_local(0);
            use_stmt = mb.assign(
                t,
                Rvalue::Binary(BinOp::Add, Operand::Local(param), Operand::IntConst(1)),
            );
            mb.ret(None);
            pb.finish_body(mb);
        }
        {
            let mut mb = pb.method_body(main);
            let x = mb.local("x", Type::Int);
            mb.invoke(None, Callee::Static(foo), vec![Operand::Local(x)]);
            mb.ret(None);
            pb.finish_body(mb);
        }
        pb.add_entry_point(main);
        let p = pb.finish();
        let formal = p.body(foo).param_locals[0];
        let icfg = ProgramIcfg::new(&p);
        let solver = IfdsSolver::solve(&UninitVars::new(), &icfg);
        let uses = UninitVars::uses_of_uninit(&icfg, &solver);
        assert!(uses.contains(&(
            StmtRef {
                method: foo,
                index: use_stmt
            },
            formal
        )));
    }

    #[test]
    fn assignment_initializes() {
        let mut pb = ProgramBuilder::new();
        let main = pb.declare_method("main", None, &[], None, true);
        let mut mb = pb.method_body(main);
        let x = mb.local("x", Type::Int);
        let y = mb.local("y", Type::Int);
        mb.assign(x, Rvalue::Use(Operand::IntConst(1)));
        let ok_use = mb.assign(y, Rvalue::Use(Operand::Local(x)));
        mb.ret(None);
        pb.finish_body(mb);
        pb.add_entry_point(main);
        let p = pb.finish();
        let icfg = ProgramIcfg::new(&p);
        let solver = IfdsSolver::solve(&UninitVars::new(), &icfg);
        let uses = UninitVars::uses_of_uninit(&icfg, &solver);
        assert!(!uses.iter().any(|(s, _)| *s
            == StmtRef {
                method: main,
                index: ok_use
            }));
    }

    #[test]
    fn branch_sensitive_maybe_uninit() {
        // if (..) x = 1;  use(x)  — x maybe uninit on the fall-through.
        let mut pb = ProgramBuilder::new();
        let main = pb.declare_method("main", None, &[], None, true);
        let mut mb = pb.method_body(main);
        let x = mb.local("x", Type::Int);
        let y = mb.local("y", Type::Int);
        let skip = mb.fresh_label();
        mb.if_cmp(BinOp::Eq, Operand::IntConst(0), Operand::IntConst(0), skip);
        mb.assign(x, Rvalue::Use(Operand::IntConst(1)));
        mb.bind(skip);
        let use_idx = mb.assign(y, Rvalue::Use(Operand::Local(x)));
        mb.ret(None);
        pb.finish_body(mb);
        pb.add_entry_point(main);
        let p = pb.finish();
        let icfg = ProgramIcfg::new(&p);
        let solver = IfdsSolver::solve(&UninitVars::new(), &icfg);
        let uses = UninitVars::uses_of_uninit(&icfg, &solver);
        assert!(uses.contains(&(
            StmtRef {
                method: main,
                index: use_idx
            },
            x
        )));
    }

    #[test]
    fn params_are_initialized() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_method("f", None, &[Type::Int], None, true);
        let main = pb.declare_method("main", None, &[], None, true);
        let probe;
        {
            let mut mb = pb.method_body(f);
            let t = mb.local("t", Type::Int);
            let param = mb.param_local(0);
            probe = mb.assign(t, Rvalue::Use(Operand::Local(param)));
            mb.ret(None);
            pb.finish_body(mb);
        }
        {
            let mut mb = pb.method_body(main);
            mb.invoke(None, Callee::Static(f), vec![Operand::IntConst(7)]);
            mb.ret(None);
            pb.finish_body(mb);
        }
        pb.add_entry_point(main);
        let p = pb.finish();
        let icfg = ProgramIcfg::new(&p);
        let solver = IfdsSolver::solve(&UninitVars::new(), &icfg);
        let uses = UninitVars::uses_of_uninit(&icfg, &solver);
        assert!(!uses.iter().any(|(s, _)| *s
            == StmtRef {
                method: f,
                index: probe
            }));
    }
}

mod typestate {
    use super::*;
    use crate::{State, StateFact, Typestate};

    /// Builds: File with open/close/read; main drives a protocol.
    /// Returns (program-builder artifacts) for several driver shapes.
    fn file_program(
        drive: impl FnOnce(
            &mut spllift_ir::MethodBuilder,
            spllift_ir::ClassId,
            [spllift_ir::MethodId; 3],
        ),
    ) -> (spllift_ir::Program, spllift_ir::ClassId) {
        let mut pb = ProgramBuilder::new();
        let file = pb.add_class("File", None);
        let open = pb.declare_method("open", Some(file), &[], None, false);
        let close = pb.declare_method("close", Some(file), &[], None, false);
        let read = pb.declare_method("read", Some(file), &[], Some(Type::Int), false);
        for m in [open, close, read] {
            let mb = pb.method_body(m);
            pb.finish_body(mb);
        }
        let main = pb.declare_method("main", None, &[], None, true);
        let mut mb = pb.method_body(main);
        drive(&mut mb, file, [open, close, read]);
        mb.ret(None);
        pb.finish_body(mb);
        pb.add_entry_point(main);
        (pb.finish(), file)
    }

    fn analysis(file: spllift_ir::ClassId) -> Typestate {
        Typestate::new(file, ["open"], ["close"], ["read"])
    }

    fn virt(base: spllift_ir::LocalId, name: &str) -> Callee {
        Callee::Virtual {
            base,
            name: name.into(),
            argc: 0,
        }
    }

    #[test]
    fn read_before_open_is_violation() {
        let (p, file) = file_program(|mb, file, _| {
            let f = mb.local("f", Type::Ref(file));
            let r = mb.local("r", Type::Int);
            mb.assign(f, Rvalue::New(file));
            mb.invoke(Some(r), virt(f, "read"), vec![]);
        });
        let icfg = ProgramIcfg::new(&p);
        let a = analysis(file);
        let solver = IfdsSolver::solve(&a, &icfg);
        assert_eq!(a.violations(&icfg, &solver).len(), 1);
    }

    #[test]
    fn open_then_read_is_clean() {
        let (p, file) = file_program(|mb, file, _| {
            let f = mb.local("f", Type::Ref(file));
            let r = mb.local("r", Type::Int);
            mb.assign(f, Rvalue::New(file));
            mb.invoke(None, virt(f, "open"), vec![]);
            mb.invoke(Some(r), virt(f, "read"), vec![]);
        });
        let icfg = ProgramIcfg::new(&p);
        let a = analysis(file);
        let solver = IfdsSolver::solve(&a, &icfg);
        assert!(a.violations(&icfg, &solver).is_empty());
    }

    #[test]
    fn read_after_close_is_violation() {
        let (p, file) = file_program(|mb, file, _| {
            let f = mb.local("f", Type::Ref(file));
            let r = mb.local("r", Type::Int);
            mb.assign(f, Rvalue::New(file));
            mb.invoke(None, virt(f, "open"), vec![]);
            mb.invoke(None, virt(f, "close"), vec![]);
            mb.invoke(Some(r), virt(f, "read"), vec![]);
        });
        let icfg = ProgramIcfg::new(&p);
        let a = analysis(file);
        let solver = IfdsSolver::solve(&a, &icfg);
        assert_eq!(a.violations(&icfg, &solver).len(), 1);
    }

    #[test]
    fn state_follows_copies() {
        let (p, file) = file_program(|mb, file, _| {
            let f = mb.local("f", Type::Ref(file));
            let g = mb.local("g", Type::Ref(file));
            let r = mb.local("r", Type::Int);
            mb.assign(f, Rvalue::New(file));
            mb.invoke(None, virt(f, "open"), vec![]);
            mb.assign(g, Rvalue::Use(Operand::Local(f)));
            mb.invoke(Some(r), virt(g, "read"), vec![]); // g is open
        });
        let icfg = ProgramIcfg::new(&p);
        let a = analysis(file);
        let solver = IfdsSolver::solve(&a, &icfg);
        assert!(a.violations(&icfg, &solver).is_empty());
    }

    #[test]
    fn branch_makes_state_uncertain() {
        // if (..) close(); read();  — may-Closed at the read.
        let (p, file) = file_program(|mb, file, _| {
            let f = mb.local("f", Type::Ref(file));
            let r = mb.local("r", Type::Int);
            mb.assign(f, Rvalue::New(file));
            mb.invoke(None, virt(f, "open"), vec![]);
            let skip = mb.fresh_label();
            mb.if_cmp(BinOp::Eq, Operand::IntConst(1), Operand::IntConst(1), skip);
            mb.invoke(None, virt(f, "close"), vec![]);
            mb.bind(skip);
            mb.invoke(Some(r), virt(f, "read"), vec![]);
        });
        let icfg = ProgramIcfg::new(&p);
        let a = analysis(file);
        let solver = IfdsSolver::solve(&a, &icfg);
        assert_eq!(a.violations(&icfg, &solver).len(), 1);
    }

    #[test]
    fn lifted_typestate_reports_feature_constraint() {
        // #ifdef EAGER_CLOSE close(); #endif  read();
        use spllift_core::{LiftedSolution, ModelMode};
        use spllift_features::{
            BddConstraintContext, ConstraintContext, FeatureExpr, FeatureTable,
        };
        let mut t = FeatureTable::new();
        let feat = t.intern("EAGER_CLOSE");
        let mut pb = ProgramBuilder::new();
        let file = pb.add_class("File", None);
        let open = pb.declare_method("open", Some(file), &[], None, false);
        let close = pb.declare_method("close", Some(file), &[], None, false);
        let read = pb.declare_method("read", Some(file), &[], Some(Type::Int), false);
        for m in [open, close, read] {
            let mb = pb.method_body(m);
            pb.finish_body(mb);
        }
        let main = pb.declare_method("main", None, &[], None, true);
        let mut mb = pb.method_body(main);
        let f = mb.local("f", Type::Ref(file));
        let r = mb.local("r", Type::Int);
        mb.assign(f, Rvalue::New(file));
        mb.invoke(
            None,
            Callee::Virtual {
                base: f,
                name: "open".into(),
                argc: 0,
            },
            vec![],
        );
        mb.push_annotation(FeatureExpr::var(feat));
        mb.invoke(
            None,
            Callee::Virtual {
                base: f,
                name: "close".into(),
                argc: 0,
            },
            vec![],
        );
        mb.pop_annotation();
        let read_idx = mb.invoke(
            Some(r),
            Callee::Virtual {
                base: f,
                name: "read".into(),
                argc: 0,
            },
            vec![],
        );
        let read_stmt = StmtRef {
            method: main,
            index: read_idx,
        };
        mb.ret(None);
        pb.finish_body(mb);
        pb.add_entry_point(main);
        let p = pb.finish();
        let icfg = ProgramIcfg::new(&p);
        let ctx = BddConstraintContext::new(&t);
        let a = Typestate::new(file, ["open"], ["close"], ["read"]);
        let solution = LiftedSolution::solve(&a, &icfg, &ctx, None, ModelMode::Ignore);
        let c = solution.constraint_of(read_stmt, &StateFact::Local(f, State::Closed));
        assert_eq!(c, ctx.lit(feat, true), "read-after-close iff EAGER_CLOSE");
        let open_c = solution.constraint_of(read_stmt, &StateFact::Local(f, State::Open));
        assert_eq!(open_c, ctx.lit(feat, false));
    }
}

mod sanitizers {
    use super::*;

    #[test]
    fn sanitizer_cleans_return_value() {
        // x = secret(); y = hash(x); print(y) — no leak with `hash` as
        // sanitizer, leak without.
        let build = || {
            let mut pb = ProgramBuilder::new();
            let secret = pb.declare_method("secret", None, &[], Some(Type::Int), true);
            let print = pb.declare_method("print", None, &[Type::Int], None, true);
            let hash = pb.declare_method("hash", None, &[Type::Int], Some(Type::Int), true);
            for m in [secret, print] {
                let mb = pb.method_body(m);
                pb.finish_body(mb);
            }
            {
                // hash's body returns its argument — without sanitizer
                // status, taint flows straight through.
                let mut mb = pb.method_body(hash);
                let p = mb.param_local(0);
                mb.ret(Some(Operand::Local(p)));
                pb.finish_body(mb);
            }
            let main = pb.declare_method("main", None, &[], None, true);
            let mut mb = pb.method_body(main);
            let x = mb.local("x", Type::Int);
            let y = mb.local("y", Type::Int);
            mb.invoke(Some(x), Callee::Static(secret), vec![]);
            mb.invoke(Some(y), Callee::Static(hash), vec![Operand::Local(x)]);
            mb.invoke(None, Callee::Static(print), vec![Operand::Local(y)]);
            mb.ret(None);
            pb.finish_body(mb);
            pb.add_entry_point(main);
            pb.finish()
        };
        let p = build();
        let icfg = ProgramIcfg::new(&p);

        let plain = TaintAnalysis::secret_to_print();
        let solver = IfdsSolver::solve(&plain, &icfg);
        assert_eq!(
            plain.leaks(&icfg, &solver).len(),
            1,
            "without sanitizer: leak"
        );

        let sanitized = TaintAnalysis::secret_to_print().with_sanitizers(["hash"]);
        let solver = IfdsSolver::solve(&sanitized, &icfg);
        assert!(sanitized.leaks(&icfg, &solver).is_empty(), "hash() cleans");
    }
}

mod linear_const {
    use super::*;
    use crate::{CpFact, CpValue, LinearConstants};
    use spllift_ide::IdeSolver;

    fn value_at(
        s: &IdeSolver<ProgramIcfg<'_>, CpFact, CpValue>,
        stmt: StmtRef,
        l: spllift_ir::LocalId,
    ) -> CpValue {
        s.value_at(stmt, &CpFact::Local(l))
    }

    #[test]
    fn straight_line_arithmetic() {
        let mut pb = ProgramBuilder::new();
        let main = pb.declare_method("main", None, &[], None, true);
        let mut mb = pb.method_body(main);
        let x = mb.local("x", Type::Int);
        let y = mb.local("y", Type::Int);
        mb.assign(x, Rvalue::Use(Operand::IntConst(5)));
        mb.assign(
            y,
            Rvalue::Binary(BinOp::Mul, Operand::Local(x), Operand::IntConst(3)),
        );
        mb.assign(
            y,
            Rvalue::Binary(BinOp::Add, Operand::Local(y), Operand::IntConst(2)),
        );
        let probe = mb.nop();
        mb.ret(None);
        pb.finish_body(mb);
        pb.add_entry_point(main);
        let p = pb.finish();
        let icfg = ProgramIcfg::new(&p);
        let s = IdeSolver::solve(&LinearConstants::new(), &icfg);
        let at = StmtRef {
            method: main,
            index: probe,
        };
        assert_eq!(value_at(&s, at, x), CpValue::Const(5));
        assert_eq!(value_at(&s, at, y), CpValue::Const(17)); // 5*3+2
    }

    #[test]
    fn branch_merges() {
        // if (..) x = 4 else x = 4  → Const(4);  then x = x - x → ⊥.
        let mut pb = ProgramBuilder::new();
        let main = pb.declare_method("main", None, &[], None, true);
        let mut mb = pb.method_body(main);
        let x = mb.local("x", Type::Int);
        let else_l = mb.fresh_label();
        let join_l = mb.fresh_label();
        mb.if_cmp(
            BinOp::Eq,
            Operand::IntConst(0),
            Operand::IntConst(0),
            else_l,
        );
        mb.assign(x, Rvalue::Use(Operand::IntConst(4)));
        mb.goto(join_l);
        mb.bind(else_l);
        mb.assign(x, Rvalue::Use(Operand::IntConst(4)));
        mb.bind(join_l);
        let probe1 = mb.nop();
        mb.assign(
            x,
            Rvalue::Binary(BinOp::Add, Operand::Local(x), Operand::Local(x)),
        );
        let probe2 = mb.nop();
        mb.ret(None);
        pb.finish_body(mb);
        pb.add_entry_point(main);
        let p = pb.finish();
        let icfg = ProgramIcfg::new(&p);
        let s = IdeSolver::solve(&LinearConstants::new(), &icfg);
        assert_eq!(
            value_at(
                &s,
                StmtRef {
                    method: main,
                    index: probe1
                },
                x
            ),
            CpValue::Const(4)
        );
        // x + x is not linear in ONE variable in our encoding → ⊥.
        assert_eq!(
            value_at(
                &s,
                StmtRef {
                    method: main,
                    index: probe2
                },
                x
            ),
            CpValue::Bot
        );
    }

    #[test]
    fn constants_flow_through_calls() {
        // inc(v) { return v + 1 }  main: r = inc(41)  → r = 42.
        let mut pb = ProgramBuilder::new();
        let inc = pb.declare_method("inc", None, &[Type::Int], Some(Type::Int), true);
        let main = pb.declare_method("main", None, &[], None, true);
        {
            let mut mb = pb.method_body(inc);
            let v = mb.param_local(0);
            let r = mb.local("r", Type::Int);
            mb.assign(
                r,
                Rvalue::Binary(BinOp::Add, Operand::Local(v), Operand::IntConst(1)),
            );
            mb.ret(Some(Operand::Local(r)));
            pb.finish_body(mb);
        }
        let probe;
        let r;
        {
            let mut mb = pb.method_body(main);
            r = mb.local("r", Type::Int);
            mb.invoke(Some(r), Callee::Static(inc), vec![Operand::IntConst(41)]);
            probe = mb.nop();
            mb.ret(None);
            pb.finish_body(mb);
        }
        pb.add_entry_point(main);
        let p = pb.finish();
        let icfg = ProgramIcfg::new(&p);
        let s = IdeSolver::solve(&LinearConstants::new(), &icfg);
        assert_eq!(
            value_at(
                &s,
                StmtRef {
                    method: main,
                    index: probe
                },
                r
            ),
            CpValue::Const(42)
        );
    }

    #[test]
    fn two_contexts_stay_precise() {
        // r1 = inc(1); r2 = inc(10): context sensitivity keeps 2 and 11.
        let mut pb = ProgramBuilder::new();
        let inc = pb.declare_method("inc", None, &[Type::Int], Some(Type::Int), true);
        let main = pb.declare_method("main", None, &[], None, true);
        {
            let mut mb = pb.method_body(inc);
            let v = mb.param_local(0);
            let r = mb.local("r", Type::Int);
            mb.assign(
                r,
                Rvalue::Binary(BinOp::Add, Operand::Local(v), Operand::IntConst(1)),
            );
            mb.ret(Some(Operand::Local(r)));
            pb.finish_body(mb);
        }
        let (r1, r2, probe);
        {
            let mut mb = pb.method_body(main);
            r1 = mb.local("r1", Type::Int);
            r2 = mb.local("r2", Type::Int);
            mb.invoke(Some(r1), Callee::Static(inc), vec![Operand::IntConst(1)]);
            mb.invoke(Some(r2), Callee::Static(inc), vec![Operand::IntConst(10)]);
            probe = mb.nop();
            mb.ret(None);
            pb.finish_body(mb);
        }
        pb.add_entry_point(main);
        let p = pb.finish();
        let icfg = ProgramIcfg::new(&p);
        let s = IdeSolver::solve(&LinearConstants::new(), &icfg);
        let at = StmtRef {
            method: main,
            index: probe,
        };
        assert_eq!(value_at(&s, at, r1), CpValue::Const(2));
        assert_eq!(value_at(&s, at, r2), CpValue::Const(11));
    }

    #[test]
    fn loop_variable_is_bottom() {
        let mut pb = ProgramBuilder::new();
        let main = pb.declare_method("main", None, &[], None, true);
        let mut mb = pb.method_body(main);
        let x = mb.local("x", Type::Int);
        mb.assign(x, Rvalue::Use(Operand::IntConst(0)));
        let head = mb.fresh_label();
        let done = mb.fresh_label();
        mb.bind(head);
        mb.if_cmp(BinOp::Ge, Operand::Local(x), Operand::IntConst(10), done);
        mb.assign(
            x,
            Rvalue::Binary(BinOp::Add, Operand::Local(x), Operand::IntConst(1)),
        );
        mb.goto(head);
        mb.bind(done);
        let probe = mb.nop();
        mb.ret(None);
        pb.finish_body(mb);
        pb.add_entry_point(main);
        let p = pb.finish();
        let icfg = ProgramIcfg::new(&p);
        let s = IdeSolver::solve(&LinearConstants::new(), &icfg);
        assert_eq!(
            value_at(
                &s,
                StmtRef {
                    method: main,
                    index: probe
                },
                x
            ),
            CpValue::Bot
        );
    }
}
