//! Linear constant propagation — the original motivating client of the
//! IDE framework (Sagiv, Reps, Horwitz, TAPSOFT 1995, "Precise
//! interprocedural dataflow analysis with applications to constant
//! propagation"), which the paper builds on (§2.4).
//!
//! Unlike the four IFDS clients, this is a *native IDE problem*: edge
//! functions are the linear transformers `λv. a·v + b`, closed under
//! composition, with a constant-or-⊥ join. It runs on the same
//! [`ProgramIcfg`] and the same [`spllift_ide::IdeSolver`] as the lifted
//! analyses, demonstrating that the IDE layer is a complete framework and
//! not merely a vehicle for the lifting. (SPLLIFT itself lifts IFDS
//! problems only — the paper's own restriction, §5.)

use crate::common::*;
use spllift_ide::{EdgeFn, IdeProblem};
use spllift_ir::{BinOp, LocalId, MethodId, Operand, ProgramIcfg, Rvalue, StmtKind, StmtRef};

/// A constant-propagation fact: a local variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CpFact {
    /// The tautology fact.
    Zero,
    /// The tracked local.
    Local(LocalId),
}

/// The constant lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpValue {
    /// ⊤ — unreached / no information.
    Top,
    /// A known constant.
    Const(i64),
    /// ⊥ — provably non-constant.
    Bot,
}

/// Edge functions: the linear transformers of the IDE paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinearEdge {
    /// `λv. ⊤` — the kill function.
    Kill,
    /// `λv. a·v + b` (identity is `a=1, b=0`; constants are `a=0`).
    Linear(i64, i64),
    /// `λv. ⊥` — definitely non-constant.
    Bot,
}

impl LinearEdge {
    const ID: LinearEdge = LinearEdge::Linear(1, 0);
}

impl EdgeFn<CpValue> for LinearEdge {
    fn apply(&self, v: &CpValue) -> CpValue {
        match (self, v) {
            (LinearEdge::Kill, _) => CpValue::Top,
            (LinearEdge::Bot, _) => CpValue::Bot,
            // A constant edge ignores its input entirely.
            (LinearEdge::Linear(0, b), _) => CpValue::Const(*b),
            (LinearEdge::Linear(..), CpValue::Top) => CpValue::Top,
            (LinearEdge::Linear(..), CpValue::Bot) => CpValue::Bot,
            (LinearEdge::Linear(a, b), CpValue::Const(c)) => {
                CpValue::Const(a.wrapping_mul(*c).wrapping_add(*b))
            }
        }
    }

    fn compose_with(&self, after: &Self) -> Self {
        match (self, after) {
            (LinearEdge::Kill, _) | (_, LinearEdge::Kill) => LinearEdge::Kill,
            (_, LinearEdge::Linear(0, b)) => LinearEdge::Linear(0, *b),
            (LinearEdge::Bot, LinearEdge::Linear(..)) => LinearEdge::Bot,
            (_, LinearEdge::Bot) => LinearEdge::Bot,
            (LinearEdge::Linear(a1, b1), LinearEdge::Linear(a2, b2)) => {
                // after(self(v)) = a2·(a1·v + b1) + b2.
                LinearEdge::Linear(a2.wrapping_mul(*a1), a2.wrapping_mul(*b1).wrapping_add(*b2))
            }
        }
    }

    fn join(&self, other: &Self) -> Self {
        match (self, other) {
            (LinearEdge::Kill, f) | (f, LinearEdge::Kill) => *f,
            (a, b) if a == b => *a,
            _ => LinearEdge::Bot,
        }
    }

    fn is_kill(&self) -> bool {
        *self == LinearEdge::Kill
    }
}

/// Inter-procedural linear constant propagation over the IR.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinearConstants;

impl LinearConstants {
    /// Creates the analysis.
    pub fn new() -> Self {
        LinearConstants
    }

    /// The edge transforming `source fact → target` for an assignment
    /// rvalue, when the rvalue is a linear function of a single local
    /// (`Some((source, edge))`), a constant (`source = Zero`), or
    /// non-linear (`None` → generate ⊥).
    fn linear_of(rvalue: &Rvalue) -> Option<(CpFact, LinearEdge)> {
        match rvalue {
            Rvalue::Use(Operand::IntConst(c)) => Some((CpFact::Zero, LinearEdge::Linear(0, *c))),
            Rvalue::Use(Operand::BoolConst(b)) => {
                Some((CpFact::Zero, LinearEdge::Linear(0, *b as i64)))
            }
            Rvalue::Use(Operand::Local(l)) => Some((CpFact::Local(*l), LinearEdge::ID)),
            Rvalue::Binary(op, Operand::Local(l), Operand::IntConst(c))
            | Rvalue::Binary(op, Operand::IntConst(c), Operand::Local(l)) => {
                let commuted = matches!(rvalue, Rvalue::Binary(_, Operand::IntConst(_), _));
                match op {
                    BinOp::Add => Some((CpFact::Local(*l), LinearEdge::Linear(1, *c))),
                    BinOp::Mul => Some((CpFact::Local(*l), LinearEdge::Linear(*c, 0))),
                    BinOp::Sub if !commuted => Some((CpFact::Local(*l), LinearEdge::Linear(1, -c))),
                    BinOp::Sub => Some((CpFact::Local(*l), LinearEdge::Linear(-1, *c))),
                    _ => None,
                }
            }
            Rvalue::Binary(
                BinOp::Add | BinOp::Sub | BinOp::Mul,
                Operand::IntConst(c1),
                Operand::IntConst(c2),
            ) => {
                let v = match rvalue {
                    Rvalue::Binary(BinOp::Add, ..) => c1 + c2,
                    Rvalue::Binary(BinOp::Sub, ..) => c1 - c2,
                    _ => c1 * c2,
                };
                Some((CpFact::Zero, LinearEdge::Linear(0, v)))
            }
            _ => None,
        }
    }
}

impl<'p> IdeProblem<ProgramIcfg<'p>> for LinearConstants {
    type Fact = CpFact;
    type Value = CpValue;
    type EF = LinearEdge;

    fn zero(&self) -> CpFact {
        CpFact::Zero
    }

    fn top(&self) -> CpValue {
        CpValue::Top
    }

    fn seed_value(&self) -> CpValue {
        CpValue::Bot // "reached, nothing known"
    }

    fn join_values(&self, a: &CpValue, b: &CpValue) -> CpValue {
        match (a, b) {
            (CpValue::Top, v) | (v, CpValue::Top) => *v,
            (CpValue::Const(x), CpValue::Const(y)) if x == y => CpValue::Const(*x),
            _ => CpValue::Bot,
        }
    }

    fn id_edge(&self) -> LinearEdge {
        LinearEdge::ID
    }

    fn flow_normal(
        &self,
        icfg: &ProgramIcfg<'p>,
        curr: StmtRef,
        _succ: StmtRef,
        d: &CpFact,
    ) -> Vec<(CpFact, LinearEdge)> {
        let program = icfg.program();
        let kind = &program.stmt(curr).kind;
        if matches!(kind, StmtKind::Invoke { .. }) {
            return self.flow_call_to_return(icfg, curr, curr, d);
        }
        match kind {
            StmtKind::Assign { target, rvalue } => {
                let t = CpFact::Local(*target);
                match Self::linear_of(rvalue) {
                    Some((source, edge)) => {
                        if *d == source {
                            let mut out = vec![(t, edge)];
                            if source != t {
                                out.push((*d, LinearEdge::ID));
                            }
                            out
                        } else if *d == t {
                            Vec::new() // strong update
                        } else {
                            vec![(*d, LinearEdge::ID)]
                        }
                    }
                    None => {
                        // Non-linear: the target is ⊥, generated from 0.
                        if *d == CpFact::Zero {
                            vec![(CpFact::Zero, LinearEdge::ID), (t, LinearEdge::Bot)]
                        } else if *d == t {
                            Vec::new()
                        } else {
                            vec![(*d, LinearEdge::ID)]
                        }
                    }
                }
            }
            _ => vec![(*d, LinearEdge::ID)],
        }
    }

    fn flow_call(
        &self,
        icfg: &ProgramIcfg<'p>,
        call: StmtRef,
        callee: MethodId,
        d: &CpFact,
    ) -> Vec<(CpFact, LinearEdge)> {
        match d {
            CpFact::Zero => {
                // Constants passed as actuals enter through the zero fact.
                let mut out = vec![(CpFact::Zero, LinearEdge::ID)];
                if let StmtKind::Invoke { args, .. } = &icfg.program().stmt(call).kind {
                    let callee_body = icfg.program().body(callee);
                    for (i, a) in args.iter().enumerate() {
                        if let Operand::IntConst(c) = a {
                            if let Some(&formal) = callee_body.param_locals.get(i) {
                                out.push((CpFact::Local(formal), LinearEdge::Linear(0, *c)));
                            }
                        }
                    }
                }
                out
            }
            CpFact::Local(l) => arg_bindings(icfg.program(), call, callee)
                .into_iter()
                .filter(|(actual, _)| actual == l)
                .map(|(_, formal)| (CpFact::Local(formal), LinearEdge::ID))
                .collect(),
        }
    }

    fn flow_return(
        &self,
        icfg: &ProgramIcfg<'p>,
        call: StmtRef,
        _callee: MethodId,
        exit: StmtRef,
        _return_site: StmtRef,
        d: &CpFact,
    ) -> Vec<(CpFact, LinearEdge)> {
        let program = icfg.program();
        match d {
            CpFact::Zero => {
                let mut out = vec![(CpFact::Zero, LinearEdge::ID)];
                // A constant return value flows out through zero.
                if let StmtKind::Return {
                    value: Some(Operand::IntConst(c)),
                } = &program.stmt(exit).kind
                {
                    if let Some(res) = result_local(program, call) {
                        out.push((CpFact::Local(res), LinearEdge::Linear(0, *c)));
                    }
                }
                out
            }
            CpFact::Local(l) => {
                if returned_local(program, exit) == Some(*l) {
                    result_local(program, call)
                        .map(|r| (CpFact::Local(r), LinearEdge::ID))
                        .into_iter()
                        .collect()
                } else {
                    Vec::new()
                }
            }
        }
    }

    fn flow_call_to_return(
        &self,
        icfg: &ProgramIcfg<'p>,
        call: StmtRef,
        _return_site: StmtRef,
        d: &CpFact,
    ) -> Vec<(CpFact, LinearEdge)> {
        let res = result_local(icfg.program(), call);
        match d {
            CpFact::Local(l) if Some(*l) == res => Vec::new(),
            other => vec![(*other, LinearEdge::ID)],
        }
    }
}
