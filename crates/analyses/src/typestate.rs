//! A typestate-like analysis in the style of Fink et al. / Naeem &
//! Lhoták, which the paper lists among the classic IFDS clients (§1:
//! "typestate [2, 3, 6]").
//!
//! Tracks objects of one class through a two-state open/closed protocol:
//! allocation starts *closed*, a configured `open` method moves to
//! *open*, a `close` method back to *closed*, and a set of `use` methods
//! *require* the open state. Copies propagate states without alias
//! analysis (the paper's own implementation shares this simplification —
//! see its §5 discussion of feature-insensitive points-to information).
//!
//! Lifted with SPLLIFT, the analysis answers questions like "under which
//! feature combinations may this stream be read after it was closed?".

use crate::common::*;
use spllift_ifds::{Icfg, IfdsProblem, IfdsSolver};
use spllift_ir::{
    Callee, ClassId, LocalId, MethodId, Operand, ProgramIcfg, Rvalue, StmtKind, StmtRef,
};

/// The two protocol states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum State {
    /// The resource is open / acquired.
    Open,
    /// The resource is closed / released (also the post-allocation state).
    Closed,
}

/// A typestate fact: a tracked local is possibly in the given state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StateFact {
    /// The tautology fact.
    Zero,
    /// Local `l` may be in state `s`.
    Local(LocalId, State),
}

/// A protocol violation: a `use` method may be invoked while closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// The offending call.
    pub call: StmtRef,
    /// The receiver that may be closed.
    pub receiver: LocalId,
}

/// The open/closed typestate IFDS problem.
#[derive(Debug, Clone)]
pub struct Typestate {
    tracked: ClassId,
    open_methods: Vec<String>,
    close_methods: Vec<String>,
    use_methods: Vec<String>,
}

impl Typestate {
    /// Tracks instances of `tracked`; `open`/`close` name the transition
    /// methods, `use_methods` the operations requiring the open state.
    pub fn new<S: Into<String>>(
        tracked: ClassId,
        open: impl IntoIterator<Item = S>,
        close: impl IntoIterator<Item = S>,
        use_methods: impl IntoIterator<Item = S>,
    ) -> Self {
        Typestate {
            tracked,
            open_methods: open.into_iter().map(Into::into).collect(),
            close_methods: close.into_iter().map(Into::into).collect(),
            use_methods: use_methods.into_iter().map(Into::into).collect(),
        }
    }

    /// The receiver of a virtual call at `s`, if any.
    fn receiver(icfg: &ProgramIcfg<'_>, s: StmtRef) -> Option<LocalId> {
        match &icfg.program().stmt(s).kind {
            StmtKind::Invoke {
                callee: Callee::Virtual { base, .. },
                ..
            } => Some(*base),
            _ => None,
        }
    }

    fn protocol_effect(&self, icfg: &ProgramIcfg<'_>, s: StmtRef) -> Option<State> {
        let name = called_name(icfg.program(), s)?;
        if self.open_methods.contains(&name) {
            Some(State::Open)
        } else if self.close_methods.contains(&name) {
            Some(State::Closed)
        } else {
            None
        }
    }

    /// Applies the protocol at a call site to a fact (used both for the
    /// call-to-return function and for invokes treated as normal
    /// statements).
    fn through_call(&self, icfg: &ProgramIcfg<'_>, call: StmtRef, d: &StateFact) -> Vec<StateFact> {
        let program = icfg.program();
        let res = result_local(program, call);
        match d {
            StateFact::Zero => {
                let mut out = vec![StateFact::Zero];
                // Allocation via factory? No: allocations are Assign/New,
                // handled in flow_normal. Nothing generated here.
                let _ = &mut out;
                out
            }
            StateFact::Local(l, state) => {
                if Some(*l) == res {
                    return Vec::new(); // result overwritten
                }
                match (Self::receiver(icfg, call), self.protocol_effect(icfg, call)) {
                    (Some(base), Some(new_state)) if base == *l => {
                        vec![StateFact::Local(*l, new_state)]
                    }
                    _ => vec![StateFact::Local(*l, *state)],
                }
            }
        }
    }

    /// All protocol violations in a solved instance: `use` calls whose
    /// receiver may be closed.
    pub fn violations(
        &self,
        icfg: &ProgramIcfg<'_>,
        solver: &IfdsSolver<ProgramIcfg<'_>, StateFact>,
    ) -> Vec<Violation> {
        let mut out = Vec::new();
        for m in icfg.methods() {
            for s in icfg.stmts_of(m) {
                let Some(name) = called_name(icfg.program(), s) else {
                    continue;
                };
                if !self.use_methods.contains(&name) {
                    continue;
                }
                let Some(base) = Self::receiver(icfg, s) else {
                    continue;
                };
                if solver
                    .results_at(s)
                    .contains(&StateFact::Local(base, State::Closed))
                {
                    out.push(Violation {
                        call: s,
                        receiver: base,
                    });
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

impl<'p> IfdsProblem<ProgramIcfg<'p>> for Typestate {
    type Fact = StateFact;

    fn zero(&self) -> StateFact {
        StateFact::Zero
    }

    fn flow_normal(
        &self,
        icfg: &ProgramIcfg<'p>,
        curr: StmtRef,
        _succ: StmtRef,
        d: &StateFact,
    ) -> Vec<StateFact> {
        let program = icfg.program();
        match &program.stmt(curr).kind {
            StmtKind::Assign { target, rvalue } => match rvalue {
                Rvalue::New(c) if *c == self.tracked => {
                    if *d == StateFact::Zero {
                        vec![StateFact::Zero, StateFact::Local(*target, State::Closed)]
                    } else if matches!(d, StateFact::Local(l, _) if l == target) {
                        Vec::new()
                    } else {
                        vec![*d]
                    }
                }
                Rvalue::Use(Operand::Local(src)) => match d {
                    StateFact::Local(l, st) if l == src => {
                        vec![*d, StateFact::Local(*target, *st)]
                    }
                    StateFact::Local(l, _) if l == target => Vec::new(),
                    other => vec![*other],
                },
                _ => match d {
                    StateFact::Local(l, _) if l == target => Vec::new(),
                    other => vec![*other],
                },
            },
            StmtKind::Invoke { .. } => self.through_call(icfg, curr, d),
            _ => vec![*d],
        }
    }

    fn flow_call(
        &self,
        icfg: &ProgramIcfg<'p>,
        call: StmtRef,
        callee: MethodId,
        d: &StateFact,
    ) -> Vec<StateFact> {
        match d {
            StateFact::Zero => vec![StateFact::Zero],
            StateFact::Local(l, st) => arg_bindings(icfg.program(), call, callee)
                .into_iter()
                .filter(|(actual, _)| actual == l)
                .map(|(_, formal)| StateFact::Local(formal, *st))
                .collect(),
        }
    }

    fn flow_return(
        &self,
        icfg: &ProgramIcfg<'p>,
        call: StmtRef,
        _callee: MethodId,
        exit: StmtRef,
        _return_site: StmtRef,
        d: &StateFact,
    ) -> Vec<StateFact> {
        let program = icfg.program();
        match d {
            StateFact::Zero => vec![StateFact::Zero],
            StateFact::Local(l, st) => {
                if returned_local(program, exit) == Some(*l) {
                    result_local(program, call)
                        .map(|r| StateFact::Local(r, *st))
                        .into_iter()
                        .collect()
                } else {
                    Vec::new()
                }
            }
        }
    }

    fn flow_call_to_return(
        &self,
        icfg: &ProgramIcfg<'p>,
        call: StmtRef,
        _return_site: StmtRef,
        d: &StateFact,
    ) -> Vec<StateFact> {
        // When the callee has a body and the receiver is passed in, the
        // protocol transition already happens inside the callee; we still
        // apply the transition here because the receiver local itself is
        // not passed as an ordinary argument in this IR (virtual calls
        // bind it to `this` — whose state flows back only through
        // returns). Applying the transition at the call site keeps the
        // receiver's caller-side state in sync.
        self.through_call(icfg, call, d)
    }
}
