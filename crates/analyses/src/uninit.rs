//! Inter-procedural uninitialized-variables analysis.
//!
//! The paper's third client (§6.2): "finds potentially uninitialized
//! variables. Assume a call foo(x), where x is potentially uninitialized.
//! Our analysis will determine that all uses of the formal parameter of
//! foo may also access an uninitialized value."
//!
//! This is also the motivating bug class of the paper's §1: a Java SPL can
//! compile per-product yet use a variable that is undefined in *some*
//! configurations — the lifted analysis reports the exact configurations.

use crate::common::*;
use spllift_ifds::IfdsProblem;
use spllift_ir::{LocalId, MethodId, ProgramIcfg, StmtKind, StmtRef};

/// An uninitialized-variable fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UninitFact {
    /// The tautology fact.
    Zero,
    /// The local may be read before initialization.
    Local(LocalId),
}

/// The inter-procedural uninitialized-variables IFDS problem.
#[derive(Debug, Clone, Copy, Default)]
pub struct UninitVars;

impl UninitVars {
    /// Creates the analysis.
    pub fn new() -> Self {
        UninitVars
    }

    /// Locals of `m` that start out uninitialized: everything except
    /// parameters and `this`.
    fn initially_uninit(icfg: &ProgramIcfg<'_>, m: MethodId) -> Vec<LocalId> {
        let body = icfg.program().body(m);
        (0..body.locals.len() as u32)
            .map(LocalId)
            .filter(|l| !body.param_locals.contains(l) && body.this_local != Some(*l))
            .collect()
    }

    /// Statements of the solved program that *use* a potentially
    /// uninitialized local, with the offending local.
    pub fn uses_of_uninit(
        icfg: &ProgramIcfg<'_>,
        solver: &spllift_ifds::IfdsSolver<ProgramIcfg<'_>, UninitFact>,
    ) -> Vec<(StmtRef, LocalId)> {
        use spllift_ifds::Icfg as _;
        let mut out = Vec::new();
        for m in icfg.methods() {
            for s in icfg.stmts_of(m) {
                let facts = solver.results_at(s);
                for u in icfg.program().stmt(s).kind.uses() {
                    if facts.contains(&UninitFact::Local(u)) {
                        out.push((s, u));
                    }
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

impl<'p> IfdsProblem<ProgramIcfg<'p>> for UninitVars {
    type Fact = UninitFact;

    fn zero(&self) -> UninitFact {
        UninitFact::Zero
    }

    fn flow_normal(
        &self,
        icfg: &ProgramIcfg<'p>,
        curr: StmtRef,
        _succ: StmtRef,
        d: &UninitFact,
    ) -> Vec<UninitFact> {
        let program = icfg.program();
        let kind = &program.stmt(curr).kind;
        // The synthetic entry nop generates "uninitialized" for every
        // non-parameter local.
        if curr.index == 0 {
            return match d {
                UninitFact::Zero => {
                    let mut out = vec![UninitFact::Zero];
                    out.extend(
                        Self::initially_uninit(icfg, curr.method)
                            .into_iter()
                            .map(UninitFact::Local),
                    );
                    out
                }
                other => vec![*other],
            };
        }
        if matches!(kind, StmtKind::Invoke { .. }) {
            return self.flow_call_to_return(icfg, curr, curr, d);
        }
        match kind {
            StmtKind::Assign { target, rvalue } => match d {
                // Uninitializedness propagates through reads: x = y + 1
                // with y uninit leaves x possibly uninit (garbage).
                UninitFact::Local(l) if rvalue.uses().contains(l) => {
                    vec![*d, UninitFact::Local(*target)]
                }
                UninitFact::Local(l) if l == target => Vec::new(),
                other => vec![*other],
            },
            _ => vec![*d],
        }
    }

    fn flow_call(
        &self,
        icfg: &ProgramIcfg<'p>,
        call: StmtRef,
        callee: MethodId,
        d: &UninitFact,
    ) -> Vec<UninitFact> {
        match d {
            UninitFact::Zero => vec![UninitFact::Zero],
            UninitFact::Local(l) => arg_bindings(icfg.program(), call, callee)
                .into_iter()
                .filter(|(actual, _)| actual == l)
                .map(|(_, formal)| UninitFact::Local(formal))
                .collect(),
        }
    }

    fn flow_return(
        &self,
        icfg: &ProgramIcfg<'p>,
        call: StmtRef,
        _callee: MethodId,
        exit: StmtRef,
        _return_site: StmtRef,
        d: &UninitFact,
    ) -> Vec<UninitFact> {
        let program = icfg.program();
        match d {
            UninitFact::Zero => vec![UninitFact::Zero],
            UninitFact::Local(l) => {
                if returned_local(program, exit) == Some(*l) {
                    result_local(program, call)
                        .map(UninitFact::Local)
                        .into_iter()
                        .collect()
                } else {
                    Vec::new()
                }
            }
        }
    }

    fn flow_call_to_return(
        &self,
        icfg: &ProgramIcfg<'p>,
        call: StmtRef,
        _return_site: StmtRef,
        d: &UninitFact,
    ) -> Vec<UninitFact> {
        let res = result_local(icfg.program(), call);
        match d {
            UninitFact::Local(l) if Some(*l) == res => Vec::new(),
            other => vec![*other],
        }
    }
}
