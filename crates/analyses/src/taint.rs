//! Secure-information-flow (taint) analysis — the paper's running example.

use crate::common::*;
use spllift_ifds::{Icfg, IfdsProblem, IfdsSolver};
use spllift_ir::{FieldId, LocalId, MethodId, Operand, ProgramIcfg, Rvalue, StmtKind, StmtRef};
use std::collections::HashSet;

/// A taint fact: "this storage location may hold a secret value".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TaintFact {
    /// The tautology fact.
    Zero,
    /// A (method-scoped) local may be tainted.
    Local(LocalId),
    /// A field may be tainted (field-sensitive in the field, abstracting
    /// from receiver objects — the paper's treatment, §6.2).
    Field(FieldId),
    /// Some array element may be tainted (one summary cell for all
    /// arrays: index- and base-insensitive weak updates, the paper's
    /// treatment of "field and array assignments", §6.2).
    ArrayElem,
}

/// A detected source→sink flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Leak {
    /// The sink call statement.
    pub sink_call: StmtRef,
    /// The tainted local passed to the sink.
    pub tainted_arg: LocalId,
}

/// Inter-procedural taint analysis: values returned by *source* methods
/// are tainted; passing a tainted value to a *sink* method is a leak.
///
/// Matching is by unqualified method name, mirroring how such analyses are
/// typically configured.
#[derive(Debug, Clone)]
pub struct TaintAnalysis {
    sources: HashSet<String>,
    sinks: HashSet<String>,
    sanitizers: HashSet<String>,
}

impl TaintAnalysis {
    /// Creates an analysis with the given source and sink method names.
    pub fn new<S: Into<String>>(
        sources: impl IntoIterator<Item = S>,
        sinks: impl IntoIterator<Item = S>,
    ) -> Self {
        TaintAnalysis {
            sources: sources.into_iter().map(Into::into).collect(),
            sinks: sinks.into_iter().map(Into::into).collect(),
            sanitizers: HashSet::new(),
        }
    }

    /// Declares *sanitizer* methods: their return value is always clean,
    /// even when computed from tainted inputs (e.g. `hash`, `escape`).
    #[must_use]
    pub fn with_sanitizers<S: Into<String>>(
        mut self,
        sanitizers: impl IntoIterator<Item = S>,
    ) -> Self {
        self.sanitizers = sanitizers.into_iter().map(Into::into).collect();
        self
    }

    /// The default configuration of the examples: `secret` → `print`.
    pub fn secret_to_print() -> Self {
        Self::new(["secret"], ["print"])
    }

    fn is_source(&self, icfg: &ProgramIcfg<'_>, call: StmtRef) -> bool {
        called_name(icfg.program(), call).is_some_and(|n| self.sources.contains(&n))
    }

    fn is_sink(&self, icfg: &ProgramIcfg<'_>, call: StmtRef) -> bool {
        called_name(icfg.program(), call).is_some_and(|n| self.sinks.contains(&n))
    }

    fn is_sanitizer(&self, icfg: &ProgramIcfg<'_>, call: StmtRef) -> bool {
        called_name(icfg.program(), call).is_some_and(|n| self.sanitizers.contains(&n))
    }

    /// All source→sink flows in a solved instance.
    pub fn leaks(
        &self,
        icfg: &ProgramIcfg<'_>,
        solver: &IfdsSolver<ProgramIcfg<'_>, TaintFact>,
    ) -> Vec<Leak> {
        let mut out = Vec::new();
        for m in icfg.methods() {
            for s in icfg.stmts_of(m) {
                if !self.is_sink(icfg, s) {
                    continue;
                }
                let StmtKind::Invoke { args, .. } = &icfg.program().stmt(s).kind else {
                    continue;
                };
                let facts = solver.results_at(s);
                for arg in args {
                    if let Operand::Local(l) = arg {
                        if facts.contains(&TaintFact::Local(*l)) {
                            out.push(Leak {
                                sink_call: s,
                                tainted_arg: *l,
                            });
                        }
                    }
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

impl<'p> IfdsProblem<ProgramIcfg<'p>> for TaintAnalysis {
    type Fact = TaintFact;

    fn zero(&self) -> TaintFact {
        TaintFact::Zero
    }

    fn flow_normal(
        &self,
        icfg: &ProgramIcfg<'p>,
        curr: StmtRef,
        _succ: StmtRef,
        d: &TaintFact,
    ) -> Vec<TaintFact> {
        let program = icfg.program();
        match &program.stmt(curr).kind {
            StmtKind::Assign { target, rvalue } => match rvalue {
                Rvalue::Use(Operand::Local(src)) => {
                    if *d == TaintFact::Local(*src) {
                        vec![*d, TaintFact::Local(*target)]
                    } else if *d == TaintFact::Local(*target) {
                        Vec::new()
                    } else {
                        vec![*d]
                    }
                }
                Rvalue::Binary(_, a, b) => {
                    let tainted_src = [a, b]
                        .iter()
                        .filter_map(|o| o.as_local())
                        .any(|l| *d == TaintFact::Local(l));
                    if tainted_src {
                        vec![*d, TaintFact::Local(*target)]
                    } else if *d == TaintFact::Local(*target) {
                        Vec::new()
                    } else {
                        vec![*d]
                    }
                }
                Rvalue::FieldLoad { field, .. } => {
                    if *d == TaintFact::Field(*field) {
                        vec![*d, TaintFact::Local(*target)]
                    } else if *d == TaintFact::Local(*target) {
                        Vec::new()
                    } else {
                        vec![*d]
                    }
                }
                Rvalue::ArrayLoad { .. } => {
                    if *d == TaintFact::ArrayElem {
                        vec![*d, TaintFact::Local(*target)]
                    } else if *d == TaintFact::Local(*target) {
                        Vec::new()
                    } else {
                        vec![*d]
                    }
                }
                // Constants and fresh allocations are clean.
                _ => {
                    if *d == TaintFact::Local(*target) {
                        Vec::new()
                    } else {
                        vec![*d]
                    }
                }
            },
            StmtKind::FieldStore { field, value, .. } => {
                // Weak update: generate, never kill field taint.
                if value.as_local().is_some_and(|l| *d == TaintFact::Local(l)) {
                    vec![*d, TaintFact::Field(*field)]
                } else {
                    vec![*d]
                }
            }
            StmtKind::ArrayStore { value, .. } => {
                // Weak update on the array summary cell.
                if value.as_local().is_some_and(|l| *d == TaintFact::Local(l)) {
                    vec![*d, TaintFact::ArrayElem]
                } else {
                    vec![*d]
                }
            }
            // An invoke with no resolvable callee body flows as a normal
            // statement; treat it like the call-to-return function.
            StmtKind::Invoke { .. } => self.flow_call_to_return(icfg, curr, curr, d),
            _ => vec![*d],
        }
    }

    fn flow_call(
        &self,
        icfg: &ProgramIcfg<'p>,
        call: StmtRef,
        callee: MethodId,
        d: &TaintFact,
    ) -> Vec<TaintFact> {
        match d {
            TaintFact::Zero => vec![TaintFact::Zero],
            TaintFact::Field(f) => vec![TaintFact::Field(*f)],
            TaintFact::ArrayElem => vec![TaintFact::ArrayElem],
            TaintFact::Local(l) => arg_bindings(icfg.program(), call, callee)
                .into_iter()
                .filter(|(actual, _)| actual == l)
                .map(|(_, formal)| TaintFact::Local(formal))
                .collect(),
        }
    }

    fn flow_return(
        &self,
        icfg: &ProgramIcfg<'p>,
        call: StmtRef,
        _callee: MethodId,
        exit: StmtRef,
        _return_site: StmtRef,
        d: &TaintFact,
    ) -> Vec<TaintFact> {
        let program = icfg.program();
        match d {
            TaintFact::Zero => vec![TaintFact::Zero],
            TaintFact::Field(f) => vec![TaintFact::Field(*f)],
            TaintFact::ArrayElem => vec![TaintFact::ArrayElem],
            TaintFact::Local(l) => {
                let mut out = Vec::new();
                // A sanitizer's return value is clean regardless of what
                // its body computed.
                if !self.is_sanitizer(icfg, call) && returned_local(program, exit) == Some(*l) {
                    if let Some(res) = result_local(program, call) {
                        out.push(TaintFact::Local(res));
                    }
                }
                out
            }
        }
    }

    fn flow_call_to_return(
        &self,
        icfg: &ProgramIcfg<'p>,
        call: StmtRef,
        _return_site: StmtRef,
        d: &TaintFact,
    ) -> Vec<TaintFact> {
        let program = icfg.program();
        let res = result_local(program, call);
        match d {
            // Source calls taint their result.
            TaintFact::Zero => {
                let mut out = vec![TaintFact::Zero];
                if self.is_source(icfg, call) {
                    if let Some(r) = res {
                        out.push(TaintFact::Local(r));
                    }
                }
                out
            }
            // The call overwrites its result local.
            TaintFact::Local(l) if Some(*l) == res => Vec::new(),
            other => vec![*other],
        }
    }
}
