//! Inter-procedural reaching definitions.
//!
//! The paper's second client (§6.2): "a reaching-definitions analysis that
//! computes variable definitions for their uses. To obtain inter-procedural
//! flows, we implement a variant that tracks definitions through parameter
//! and return-value assignments."

use crate::common::*;
use spllift_ifds::IfdsProblem;
use spllift_ir::{LocalId, MethodId, ProgramIcfg, StmtKind, StmtRef};

/// A reaching-definition fact: the definition created at `site` currently
/// defines local `var` (in the scope the fact lives in — the variable is
/// renamed as the definition crosses call boundaries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DefFact {
    /// The tautology fact.
    Zero,
    /// The definition at `site` reaches, currently naming `var`.
    Def {
        /// The defining statement (assignment or call).
        site: StmtRef,
        /// The local it defines in the current scope.
        var: LocalId,
    },
}

/// The inter-procedural reaching-definitions IFDS problem.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReachingDefs;

impl ReachingDefs {
    /// Creates the analysis.
    pub fn new() -> Self {
        ReachingDefs
    }
}

impl<'p> IfdsProblem<ProgramIcfg<'p>> for ReachingDefs {
    type Fact = DefFact;

    fn zero(&self) -> DefFact {
        DefFact::Zero
    }

    fn flow_normal(
        &self,
        icfg: &ProgramIcfg<'p>,
        curr: StmtRef,
        _succ: StmtRef,
        d: &DefFact,
    ) -> Vec<DefFact> {
        let program = icfg.program();
        let kind = &program.stmt(curr).kind;
        if matches!(kind, StmtKind::Invoke { .. }) {
            return self.flow_call_to_return(icfg, curr, curr, d);
        }
        let def = kind.def();
        match d {
            DefFact::Zero => {
                let mut out = vec![DefFact::Zero];
                if let Some(t) = def {
                    out.push(DefFact::Def { site: curr, var: t });
                }
                out
            }
            DefFact::Def { var, .. } if Some(*var) == def => Vec::new(),
            other => vec![*other],
        }
    }

    fn flow_call(
        &self,
        icfg: &ProgramIcfg<'p>,
        call: StmtRef,
        callee: MethodId,
        d: &DefFact,
    ) -> Vec<DefFact> {
        match d {
            DefFact::Zero => vec![DefFact::Zero],
            DefFact::Def { site, var } => arg_bindings(icfg.program(), call, callee)
                .into_iter()
                .filter(|(actual, _)| actual == var)
                .map(|(_, formal)| DefFact::Def {
                    site: *site,
                    var: formal,
                })
                .collect(),
        }
    }

    fn flow_return(
        &self,
        icfg: &ProgramIcfg<'p>,
        call: StmtRef,
        _callee: MethodId,
        exit: StmtRef,
        _return_site: StmtRef,
        d: &DefFact,
    ) -> Vec<DefFact> {
        let program = icfg.program();
        match d {
            DefFact::Zero => vec![DefFact::Zero],
            DefFact::Def { site, var } => {
                if returned_local(program, exit) == Some(*var) {
                    result_local(program, call)
                        .map(|r| DefFact::Def {
                            site: *site,
                            var: r,
                        })
                        .into_iter()
                        .collect()
                } else {
                    Vec::new()
                }
            }
        }
    }

    fn flow_call_to_return(
        &self,
        icfg: &ProgramIcfg<'p>,
        call: StmtRef,
        _return_site: StmtRef,
        d: &DefFact,
    ) -> Vec<DefFact> {
        let res = result_local(icfg.program(), call);
        match d {
            DefFact::Zero => {
                let mut out = vec![DefFact::Zero];
                if let Some(r) = res {
                    // The call statement itself is a definition of `r`.
                    out.push(DefFact::Def { site: call, var: r });
                }
                out
            }
            DefFact::Def { var, .. } if Some(*var) == res => Vec::new(),
            other => vec![*other],
        }
    }
}
