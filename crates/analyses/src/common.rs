//! Shared helpers for mapping values across call boundaries.

use spllift_ir::{Callee, LocalId, MethodId, Operand, Program, StmtKind, StmtRef};

/// Pairs of (actual local in caller, formal local in callee) for the call
/// at `call` targeting `callee` — including the receiver for virtual calls.
pub fn arg_bindings(program: &Program, call: StmtRef, callee: MethodId) -> Vec<(LocalId, LocalId)> {
    let StmtKind::Invoke {
        callee: target,
        args,
        ..
    } = &program.stmt(call).kind
    else {
        return Vec::new();
    };
    let callee_body = program.body(callee);
    let mut out = Vec::new();
    if let Callee::Virtual { base, .. } = target {
        if let Some(this) = callee_body.this_local {
            out.push((*base, this));
        }
    }
    for (i, arg) in args.iter().enumerate() {
        if let Operand::Local(l) = arg {
            if let Some(&formal) = callee_body.param_locals.get(i) {
                out.push((*l, formal));
            }
        }
    }
    out
}

/// The local receiving the call's return value, if any.
pub fn result_local(program: &Program, call: StmtRef) -> Option<LocalId> {
    match &program.stmt(call).kind {
        StmtKind::Invoke { result, .. } => *result,
        _ => None,
    }
}

/// The local returned at exit statement `exit`, if it returns a local.
pub fn returned_local(program: &Program, exit: StmtRef) -> Option<LocalId> {
    match &program.stmt(exit).kind {
        StmtKind::Return {
            value: Some(Operand::Local(l)),
        } => Some(*l),
        _ => None,
    }
}

/// The (unqualified) name of the method called at `call`, for source/sink
/// matching, resolved through the static target or the virtual signature.
pub(crate) fn called_name(program: &Program, call: StmtRef) -> Option<String> {
    match &program.stmt(call).kind {
        StmtKind::Invoke {
            callee: Callee::Static(m),
            ..
        } => Some(program.method(*m).name.clone()),
        StmtKind::Invoke {
            callee: Callee::Virtual { name, .. },
            ..
        } => Some(name.clone()),
        _ => None,
    }
}
