//! Possible-types analysis: which classes a reference may point to.
//!
//! The paper's first client (§6.2): "computes the possible types for a
//! value reference in the program. Such information can, for instance, be
//! used for virtual-method-call resolution. We track typing information
//! through method boundaries. Field and array assignments are treated with
//! weak updates in a field-sensitive manner, abstracting from receiver
//! objects."

use crate::common::*;
use spllift_ifds::IfdsProblem;
use spllift_ir::{
    ClassId, FieldId, LocalId, MethodId, Operand, ProgramIcfg, Rvalue, StmtKind, StmtRef,
};

/// A possible-type fact: "this location may point to an instance of
/// exactly this (runtime) class".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TypeFact {
    /// The tautology fact.
    Zero,
    /// Local `l` may point to an instance of class `c`.
    Local(LocalId, ClassId),
    /// Field `f` (any receiver) may point to an instance of class `c`.
    Field(FieldId, ClassId),
    /// Some array element (any array) may point to an instance of `c` —
    /// one summary cell, weak index-insensitive updates (paper §6.2).
    ArrayElem(ClassId),
}

/// The inter-procedural possible-types IFDS problem.
#[derive(Debug, Clone, Copy, Default)]
pub struct PossibleTypes;

impl PossibleTypes {
    /// Creates the analysis.
    pub fn new() -> Self {
        PossibleTypes
    }
}

impl<'p> IfdsProblem<ProgramIcfg<'p>> for PossibleTypes {
    type Fact = TypeFact;

    fn zero(&self) -> TypeFact {
        TypeFact::Zero
    }

    fn flow_normal(
        &self,
        icfg: &ProgramIcfg<'p>,
        curr: StmtRef,
        _succ: StmtRef,
        d: &TypeFact,
    ) -> Vec<TypeFact> {
        let program = icfg.program();
        match &program.stmt(curr).kind {
            StmtKind::Assign { target, rvalue } => {
                let kills_target = matches!(d, TypeFact::Local(l, _) if l == target);
                match rvalue {
                    Rvalue::New(c) => {
                        if *d == TypeFact::Zero {
                            vec![TypeFact::Zero, TypeFact::Local(*target, *c)]
                        } else if kills_target {
                            Vec::new()
                        } else {
                            vec![*d]
                        }
                    }
                    Rvalue::Use(Operand::Local(src)) => match d {
                        TypeFact::Local(l, c) if l == src => {
                            vec![*d, TypeFact::Local(*target, *c)]
                        }
                        _ if kills_target => Vec::new(),
                        _ => vec![*d],
                    },
                    Rvalue::FieldLoad { field, .. } => match d {
                        TypeFact::Field(f, c) if f == field => {
                            vec![*d, TypeFact::Local(*target, *c)]
                        }
                        _ if kills_target => Vec::new(),
                        _ => vec![*d],
                    },
                    Rvalue::ArrayLoad { .. } => match d {
                        TypeFact::ArrayElem(c) => {
                            vec![*d, TypeFact::Local(*target, *c)]
                        }
                        _ if kills_target => Vec::new(),
                        _ => vec![*d],
                    },
                    // Arithmetic / constants produce no reference types.
                    _ => {
                        if kills_target {
                            Vec::new()
                        } else {
                            vec![*d]
                        }
                    }
                }
            }
            StmtKind::FieldStore { field, value, .. } => match d {
                TypeFact::Local(l, c) if value.as_local().is_some_and(|v| v == *l) => {
                    // Weak update: gen, never kill.
                    vec![*d, TypeFact::Field(*field, *c)]
                }
                _ => vec![*d],
            },
            StmtKind::ArrayStore { value, .. } => match d {
                TypeFact::Local(l, c) if value.as_local().is_some_and(|v| v == *l) => {
                    vec![*d, TypeFact::ArrayElem(*c)]
                }
                _ => vec![*d],
            },
            StmtKind::Invoke { .. } => self.flow_call_to_return(icfg, curr, curr, d),
            _ => vec![*d],
        }
    }

    fn flow_call(
        &self,
        icfg: &ProgramIcfg<'p>,
        call: StmtRef,
        callee: MethodId,
        d: &TypeFact,
    ) -> Vec<TypeFact> {
        match d {
            TypeFact::Zero => vec![TypeFact::Zero],
            TypeFact::Field(f, c) => vec![TypeFact::Field(*f, *c)],
            TypeFact::ArrayElem(c) => vec![TypeFact::ArrayElem(*c)],
            TypeFact::Local(l, c) => arg_bindings(icfg.program(), call, callee)
                .into_iter()
                .filter(|(actual, _)| actual == l)
                .map(|(_, formal)| TypeFact::Local(formal, *c))
                .collect(),
        }
    }

    fn flow_return(
        &self,
        icfg: &ProgramIcfg<'p>,
        call: StmtRef,
        _callee: MethodId,
        exit: StmtRef,
        _return_site: StmtRef,
        d: &TypeFact,
    ) -> Vec<TypeFact> {
        let program = icfg.program();
        match d {
            TypeFact::Zero => vec![TypeFact::Zero],
            TypeFact::Field(f, c) => vec![TypeFact::Field(*f, *c)],
            TypeFact::ArrayElem(c) => vec![TypeFact::ArrayElem(*c)],
            TypeFact::Local(l, c) => {
                if returned_local(program, exit) == Some(*l) {
                    result_local(program, call)
                        .map(|r| TypeFact::Local(r, *c))
                        .into_iter()
                        .collect()
                } else {
                    Vec::new()
                }
            }
        }
    }

    fn flow_call_to_return(
        &self,
        icfg: &ProgramIcfg<'p>,
        call: StmtRef,
        _return_site: StmtRef,
        d: &TypeFact,
    ) -> Vec<TypeFact> {
        let res = result_local(icfg.program(), call);
        match d {
            TypeFact::Local(l, _) if Some(*l) == res => Vec::new(),
            other => vec![*other],
        }
    }
}
