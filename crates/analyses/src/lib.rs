//! Off-the-shelf IFDS client analyses for the Jimple-like IR.
//!
//! These are the reproduction's analogue of the paper's ~550 LoC of client
//! analyses (§6.2): they are written as *plain* [`spllift_ifds::IfdsProblem`]s
//! with no knowledge of features or product lines whatsoever. SPLLIFT lifts
//! them unchanged — that is the paper's headline claim ("without changing a
//! single line of code").
//!
//! * [`TaintAnalysis`] — the running-example client (§1, §2.3): tracks
//!   values from configurable source methods to sink methods.
//! * [`PossibleTypes`] — the paper's *Possible Types* client: which classes
//!   a reference may point to (usable for virtual-call resolution).
//! * [`ReachingDefs`] — the paper's *Reaching Definitions* client, the
//!   inter-procedural variant that follows parameter and return-value
//!   assignments.
//! * [`UninitVars`] — the paper's *Uninitialized Variables* client: which
//!   locals may be read before assignment, across method boundaries.
//! * [`Typestate`] — an open/closed typestate protocol checker, one of
//!   the classic IFDS clients the paper cites in §1.
//!
//! Plus one *native IDE* client (not liftable — SPLLIFT lifts IFDS
//! problems only, the paper's §5 restriction):
//!
//! * [`LinearConstants`] — inter-procedural linear constant propagation,
//!   the IDE framework's original motivating analysis (§2.4).

#![warn(missing_docs)]
mod common;
mod linear_const;
mod possible_types;
mod reaching_defs;
mod taint;
mod typestate;
mod uninit;

pub use common::{arg_bindings, result_local, returned_local};
pub use linear_const::{CpFact, CpValue, LinearConstants, LinearEdge};
pub use possible_types::{PossibleTypes, TypeFact};
pub use reaching_defs::{DefFact, ReachingDefs};
pub use taint::{Leak, TaintAnalysis, TaintFact};
pub use typestate::{State, StateFact, Typestate, Violation};
pub use uninit::{UninitFact, UninitVars};

#[cfg(test)]
mod tests;
