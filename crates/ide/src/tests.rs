use crate::binary::{Binary, IfdsAsIde};
use crate::{EdgeFn, IdeProblem, IdeSolver};
use spllift_ifds::{IfdsProblem, IfdsSolver, SimpleGraph, StmtKind};

// ---------------------------------------------------------------------
// A label-driven (linear) constant propagation, the classic IDE client.
// ---------------------------------------------------------------------

/// Constant-propagation lattice: ⊤ (unreached) / constant / ⊥ (varies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Val {
    Top,
    Const(i64),
    Bot,
}

/// Constant-propagation edge functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CpEdge {
    Kill,
    Id,
    Const(i64),
    Bot,
}

impl EdgeFn<Val> for CpEdge {
    fn apply(&self, v: &Val) -> Val {
        match self {
            CpEdge::Kill => Val::Top,
            CpEdge::Id => *v,
            CpEdge::Const(c) => Val::Const(*c),
            CpEdge::Bot => Val::Bot,
        }
    }

    fn compose_with(&self, after: &Self) -> Self {
        match (self, after) {
            (CpEdge::Kill, _) => CpEdge::Kill,
            (_, CpEdge::Kill) => CpEdge::Kill,
            (_, CpEdge::Const(c)) => CpEdge::Const(*c),
            (f, CpEdge::Id) => *f,
            (_, CpEdge::Bot) => CpEdge::Bot,
        }
    }

    fn join(&self, other: &Self) -> Self {
        match (self, other) {
            (CpEdge::Kill, f) | (f, CpEdge::Kill) => *f,
            (CpEdge::Const(a), CpEdge::Const(b)) if a == b => CpEdge::Const(*a),
            (a, b) if a == b => *a,
            _ => CpEdge::Bot,
        }
    }

    fn is_kill(&self) -> bool {
        *self == CpEdge::Kill
    }
}

/// Labels: `set X c`, `copy X Y`, `cut X`, `call pass X into Y` + callee
/// facts `arg`/`ret`, like the IFDS-side tests.
struct ConstProp;

type Fact = String;

fn zero() -> Fact {
    "0".into()
}

impl IdeProblem<SimpleGraph> for ConstProp {
    type Fact = Fact;
    type Value = Val;
    type EF = CpEdge;

    fn zero(&self) -> Fact {
        zero()
    }
    fn top(&self) -> Val {
        Val::Top
    }
    fn seed_value(&self) -> Val {
        Val::Bot // λ-binding environment starts "known reached"
    }
    fn join_values(&self, a: &Val, b: &Val) -> Val {
        match (a, b) {
            (Val::Top, v) | (v, Val::Top) => *v,
            (Val::Const(x), Val::Const(y)) if x == y => Val::Const(*x),
            _ => Val::Bot,
        }
    }
    fn id_edge(&self) -> CpEdge {
        CpEdge::Id
    }

    fn flow_normal(&self, g: &SimpleGraph, curr: u32, _succ: u32, d: &Fact) -> Vec<(Fact, CpEdge)> {
        let parts: Vec<&str> = g.label(curr).split_whitespace().collect();
        match parts.as_slice() {
            ["set", x, c] => {
                let c: i64 = c.parse().unwrap();
                if d == "0" {
                    vec![(zero(), CpEdge::Id), ((*x).to_owned(), CpEdge::Const(c))]
                } else if d == x {
                    vec![]
                } else {
                    vec![(d.clone(), CpEdge::Id)]
                }
            }
            ["copy", x, y] => {
                if d == x {
                    vec![((*x).to_owned(), CpEdge::Id), ((*y).to_owned(), CpEdge::Id)]
                } else if d == y {
                    vec![]
                } else {
                    vec![(d.clone(), CpEdge::Id)]
                }
            }
            ["cut", x] => {
                if d == x {
                    vec![((*x).to_owned(), CpEdge::Kill)]
                } else {
                    vec![(d.clone(), CpEdge::Id)]
                }
            }
            _ => vec![(d.clone(), CpEdge::Id)],
        }
    }

    fn flow_call(&self, g: &SimpleGraph, call: u32, _callee: u32, d: &Fact) -> Vec<(Fact, CpEdge)> {
        let parts: Vec<&str> = g.label(call).split_whitespace().collect();
        if d == "0" {
            return vec![(zero(), CpEdge::Id)];
        }
        if let Some(i) = parts.iter().position(|&p| p == "pass") {
            if parts.get(i + 1) == Some(&d.as_str()) {
                return vec![("arg".into(), CpEdge::Id)];
            }
        }
        Vec::new()
    }

    fn flow_return(
        &self,
        g: &SimpleGraph,
        call: u32,
        _callee: u32,
        _exit: u32,
        _r: u32,
        d: &Fact,
    ) -> Vec<(Fact, CpEdge)> {
        if d == "ret" {
            if let Some(pos) = g.label(call).find(" into ") {
                let y = g.label(call)[pos + 6..].trim().to_owned();
                return vec![(y, CpEdge::Id)];
            }
        }
        Vec::new()
    }

    fn flow_call_to_return(
        &self,
        g: &SimpleGraph,
        call: u32,
        _r: u32,
        d: &Fact,
    ) -> Vec<(Fact, CpEdge)> {
        if let Some(pos) = g.label(call).find(" into ") {
            let y = g.label(call)[pos + 6..].trim();
            if d == y {
                return Vec::new();
            }
        }
        vec![(d.clone(), CpEdge::Id)]
    }
}

#[test]
fn straight_line_constant() {
    let mut g = SimpleGraph::new();
    let m = g.add_method("m");
    let a = g.add_stmt(m, "set x 5");
    let b = g.add_stmt(m, "copy x y");
    let c = g.add_stmt(m, "sink");
    g.add_edge(a, b);
    g.add_edge(b, c);
    g.set_entry(m);
    let s = IdeSolver::solve(&ConstProp, &g);
    assert_eq!(s.value_at(c, &"x".into()), Val::Const(5));
    assert_eq!(s.value_at(c, &"y".into()), Val::Const(5));
    assert_eq!(s.value_at(a, &"x".into()), Val::Top, "not yet assigned");
}

#[test]
fn merge_same_constant_stays_constant() {
    let mut g = SimpleGraph::new();
    let m = g.add_method("m");
    let top = g.add_stmt(m, "branch");
    let l = g.add_stmt(m, "set x 7");
    let r = g.add_stmt(m, "set x 7");
    let join = g.add_stmt(m, "sink");
    g.add_edge(top, l);
    g.add_edge(top, r);
    g.add_edge(l, join);
    g.add_edge(r, join);
    g.set_entry(m);
    let s = IdeSolver::solve(&ConstProp, &g);
    assert_eq!(s.value_at(join, &"x".into()), Val::Const(7));
}

#[test]
fn merge_different_constants_is_bottom() {
    let mut g = SimpleGraph::new();
    let m = g.add_method("m");
    let top = g.add_stmt(m, "branch");
    let l = g.add_stmt(m, "set x 1");
    let r = g.add_stmt(m, "set x 2");
    let join = g.add_stmt(m, "sink");
    g.add_edge(top, l);
    g.add_edge(top, r);
    g.add_edge(l, join);
    g.add_edge(r, join);
    g.set_entry(m);
    let s = IdeSolver::solve(&ConstProp, &g);
    assert_eq!(s.value_at(join, &"x".into()), Val::Bot);
}

#[test]
fn constant_through_call() {
    let mut g = SimpleGraph::new();
    let main = g.add_method("main");
    let id = g.add_method("id");
    let a = g.add_stmt(main, "set x 42");
    let call = g.add_stmt_kind(main, "call pass x into y", StmtKind::Call);
    let sink = g.add_stmt(main, "sink");
    g.add_edge(a, call);
    g.add_edge(call, sink);
    let body = g.add_stmt(id, "copy arg ret");
    let exit = g.add_stmt_kind(id, "exit", StmtKind::Exit);
    g.add_edge(body, exit);
    g.add_call_edge(call, id);
    g.set_entry(main);
    let s = IdeSolver::solve(&ConstProp, &g);
    assert_eq!(s.value_at(sink, &"y".into()), Val::Const(42));
    assert_eq!(s.value_at(sink, &"x".into()), Val::Const(42));
    // Inside the callee the constant arrives via the value phase.
    assert_eq!(s.value_at(exit, &"ret".into()), Val::Const(42));
}

#[test]
fn two_call_sites_merge_in_callee_but_not_in_callers() {
    // id() sees 1 and 2 (⊥ inside), but each caller keeps its constant —
    // context sensitivity of the jump functions.
    let mut g = SimpleGraph::new();
    let main = g.add_method("main");
    let id = g.add_method("id");
    let a1 = g.add_stmt(main, "set x 1");
    let c1 = g.add_stmt_kind(main, "call pass x into y", StmtKind::Call);
    let a2 = g.add_stmt(main, "set z 2");
    let c2 = g.add_stmt_kind(main, "call pass z into w", StmtKind::Call);
    let sink = g.add_stmt(main, "sink");
    g.add_edge(a1, c1);
    g.add_edge(c1, a2);
    g.add_edge(a2, c2);
    g.add_edge(c2, sink);
    let body = g.add_stmt(id, "copy arg ret");
    let exit = g.add_stmt_kind(id, "exit", StmtKind::Exit);
    g.add_edge(body, exit);
    g.add_call_edge(c1, id);
    g.add_call_edge(c2, id);
    g.set_entry(main);
    let s = IdeSolver::solve(&ConstProp, &g);
    assert_eq!(s.value_at(sink, &"y".into()), Val::Const(1));
    assert_eq!(s.value_at(sink, &"w".into()), Val::Const(2));
    // Callee merges both contexts in the value phase.
    assert_eq!(s.value_at(exit, &"arg".into()), Val::Bot);
}

#[test]
fn kill_edge_terminates_early() {
    let mut g = SimpleGraph::new();
    let m = g.add_method("m");
    let a = g.add_stmt(m, "set x 5");
    let b = g.add_stmt(m, "cut x");
    let c = g.add_stmt(m, "sink");
    g.add_edge(a, b);
    g.add_edge(b, c);
    g.set_entry(m);
    let s = IdeSolver::solve(&ConstProp, &g);
    assert_eq!(s.value_at(c, &"x".into()), Val::Top);
    assert!(s.stats().killed_early > 0, "kill edges must be pruned");
}

#[test]
fn reachability_via_zero_fact() {
    let mut g = SimpleGraph::new();
    let m = g.add_method("m");
    let dead_m = g.add_method("dead");
    let a = g.add_stmt(m, "nop");
    let d = g.add_stmt(dead_m, "nop");
    g.set_entry(m);
    let s = IdeSolver::solve(&ConstProp, &g);
    assert_eq!(s.reachability_of(a), Val::Bot, "seed value reaches entry");
    assert_eq!(s.reachability_of(d), Val::Top, "dead method unreached");
}

#[test]
fn results_at_excludes_top() {
    let mut g = SimpleGraph::new();
    let m = g.add_method("m");
    let a = g.add_stmt(m, "set x 3");
    let b = g.add_stmt(m, "sink");
    g.add_edge(a, b);
    g.set_entry(m);
    let s = IdeSolver::solve(&ConstProp, &g);
    let res = s.results_at(b);
    assert_eq!(res.get("x"), Some(&Val::Const(3)));
    assert!(res.contains_key("0"));
    assert!(!res.contains_key("nonexistent"));
}

#[test]
fn recursion_converges() {
    let mut g = SimpleGraph::new();
    let main = g.add_method("main");
    let rec = g.add_method("rec");
    let a = g.add_stmt(main, "set x 9");
    let call0 = g.add_stmt_kind(main, "call pass x into y", StmtKind::Call);
    let sink = g.add_stmt(main, "sink");
    g.add_edge(a, call0);
    g.add_edge(call0, sink);
    let head = g.add_stmt(rec, "head");
    let rcall = g.add_stmt_kind(rec, "call pass arg into t", StmtKind::Call);
    let copy = g.add_stmt(rec, "copy arg ret");
    let exit = g.add_stmt_kind(rec, "exit", StmtKind::Exit);
    g.add_edge(head, rcall);
    g.add_edge(head, copy);
    g.add_edge(rcall, copy);
    g.add_edge(copy, exit);
    g.add_call_edge(call0, rec);
    g.add_call_edge(rcall, rec);
    g.set_entry(main);
    let s = IdeSolver::solve(&ConstProp, &g);
    assert_eq!(s.value_at(sink, &"y".into()), Val::Const(9));
}

// ---------------------------------------------------------------------
// Binary embedding: IDE subsumes IFDS.
// ---------------------------------------------------------------------

/// Tiny gen/kill IFDS problem driven by labels (like the IFDS crate's own
/// tests), used to compare solvers.
struct GenKill;

impl IfdsProblem<SimpleGraph> for GenKill {
    type Fact = String;

    fn zero(&self) -> String {
        "0".into()
    }

    fn flow_normal(&self, g: &SimpleGraph, curr: u32, _succ: u32, d: &String) -> Vec<String> {
        let parts: Vec<&str> = g.label(curr).split_whitespace().collect();
        match parts.as_slice() {
            ["gen", x] if d == "0" => vec!["0".into(), (*x).to_owned()],
            ["kill", x] if d == x => vec![],
            ["copy", x, y] if d == x => vec![(*x).to_owned(), (*y).to_owned()],
            ["copy", _, y] if d == y => vec![],
            _ => vec![d.clone()],
        }
    }

    fn flow_call(&self, g: &SimpleGraph, call: u32, _q: u32, d: &String) -> Vec<String> {
        let parts: Vec<&str> = g.label(call).split_whitespace().collect();
        if d == "0" {
            return vec!["0".into()];
        }
        if let Some(i) = parts.iter().position(|&p| p == "pass") {
            if parts.get(i + 1) == Some(&d.as_str()) {
                return vec!["arg".into()];
            }
        }
        Vec::new()
    }

    fn flow_return(
        &self,
        g: &SimpleGraph,
        call: u32,
        _q: u32,
        _e: u32,
        _r: u32,
        d: &String,
    ) -> Vec<String> {
        if d == "0" {
            return vec!["0".into()];
        }
        if d == "ret" {
            if let Some(pos) = g.label(call).find(" into ") {
                return vec![g.label(call)[pos + 6..].trim().to_owned()];
            }
        }
        Vec::new()
    }
}

fn assert_embedding_agrees(g: &SimpleGraph) {
    let ifds = IfdsSolver::solve(&GenKill, g);
    let embedded = IfdsAsIde::new(&GenKill);
    let ide = IdeSolver::<SimpleGraph, String, Binary>::solve(&embedded, g);
    for s in spllift_ifds::Icfg::methods(g)
        .into_iter()
        .flat_map(|m| spllift_ifds::Icfg::stmts_of(g, m))
    {
        let ifds_facts = ifds.results_at(s);
        for fact in &ifds_facts {
            assert_eq!(
                ide.value_at(s, fact),
                Binary::Holds,
                "IFDS fact {fact:?} at {s} missing from IDE embedding"
            );
        }
        for (stmt, fact, v) in ide.all_results() {
            if stmt == s && *v == Binary::Holds {
                assert!(
                    ifds_facts.contains(fact),
                    "IDE embedding invented {fact:?} at {s}"
                );
            }
        }
    }
}

#[test]
fn embedding_agrees_on_straight_line() {
    let mut g = SimpleGraph::new();
    let m = g.add_method("m");
    let a = g.add_stmt(m, "gen x");
    let b = g.add_stmt(m, "copy x y");
    let c = g.add_stmt(m, "kill x");
    let d = g.add_stmt(m, "sink");
    g.add_edge(a, b);
    g.add_edge(b, c);
    g.add_edge(c, d);
    g.set_entry(m);
    assert_embedding_agrees(&g);
}

#[test]
fn embedding_agrees_interprocedurally() {
    let mut g = SimpleGraph::new();
    let main = g.add_method("main");
    let id = g.add_method("id");
    let a = g.add_stmt(main, "gen x");
    let call = g.add_stmt_kind(main, "call pass x into y", StmtKind::Call);
    let sink = g.add_stmt(main, "sink");
    g.add_edge(a, call);
    g.add_edge(call, sink);
    let body = g.add_stmt(id, "copy arg ret");
    let exit = g.add_stmt_kind(id, "exit", StmtKind::Exit);
    g.add_edge(body, exit);
    g.add_call_edge(call, id);
    g.set_entry(main);
    assert_embedding_agrees(&g);
}

#[test]
fn embedding_agrees_with_recursion_and_branches() {
    let mut g = SimpleGraph::new();
    let main = g.add_method("main");
    let rec = g.add_method("rec");
    let a = g.add_stmt(main, "gen x");
    let br = g.add_stmt(main, "branch");
    let l = g.add_stmt(main, "kill x");
    let call0 = g.add_stmt_kind(main, "call pass x into y", StmtKind::Call);
    let sink = g.add_stmt(main, "sink");
    g.add_edge(a, br);
    g.add_edge(br, l);
    g.add_edge(br, call0);
    g.add_edge(l, call0);
    g.add_edge(call0, sink);
    let head = g.add_stmt(rec, "head");
    let rcall = g.add_stmt_kind(rec, "call pass arg into t", StmtKind::Call);
    let copy = g.add_stmt(rec, "copy arg ret");
    let exit = g.add_stmt_kind(rec, "exit", StmtKind::Exit);
    g.add_edge(head, rcall);
    g.add_edge(head, copy);
    g.add_edge(rcall, copy);
    g.add_edge(copy, exit);
    g.add_call_edge(call0, rec);
    g.add_call_edge(rcall, rec);
    g.set_entry(main);
    assert_embedding_agrees(&g);
}

#[test]
fn stats_are_populated() {
    let mut g = SimpleGraph::new();
    let m = g.add_method("m");
    let a = g.add_stmt(m, "set x 5");
    let b = g.add_stmt(m, "sink");
    g.add_edge(a, b);
    g.set_entry(m);
    let s = IdeSolver::solve(&ConstProp, &g);
    let st = s.stats();
    assert!(st.propagations > 0);
    assert!(st.flow_evals > 0);
    assert!(st.jump_fn_constructions > 0);
    assert!(st.value_updates > 0);
}

mod edge_cases {
    use super::*;

    #[test]
    fn method_whose_start_point_is_its_exit() {
        // A callee consisting of a single return statement: the start
        // point IS the exit. Summaries must still resolve.
        let mut g = SimpleGraph::new();
        let main = g.add_method("main");
        let leaf = g.add_method("leaf");
        let a = g.add_stmt(main, "set x 5");
        let call = g.add_stmt_kind(main, "call pass x into y", StmtKind::Call);
        let sink = g.add_stmt(main, "sink");
        g.add_edge(a, call);
        g.add_edge(call, sink);
        let exit = g.add_stmt_kind(leaf, "exit", StmtKind::Exit);
        let _ = exit;
        g.add_call_edge(call, leaf);
        g.set_entry(main);
        let s = IdeSolver::solve(&ConstProp, &g);
        // The callee returns nothing; x survives via call-to-return.
        assert_eq!(s.value_at(sink, &"x".into()), Val::Const(5));
        // y is killed across the call and never written back.
        assert_eq!(s.value_at(sink, &"y".into()), Val::Top);
    }

    #[test]
    fn multiple_entry_points() {
        let mut g = SimpleGraph::new();
        let m1 = g.add_method("driver1");
        let m2 = g.add_method("driver2");
        let a1 = g.add_stmt(m1, "set x 1");
        let b1 = g.add_stmt(m1, "sink");
        g.add_edge(a1, b1);
        let a2 = g.add_stmt(m2, "set x 2");
        let b2 = g.add_stmt(m2, "sink");
        g.add_edge(a2, b2);
        g.set_entry(m1);
        g.set_entry(m2);
        let s = IdeSolver::solve(&ConstProp, &g);
        assert_eq!(s.value_at(b1, &"x".into()), Val::Const(1));
        assert_eq!(s.value_at(b2, &"x".into()), Val::Const(2));
    }

    #[test]
    fn diamond_call_graph_merges_in_value_phase() {
        // Two callers pass different constants to the same callee; the
        // callee's entry merges to Bot, but each caller's result stays
        // precise (context-sensitive jump functions).
        let mut g = SimpleGraph::new();
        let main = g.add_method("main");
        let id = g.add_method("id");
        let a = g.add_stmt(main, "set x 1");
        let c1 = g.add_stmt_kind(main, "call pass x into y", StmtKind::Call);
        let b = g.add_stmt(main, "set x 2");
        let c2 = g.add_stmt_kind(main, "call pass x into z", StmtKind::Call);
        let sink = g.add_stmt(main, "sink");
        g.add_edge(a, c1);
        g.add_edge(c1, b);
        g.add_edge(b, c2);
        g.add_edge(c2, sink);
        let body = g.add_stmt(id, "copy arg ret");
        let exit = g.add_stmt_kind(id, "exit", StmtKind::Exit);
        g.add_edge(body, exit);
        g.add_call_edge(c1, id);
        g.add_call_edge(c2, id);
        g.set_entry(main);
        let s = IdeSolver::solve(&ConstProp, &g);
        assert_eq!(s.value_at(sink, &"y".into()), Val::Const(1));
        assert_eq!(s.value_at(sink, &"z".into()), Val::Const(2));
        assert_eq!(s.value_at(body, &"arg".into()), Val::Bot);
    }

    #[test]
    fn loop_converges_to_bottom() {
        // x alternates between constants in a loop: the merged value at
        // the loop head must stabilize at Bot without divergence.
        let mut g = SimpleGraph::new();
        let m = g.add_method("m");
        let init = g.add_stmt(m, "set x 0");
        let head = g.add_stmt(m, "head");
        let body = g.add_stmt(m, "set x 1");
        let exitn = g.add_stmt(m, "sink");
        g.add_edge(init, head);
        g.add_edge(head, body);
        g.add_edge(body, head);
        g.add_edge(head, exitn);
        g.set_entry(m);
        let s = IdeSolver::solve(&ConstProp, &g);
        assert_eq!(s.value_at(exitn, &"x".into()), Val::Bot);
    }

    #[test]
    fn callee_not_reentered_per_caller_fact() {
        // Summary reuse: the callee body is tabulated once per entry
        // fact, not once per caller — check stats stay modest with many
        // call sites.
        let mut g = SimpleGraph::new();
        let main = g.add_method("main");
        let id = g.add_method("id");
        let body = g.add_stmt(id, "copy arg ret");
        let exit = g.add_stmt_kind(id, "exit", StmtKind::Exit);
        g.add_edge(body, exit);
        let a = g.add_stmt(main, "set x 3");
        let mut prev = a;
        for i in 0..10 {
            let c = g.add_stmt_kind(main, &format!("call pass x into y{i}"), StmtKind::Call);
            g.add_edge(prev, c);
            g.add_call_edge(c, id);
            prev = c;
        }
        let sink = g.add_stmt(main, "sink");
        g.add_edge(prev, sink);
        g.set_entry(main);
        let s = IdeSolver::solve(&ConstProp, &g);
        for i in 0..10 {
            assert_eq!(s.value_at(sink, &format!("y{i}")), Val::Const(3));
        }
        // 10 call sites, one callee: propagations stay linear-ish.
        assert!(s.stats().propagations < 2_000, "{:?}", s.stats());
    }
}

mod binary_edge_laws {
    use super::*;
    use crate::binary::{Binary, BinaryEdge};

    #[test]
    fn composition_table() {
        use BinaryEdge::*;
        assert_eq!(Id.compose_with(&Id), Id);
        assert_eq!(Id.compose_with(&Kill), Kill);
        assert_eq!(Kill.compose_with(&Id), Kill);
        assert_eq!(Kill.compose_with(&Kill), Kill);
    }

    #[test]
    fn join_table() {
        use BinaryEdge::*;
        assert_eq!(Id.join(&Id), Id);
        assert_eq!(Id.join(&Kill), Id);
        assert_eq!(Kill.join(&Id), Id);
        assert_eq!(Kill.join(&Kill), Kill);
    }

    #[test]
    fn apply_and_kill_flag() {
        use BinaryEdge::*;
        assert_eq!(Id.apply(&Binary::Holds), Binary::Holds);
        assert_eq!(Id.apply(&Binary::Top), Binary::Top);
        assert_eq!(Kill.apply(&Binary::Holds), Binary::Top);
        assert!(Kill.is_kill());
        assert!(!Id.is_kill());
    }
}
