//! The IDE problem interface.

use crate::EdgeFn;
use spllift_ifds::Icfg;
use std::fmt::Debug;
use std::hash::Hash;

/// An IDE data-flow problem over an ICFG `G`.
///
/// Like [`spllift_ifds::IfdsProblem`], but every flow-function entry also
/// carries an [`EdgeFn`] describing how the value associated with the
/// source fact is transformed along that exploded-supergraph edge.
///
/// The value lattice is described by [`top`](IdeProblem::top) (the neutral
/// element of [`join_values`](IdeProblem::join_values), meaning "the fact
/// does not hold" in SPLLIFT's reading) and the seed value
/// [`seed_value`](IdeProblem::seed_value) assumed at the entry points
/// (the paper initializes the program start node with `true`, §3.4).
pub trait IdeProblem<G: Icfg> {
    /// A data-flow fact.
    type Fact: Clone + Eq + Hash + Debug;
    /// The value lattice element.
    type Value: Clone + Eq + Debug;
    /// The edge-function representation.
    type EF: EdgeFn<Self::Value>;

    /// The distinguished tautology fact `0`.
    fn zero(&self) -> Self::Fact;

    /// ⊤: the neutral element of the value join ("no information").
    fn top(&self) -> Self::Value;

    /// The value seeded at entry points (SPLLIFT: the constraint `true`).
    fn seed_value(&self) -> Self::Value;

    /// Join (⊔) of two values, used at control-flow merges in phase 2.
    fn join_values(&self, a: &Self::Value, b: &Self::Value) -> Self::Value;

    /// The identity edge function.
    fn id_edge(&self) -> Self::EF;

    /// Flow through a non-call, non-exit statement.
    fn flow_normal(
        &self,
        icfg: &G,
        curr: G::Stmt,
        succ: G::Stmt,
        fact: &Self::Fact,
    ) -> Vec<(Self::Fact, Self::EF)>;

    /// Flow from a call site into a callee.
    fn flow_call(
        &self,
        icfg: &G,
        call: G::Stmt,
        callee: G::Method,
        fact: &Self::Fact,
    ) -> Vec<(Self::Fact, Self::EF)>;

    /// Flow from a callee exit back to a return site.
    #[allow(clippy::too_many_arguments)]
    fn flow_return(
        &self,
        icfg: &G,
        call: G::Stmt,
        callee: G::Method,
        exit: G::Stmt,
        return_site: G::Stmt,
        fact: &Self::Fact,
    ) -> Vec<(Self::Fact, Self::EF)>;

    /// Intra-procedural flow across a call site.
    fn flow_call_to_return(
        &self,
        icfg: &G,
        call: G::Stmt,
        return_site: G::Stmt,
        fact: &Self::Fact,
    ) -> Vec<(Self::Fact, Self::EF)>;

    /// Initial seeds; default: `0` at every entry point.
    fn initial_seeds(&self, icfg: &G) -> Vec<(G::Stmt, Self::Fact)> {
        icfg.entry_points()
            .into_iter()
            .map(|m| (icfg.start_point_of(m), self.zero()))
            .collect()
    }

    /// Reports whether the problem's value domain has exhausted a
    /// resource budget. Governed solves
    /// ([`IdeSolverOptions::poll_budget`](crate::IdeSolverOptions)) poll
    /// this between propagations and abort with
    /// [`SolveAbort::Budget`](spllift_ifds::SolveAbort) on `Err`; results
    /// computed while a budget is exhausted are garbage, so the solver
    /// must stop rather than tabulate with them. Default: always `Ok`.
    fn budget_check(&self) -> Result<(), String> {
        Ok(())
    }
}
