//! Edge functions: distributive transformers on the value lattice.

use std::fmt::Debug;
use std::hash::Hash;

/// A distributive function `V → V` attached to an edge of the exploded
/// supergraph.
///
/// Edge functions must form a *finite-height* structure under
/// [`join`](EdgeFn::join) for the solver to terminate, and must be
/// efficiently representable: the solver composes and joins them
/// symbolically in phase 1 and only applies them to values in phase 2.
///
/// For SPLLIFT, an edge function is `λc. c ∧ F` for a feature constraint
/// `F`; composition is `∧`, join is `∨`, so the whole function is one BDD.
pub trait EdgeFn<V>: Clone + Eq + Hash + Debug {
    /// Applies the function to a value (phase 2).
    fn apply(&self, v: &V) -> V;

    /// `after ∘ self`: first `self` (closer to the method start point),
    /// then `after`.
    #[must_use]
    fn compose_with(&self, after: &Self) -> Self;

    /// Pointwise join with `other` (at control-flow merges).
    #[must_use]
    fn join(&self, other: &Self) -> Self;

    /// `true` iff this function maps every value to ⊤ (the "kill
    /// everything" function `allTop` of Heros).
    ///
    /// The solver discards path edges whose jump function is a kill
    /// function — this is exactly the early termination in the
    /// *construction* phase that §4.2 of the paper credits for making the
    /// feature model free: a contradictory constraint reduces to `false`,
    /// its edge function becomes the kill function, and tabulation stops.
    fn is_kill(&self) -> bool {
        false
    }
}
