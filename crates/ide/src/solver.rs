//! The two-phase IDE solver.
//!
//! Phase 1 tabulates *jump functions* — symbolic compositions of edge
//! functions from `(sp(m), d1)` to `(n, d2)` — together with summary
//! functions for calls, exactly like the IFDS tabulation but over
//! (fact, edge-function) pairs. Phase 2 seeds concrete values at the entry
//! points, pushes them across call edges to all procedure entries, and
//! finally evaluates every jump function once.

use crate::{EdgeFn, IdeProblem};
use spllift_hash::{FastMap, FastSet};
use spllift_ifds::{Icfg, SolveAbort, SolveLimits};
use std::collections::VecDeque;

/// Counters collected during an IDE solver run.
///
/// `jump_fn_constructions` counts every time a jump function is created or
/// strengthened — the quantity the paper's §6.2 correlates with running
/// time (ρ > 0.99).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdeStats {
    /// Phase-1 worklist items processed.
    pub propagations: u64,
    /// Flow-function evaluations (phase 1).
    pub flow_evals: u64,
    /// Jump-function creations + strengthenings.
    pub jump_fn_constructions: u64,
    /// Propagations discarded because the jump function was a kill
    /// function (early termination, paper §4.2).
    pub killed_early: u64,
    /// Phase-2 value updates.
    pub value_updates: u64,
}

/// Tuning knobs for the IDE solver.
///
/// The defaults are what [`IdeSolver::solve`] uses; pass an explicit
/// value to [`IdeSolver::solve_with`] to deviate (the invariance tests
/// run both settings and assert identical results).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdeSolverOptions {
    /// Deduplicate the Phase-1 worklist: a `(d1, n, d2)` triple whose
    /// jump function strengthens while the triple is already queued is
    /// not queued a second time — the pending entry reads the latest
    /// jump function when it is popped, so the fixpoint is unchanged but
    /// [`IdeStats::propagations`] drops.
    pub worklist_dedup: bool,
    /// Propagation cap and wall-clock deadline. When any bound is set,
    /// the `try_solve*` entry points abort with the matching
    /// [`SolveAbort`]; the infallible entry points panic. Unlimited by
    /// default, in which case the per-iteration checks are skipped and
    /// the hot path is byte-for-byte the ungoverned one.
    pub limits: SolveLimits,
    /// Poll [`IdeProblem::budget_check`] between propagations and abort
    /// with [`SolveAbort::Budget`] when the value domain's resource
    /// budget is exhausted. Off by default (the poll costs a virtual
    /// call per propagation); governed solves that arm a constraint
    /// budget must turn it on.
    pub poll_budget: bool,
}

impl Default for IdeSolverOptions {
    fn default() -> Self {
        IdeSolverOptions {
            worklist_dedup: true,
            limits: SolveLimits::default(),
            poll_budget: false,
        }
    }
}

/// Reusable Phase-1 artifacts of a completed solve: jump functions and
/// Reps–Horwitz–Sagiv end summaries, keyed exactly as Phase 1 keeps
/// them. [`IdeSolver::solve_seeded`] consumes a memo to warm-start an
/// *incremental* re-solve: entries belonging to methods the caller
/// declares clean are preloaded at their fixpoint, so the solver only
/// re-tabulates the dirty region; entries for dirty methods are
/// discarded and recomputed.
///
/// Soundness requires the clean set to be closed under "calls into":
/// a clean method must only call clean methods (equivalently, the dirty
/// set must contain every transitive *caller* of an edited method).
/// Under that closure a clean method's summaries depend only on
/// unchanged code, so they are final, and the warm solve's fixpoint —
/// and therefore its values — is identical to a cold solve's.
pub struct SolverMemo<M, S, D, EF> {
    /// `(stmt, entry-fact) → target-fact → jump function`, at fixpoint.
    jump: FastMap<(S, D), FastMap<D, EF>>,
    /// `(method, entry-fact) → (exit stmt, exit fact) → summary`.
    end_summary: FastMap<(M, D), FastMap<(S, D), EF>>,
}

impl<M, S, D, EF> Default for SolverMemo<M, S, D, EF> {
    fn default() -> Self {
        SolverMemo {
            jump: FastMap::default(),
            end_summary: FastMap::default(),
        }
    }
}

impl<M, S, D, EF> SolverMemo<M, S, D, EF> {
    /// `true` if the memo carries no retained state (a seeded solve with
    /// an empty memo is exactly a cold solve).
    pub fn is_empty(&self) -> bool {
        self.jump.is_empty() && self.end_summary.is_empty()
    }

    /// Number of retained jump-function entries.
    pub fn jump_fns(&self) -> usize {
        self.jump.values().map(FastMap::len).sum()
    }

    /// Number of retained `(method, entry-fact)` summary keys.
    pub fn summary_keys(&self) -> usize {
        self.end_summary.len()
    }
}

/// The IDE solver. Build with [`IdeSolver::solve`].
#[derive(Debug)]
pub struct IdeSolver<G: Icfg, D, V>
where
    D: Clone + Eq + std::hash::Hash,
{
    /// Values keyed per statement, then per fact — so per-statement
    /// queries (`results_at`) are O(facts at that statement).
    values: FastMap<G::Stmt, FastMap<D, V>>,
    top: V,
    zero: D,
    stats: IdeStats,
}

impl<G, D, V> IdeSolver<G, D, V>
where
    G: Icfg,
    D: Clone + Eq + std::hash::Hash + std::fmt::Debug,
    V: Clone + Eq + std::fmt::Debug,
{
    /// Runs both phases of the IDE algorithm to a fixpoint with the
    /// default [`IdeSolverOptions`].
    pub fn solve<P>(problem: &P, icfg: &G) -> Self
    where
        P: IdeProblem<G, Fact = D, Value = V>,
    {
        Self::solve_with(problem, icfg, IdeSolverOptions::default())
    }

    /// Runs both phases of the IDE algorithm to a fixpoint with explicit
    /// [`IdeSolverOptions`].
    pub fn solve_with<P>(problem: &P, icfg: &G, options: IdeSolverOptions) -> Self
    where
        P: IdeProblem<G, Fact = D, Value = V>,
    {
        Self::solve_seeded(problem, icfg, options, &SolverMemo::default(), &|_| false).0
    }

    /// Governed [`solve_with`](Self::solve_with): aborts with a
    /// [`SolveAbort`] when an [`IdeSolverOptions::limits`] bound is hit
    /// or (with [`IdeSolverOptions::poll_budget`]) the problem reports
    /// budget exhaustion. The partial tabulation is discarded on abort.
    pub fn try_solve_with<P>(
        problem: &P,
        icfg: &G,
        options: IdeSolverOptions,
    ) -> Result<Self, SolveAbort>
    where
        P: IdeProblem<G, Fact = D, Value = V>,
    {
        Self::try_solve_seeded(problem, icfg, options, &SolverMemo::default(), &|_| false)
            .map(|(solver, _)| solver)
    }

    /// Incremental solve: warm-starts Phase 1 from `memo`, keeping the
    /// retained jump functions and end summaries of every method `m`
    /// with `clean(m)`, and re-tabulating everything else. Returns the
    /// solution together with a fresh memo for the *next* solve.
    ///
    /// The caller guarantees the clean-set closure documented on
    /// [`SolverMemo`]; with it, the result is identical to a cold
    /// [`solve_with`](Self::solve_with) while
    /// [`IdeStats::propagations`] only counts work in the dirty region
    /// (plus any new entry facts flowing into clean methods).
    pub fn solve_seeded<P>(
        problem: &P,
        icfg: &G,
        options: IdeSolverOptions,
        memo: &SolverMemo<G::Method, G::Stmt, D, P::EF>,
        clean: &dyn Fn(G::Method) -> bool,
    ) -> (Self, SolverMemo<G::Method, G::Stmt, D, P::EF>)
    where
        P: IdeProblem<G, Fact = D, Value = V>,
    {
        Self::try_solve_seeded(problem, icfg, options, memo, clean)
            .expect("governed solve aborted; use try_solve_seeded to handle SolveAbort")
    }

    /// Governed [`solve_seeded`](Self::solve_seeded); see
    /// [`try_solve_with`](Self::try_solve_with) for the abort contract.
    pub fn try_solve_seeded<P>(
        problem: &P,
        icfg: &G,
        options: IdeSolverOptions,
        memo: &SolverMemo<G::Method, G::Stmt, D, P::EF>,
        clean: &dyn Fn(G::Method) -> bool,
    ) -> Result<(Self, SolverMemo<G::Method, G::Stmt, D, P::EF>), SolveAbort>
    where
        P: IdeProblem<G, Fact = D, Value = V>,
    {
        // Preload clean methods' Phase-1 state. Jump entries enter with
        // a cleared pending flag: they are already at fixpoint, so the
        // initial seeds re-joining the identity edge find no change and
        // queue nothing — a fully clean program re-solves with zero
        // propagations.
        let mut jump: FastMap<(G::Stmt, P::Fact), FastMap<P::Fact, JumpEntry<P::EF>>> =
            FastMap::default();
        for (key, fns) in &memo.jump {
            if clean(icfg.method_of(key.0)) {
                jump.insert(
                    key.clone(),
                    fns.iter()
                        .map(|(d, f)| (d.clone(), (f.clone(), false)))
                        .collect(),
                );
            }
        }
        let mut end_summary: FastMap<(G::Method, P::Fact), FastMap<(G::Stmt, P::Fact), P::EF>> =
            FastMap::default();
        let mut sealed: FastSet<(G::Method, P::Fact)> = FastSet::default();
        for (key, summaries) in &memo.end_summary {
            if clean(key.0) {
                sealed.insert(key.clone());
                end_summary.insert(key.clone(), summaries.clone());
            }
        }
        let mut phase1 = Phase1::<G, P> {
            jump,
            worklist: VecDeque::new(),
            dedup: options.worklist_dedup,
            incoming: FastMap::default(),
            end_summary,
            sealed,
            stats: IdeStats::default(),
        };
        phase1.run(problem, icfg, &options)?;
        let stats = phase1.stats;
        let (values, stats) = phase2(problem, icfg, &phase1.jump, stats, &options)?;
        let next_memo = SolverMemo {
            jump: phase1
                .jump
                .into_iter()
                .map(|(k, fns)| (k, fns.into_iter().map(|(d, (f, _))| (d, f)).collect()))
                .collect(),
            end_summary: phase1.end_summary,
        };
        Ok((
            IdeSolver {
                values,
                top: problem.top(),
                zero: problem.zero(),
                stats,
            },
            next_memo,
        ))
    }

    /// The value computed for `fact` at `stmt` (⊤ if never reached).
    pub fn value_at(&self, stmt: G::Stmt, fact: &D) -> V {
        self.values
            .get(&stmt)
            .and_then(|m| m.get(fact))
            .cloned()
            .unwrap_or_else(|| self.top.clone())
    }

    /// All (fact, value) pairs at `stmt` whose value is not ⊤.
    pub fn results_at(&self, stmt: G::Stmt) -> FastMap<D, V> {
        self.values
            .get(&stmt)
            .map(|m| {
                m.iter()
                    .filter(|(_, v)| **v != self.top)
                    .map(|(d, v)| (d.clone(), v.clone()))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The value of the zero fact at `stmt` — in SPLLIFT, the reachability
    /// constraint of the statement (paper §3.3).
    pub fn reachability_of(&self, stmt: G::Stmt) -> V {
        self.value_at(stmt, &self.zero)
    }

    /// Every (stmt, fact, value) triple with a non-⊤ value.
    pub fn all_results(&self) -> impl Iterator<Item = (G::Stmt, &D, &V)> {
        self.values.iter().flat_map(move |(s, m)| {
            m.iter()
                .filter(move |(_, v)| **v != self.top)
                .map(move |(d, v)| (*s, d, v))
        })
    }

    /// Solver counters.
    pub fn stats(&self) -> IdeStats {
        self.stats
    }
}

/// A Phase-1 jump function plus its worklist status. The `bool` is
/// `true` while the owning `(d1, n, d2)` triple sits in the worklist —
/// tracked inline so dedup costs no extra hashing or fact clones (the
/// flag rides on map lookups `propagate`/`run` perform anyway).
type JumpEntry<EF> = (EF, bool);

/// Phase-1 state. Jump functions are keyed `(stmt, d1) → d2 → EF`, where
/// `d1` is the fact at the start point of `stmt`'s method.
struct Phase1<G: Icfg, P: IdeProblem<G>> {
    jump: FastMap<(G::Stmt, P::Fact), FastMap<P::Fact, JumpEntry<P::EF>>>,
    worklist: VecDeque<(P::Fact, G::Stmt, P::Fact)>,
    dedup: bool,
    /// (callee, entry fact) → {(call stmt, fact at call, caller sp fact)}.
    incoming: FastMap<(G::Method, P::Fact), FastSet<(G::Stmt, P::Fact, P::Fact)>>,
    /// (callee, entry fact) → (exit stmt, exit fact) → summary EF.
    end_summary: FastMap<(G::Method, P::Fact), FastMap<(G::Stmt, P::Fact), P::EF>>,
    /// `(method, entry fact)` keys whose end summaries were preloaded
    /// from a [`SolverMemo`] and are known final: calls reaching such an
    /// entry apply the cached summaries without re-tabulating the callee
    /// body for that entry fact.
    sealed: FastSet<(G::Method, P::Fact)>,
    stats: IdeStats,
}

impl<G, P> Phase1<G, P>
where
    G: Icfg,
    P: IdeProblem<G>,
{
    fn propagate(&mut self, d1: P::Fact, n: G::Stmt, d2: P::Fact, f: P::EF) {
        if f.is_kill() {
            self.stats.killed_early += 1;
            return;
        }
        let slot = self.jump.entry((n, d1.clone())).or_default();
        // `queue` means: strengthened AND not already pending (a pending
        // entry reads the latest jump function when it is popped, so
        // re-queuing it would only burn a propagation — unless dedup is
        // off, where we reproduce the historical always-queue behavior).
        let (changed, queue) = match slot.get_mut(&d2) {
            None => {
                slot.insert(d2.clone(), (f, true));
                (true, true)
            }
            Some((old, queued)) => {
                let joined = old.join(&f);
                if joined != *old {
                    *old = joined;
                    let requeue = !*queued || !self.dedup;
                    *queued = true;
                    (true, requeue)
                } else {
                    (false, false)
                }
            }
        };
        if changed {
            self.stats.jump_fn_constructions += 1;
        }
        if queue {
            self.worklist.push_back((d1, n, d2));
        }
    }

    fn jump_of(&self, n: G::Stmt, d1: &P::Fact, d2: &P::Fact) -> Option<P::EF> {
        self.jump
            .get(&(n, d1.clone()))?
            .get(d2)
            .map(|(f, _)| f.clone())
    }

    /// [`jump_of`](Self::jump_of) for the just-popped worklist triple:
    /// additionally clears its pending flag, so later strengthenings
    /// queue it again.
    fn take_jump(&mut self, n: G::Stmt, d1: &P::Fact, d2: &P::Fact) -> Option<P::EF> {
        let (f, queued) = self.jump.get_mut(&(n, d1.clone()))?.get_mut(d2)?;
        *queued = false;
        Some(f.clone())
    }

    fn run(&mut self, problem: &P, icfg: &G, options: &IdeSolverOptions) -> Result<(), SolveAbort> {
        let governed = options.limits.armed() || options.poll_budget;
        for (sp, fact) in problem.initial_seeds(icfg) {
            self.propagate(fact.clone(), sp, fact, problem.id_edge());
        }
        while let Some((d1, n, d2)) = self.worklist.pop_front() {
            self.stats.propagations += 1;
            if governed {
                governance_check(options, self.stats.propagations, problem)?;
            }
            // Snapshot of the (current) jump function for this triple;
            // clears its pending flag.
            let Some(f) = self.take_jump(n, &d1, &d2) else {
                continue;
            };
            let method = icfg.method_of(n);
            if icfg.is_call(n) {
                self.process_call(problem, icfg, &d1, n, &d2, &f);
            } else {
                if icfg.is_exit(n) {
                    self.process_exit(problem, icfg, method, &d1, n, &d2, &f);
                }
                // Exit statements normally have no successors, but in a
                // lifted SPL graph a *disabled* return falls through
                // (paper Fig. 4): propagate normal flow along any extra
                // successors the ICFG reports.
                for succ in icfg.successors_of(n) {
                    self.stats.flow_evals += 1;
                    for (d3, g) in problem.flow_normal(icfg, n, succ, &d2) {
                        self.propagate(d1.clone(), succ, d3, f.compose_with(&g));
                    }
                }
            }
        }
        Ok(())
    }

    fn process_call(
        &mut self,
        problem: &P,
        icfg: &G,
        d1: &P::Fact,
        n: G::Stmt,
        d2: &P::Fact,
        f: &P::EF,
    ) {
        for callee in icfg.callees_of(n) {
            self.stats.flow_evals += 1;
            for (d3, g_call) in problem.flow_call(icfg, n, callee, d2) {
                let sp = icfg.start_point_of(callee);
                let key = (callee, d3.clone());
                // Callee-local jump functions start from the identity —
                // unless this entry is sealed (its summaries were
                // preloaded at fixpoint), in which case re-tabulating
                // the callee body would be pure wasted work.
                if !self.sealed.contains(&key) {
                    self.propagate(d3.clone(), sp, d3.clone(), problem.id_edge());
                }
                self.incoming
                    .entry(key.clone())
                    .or_default()
                    .insert((n, d2.clone(), d1.clone()));
                let summaries: Vec<((G::Stmt, P::Fact), P::EF)> = self
                    .end_summary
                    .get(&key)
                    .map(|m| m.iter().map(|(k, v)| (k.clone(), v.clone())).collect())
                    .unwrap_or_default();
                for ((exit, d4), f_summary) in summaries {
                    for r in icfg.return_sites_of(n) {
                        self.stats.flow_evals += 1;
                        for (d5, g_ret) in problem.flow_return(icfg, n, callee, exit, r, &d4) {
                            let composed = f
                                .compose_with(&g_call)
                                .compose_with(&f_summary)
                                .compose_with(&g_ret);
                            self.propagate(d1.clone(), r, d5, composed);
                        }
                    }
                }
            }
        }
        for r in icfg.return_sites_of(n) {
            self.stats.flow_evals += 1;
            for (d3, g) in problem.flow_call_to_return(icfg, n, r, d2) {
                self.propagate(d1.clone(), r, d3, f.compose_with(&g));
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn process_exit(
        &mut self,
        problem: &P,
        icfg: &G,
        method: G::Method,
        d1: &P::Fact,
        n: G::Stmt,
        d2: &P::Fact,
        f: &P::EF,
    ) {
        let key = (method, d1.clone());
        let entry = self
            .end_summary
            .entry(key.clone())
            .or_default()
            .entry((n, d2.clone()));
        use std::collections::hash_map::Entry;
        let changed = match entry {
            Entry::Vacant(v) => {
                v.insert(f.clone());
                true
            }
            Entry::Occupied(mut o) => {
                let joined = o.get().join(f);
                if joined != *o.get() {
                    o.insert(joined);
                    true
                } else {
                    false
                }
            }
        };
        if !changed {
            return;
        }
        let callers: Vec<(G::Stmt, P::Fact, P::Fact)> = self
            .incoming
            .get(&key)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default();
        for (call, d2c, d1c) in callers {
            let Some(f_prefix) = self.jump_of(call, &d1c, &d2c) else {
                continue;
            };
            self.stats.flow_evals += 1;
            for (d3, g_call) in problem.flow_call(icfg, call, method, &d2c) {
                if d3 != *d1 {
                    continue;
                }
                for r in icfg.return_sites_of(call) {
                    self.stats.flow_evals += 1;
                    for (d5, g_ret) in problem.flow_return(icfg, call, method, n, r, d2) {
                        let composed = f_prefix
                            .compose_with(&g_call)
                            .compose_with(&f.clone())
                            .compose_with(&g_ret);
                        self.propagate(d1c.clone(), r, d5, composed);
                    }
                }
            }
        }
    }
}

/// The per-propagation governance probe: bounds first (cheap integer /
/// clock tests), then the value-domain budget poll.
fn governance_check<G, P>(
    options: &IdeSolverOptions,
    propagations: u64,
    problem: &P,
) -> Result<(), SolveAbort>
where
    G: Icfg,
    P: IdeProblem<G>,
{
    options.limits.check(propagations)?;
    if options.poll_budget {
        problem.budget_check().map_err(SolveAbort::Budget)?;
    }
    Ok(())
}

/// Phase 2: propagate concrete values to all procedure entries, then
/// evaluate every jump function once.
fn phase2<G, P>(
    problem: &P,
    icfg: &G,
    jump: &FastMap<(G::Stmt, P::Fact), FastMap<P::Fact, JumpEntry<P::EF>>>,
    mut stats: IdeStats,
    options: &IdeSolverOptions,
) -> Result<(FastMap<G::Stmt, FastMap<P::Fact, P::Value>>, IdeStats), SolveAbort>
where
    G: Icfg,
    P: IdeProblem<G>,
{
    let governed = options.limits.armed() || options.poll_budget;
    let mut values: FastMap<G::Stmt, FastMap<P::Fact, P::Value>> = FastMap::default();
    let mut worklist: VecDeque<(G::Method, P::Fact)> = VecDeque::new();
    let top = problem.top();

    let update = |values: &mut FastMap<G::Stmt, FastMap<P::Fact, P::Value>>,
                  stats: &mut IdeStats,
                  stmt: G::Stmt,
                  fact: P::Fact,
                  v: P::Value|
     -> bool {
        let slot = values
            .entry(stmt)
            .or_default()
            .entry(fact)
            .or_insert_with(|| top.clone());
        let joined = problem.join_values(slot, &v);
        if joined != *slot {
            *slot = joined;
            stats.value_updates += 1;
            true
        } else {
            false
        }
    };

    for (sp, fact) in problem.initial_seeds(icfg) {
        if update(
            &mut values,
            &mut stats,
            sp,
            fact.clone(),
            problem.seed_value(),
        ) {
            worklist.push_back((icfg.method_of(sp), fact));
        }
    }

    // Inter-procedural value propagation between procedure entries.
    while let Some((m, d1)) = worklist.pop_front() {
        if governed {
            governance_check(options, stats.propagations, problem)?;
        }
        let sp = icfg.start_point_of(m);
        let v = values
            .get(&sp)
            .and_then(|facts| facts.get(&d1))
            .cloned()
            .unwrap_or_else(|| top.clone());
        for call in icfg.calls_in(m) {
            let Some(fns) = jump.get(&(call, d1.clone())) else {
                continue;
            };
            for (d2, (f, _)) in fns {
                let vc = f.apply(&v);
                if vc == top {
                    continue;
                }
                for callee in icfg.callees_of(call) {
                    for (d3, g) in problem.flow_call(icfg, call, callee, d2) {
                        let nv = g.apply(&vc);
                        if nv == top {
                            continue;
                        }
                        let spq = icfg.start_point_of(callee);
                        if update(&mut values, &mut stats, spq, d3.clone(), nv) {
                            worklist.push_back((callee, d3));
                        }
                    }
                }
            }
        }
    }

    // Evaluate jump functions at every node from the entry values.
    let mut entry_values: Vec<(G::Stmt, P::Fact, P::Value)> = Vec::new();
    for (&sp, facts) in &values {
        if icfg.start_point_of(icfg.method_of(sp)) != sp {
            continue;
        }
        for (d1, v) in facts {
            entry_values.push((sp, d1.clone(), v.clone()));
        }
    }
    for (sp, d1, v) in entry_values {
        if governed {
            governance_check(options, stats.propagations, problem)?;
        }
        let m = icfg.method_of(sp);
        for n in icfg.stmts_of(m) {
            let Some(fns) = jump.get(&(n, d1.clone())) else {
                continue;
            };
            for (d2, (f, _)) in fns {
                let nv = f.apply(&v);
                if nv == top {
                    continue;
                }
                update(&mut values, &mut stats, n, d2.clone(), nv);
            }
        }
    }

    // Value application itself runs constraint operations; a budget can
    // therefore first trip here, after phase 1 fit. Catch it before the
    // garbage values escape.
    if governed {
        governance_check(options, stats.propagations, problem)?;
    }

    Ok((values, stats))
}
