//! The two-phase IDE solver.
//!
//! Phase 1 tabulates *jump functions* — symbolic compositions of edge
//! functions from `(sp(m), d1)` to `(n, d2)` — together with summary
//! functions for calls, exactly like the IFDS tabulation but over
//! (fact, edge-function) pairs. Phase 2 seeds concrete values at the entry
//! points, pushes them across call edges to all procedure entries, and
//! finally evaluates every jump function once.

use crate::{EdgeFn, IdeProblem};
use spllift_hash::{FastMap, FastSet, FxHasher64};
use spllift_ifds::{Icfg, SolveAbort, SolveLimits};
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::thread;

/// Counters collected during an IDE solver run.
///
/// `jump_fn_constructions` counts every time a jump function is created or
/// strengthened — the quantity the paper's §6.2 correlates with running
/// time (ρ > 0.99).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdeStats {
    /// Phase-1 worklist items processed.
    pub propagations: u64,
    /// Flow-function evaluations (phase 1).
    pub flow_evals: u64,
    /// Jump-function creations + strengthenings.
    pub jump_fn_constructions: u64,
    /// Propagations discarded because the jump function was a kill
    /// function (early termination, paper §4.2).
    pub killed_early: u64,
    /// Phase-2 value updates.
    pub value_updates: u64,
}

/// Tuning knobs for the IDE solver.
///
/// The defaults are what [`IdeSolver::solve`] uses; pass an explicit
/// value to [`IdeSolver::solve_with`] to deviate (the invariance tests
/// run both settings and assert identical results).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdeSolverOptions {
    /// Deduplicate the Phase-1 worklist: a `(d1, n, d2)` triple whose
    /// jump function strengthens while the triple is already queued is
    /// not queued a second time — the pending entry reads the latest
    /// jump function when it is popped, so the fixpoint is unchanged but
    /// [`IdeStats::propagations`] drops.
    pub worklist_dedup: bool,
    /// Propagation cap and wall-clock deadline. When any bound is set,
    /// the `try_solve*` entry points abort with the matching
    /// [`SolveAbort`]; the infallible entry points panic. Unlimited by
    /// default, in which case the per-iteration checks are skipped and
    /// the hot path is byte-for-byte the ungoverned one.
    pub limits: SolveLimits,
    /// Poll [`IdeProblem::budget_check`] between propagations and abort
    /// with [`SolveAbort::Budget`] when the value domain's resource
    /// budget is exhausted. Off by default (the poll costs a virtual
    /// call per propagation); governed solves that arm a constraint
    /// budget must turn it on.
    pub poll_budget: bool,
    /// Phase-1 worker threads. `0` and `1` both mean the sequential
    /// worklist (byte-for-byte the historical solver); `N > 1` runs
    /// Phase-1 propagation on `N` workers over method-sharded worklists
    /// with work stealing. Results are identical at every setting —
    /// only [`IdeStats`] scheduling counters (`propagations`,
    /// `flow_evals`, `value_updates`) may differ, because dedup hits
    /// and join order depend on interleaving. Phase 2 is sequential at
    /// any setting. See DESIGN.md §12 for the determinism argument.
    pub threads: usize,
}

impl Default for IdeSolverOptions {
    fn default() -> Self {
        IdeSolverOptions {
            worklist_dedup: true,
            limits: SolveLimits::default(),
            poll_budget: false,
            threads: 1,
        }
    }
}

/// Reusable Phase-1 artifacts of a completed solve: jump functions and
/// Reps–Horwitz–Sagiv end summaries, keyed exactly as Phase 1 keeps
/// them. [`IdeSolver::solve_seeded`] consumes a memo to warm-start an
/// *incremental* re-solve: entries belonging to methods the caller
/// declares clean are preloaded at their fixpoint, so the solver only
/// re-tabulates the dirty region; entries for dirty methods are
/// discarded and recomputed.
///
/// Soundness requires the clean set to be closed under "calls into":
/// a clean method must only call clean methods (equivalently, the dirty
/// set must contain every transitive *caller* of an edited method).
/// Under that closure a clean method's summaries depend only on
/// unchanged code, so they are final, and the warm solve's fixpoint —
/// and therefore its values — is identical to a cold solve's.
pub struct SolverMemo<M, S, D, EF> {
    /// `(stmt, entry-fact) → target-fact → jump function`, at fixpoint.
    jump: FastMap<(S, D), FastMap<D, EF>>,
    /// `(method, entry-fact) → (exit stmt, exit fact) → summary`.
    end_summary: FastMap<(M, D), FastMap<(S, D), EF>>,
}

impl<M, S, D, EF> Default for SolverMemo<M, S, D, EF> {
    fn default() -> Self {
        SolverMemo {
            jump: FastMap::default(),
            end_summary: FastMap::default(),
        }
    }
}

impl<M, S, D, EF> SolverMemo<M, S, D, EF> {
    /// `true` if the memo carries no retained state (a seeded solve with
    /// an empty memo is exactly a cold solve).
    pub fn is_empty(&self) -> bool {
        self.jump.is_empty() && self.end_summary.is_empty()
    }

    /// Number of retained jump-function entries.
    pub fn jump_fns(&self) -> usize {
        self.jump.values().map(FastMap::len).sum()
    }

    /// Number of retained `(method, entry-fact)` summary keys.
    pub fn summary_keys(&self) -> usize {
        self.end_summary.len()
    }
}

/// The IDE solver. Build with [`IdeSolver::solve`].
#[derive(Debug)]
pub struct IdeSolver<G: Icfg, D, V>
where
    D: Clone + Eq + std::hash::Hash,
{
    /// Values keyed per statement, then per fact — so per-statement
    /// queries (`results_at`) are O(facts at that statement).
    values: FastMap<G::Stmt, FastMap<D, V>>,
    top: V,
    zero: D,
    stats: IdeStats,
}

impl<G, D, V> IdeSolver<G, D, V>
where
    G: Icfg,
    D: Clone + Eq + std::hash::Hash + std::fmt::Debug,
    V: Clone + Eq + std::fmt::Debug,
{
    /// Runs both phases of the IDE algorithm to a fixpoint with the
    /// default [`IdeSolverOptions`].
    pub fn solve<P>(problem: &P, icfg: &G) -> Self
    where
        P: IdeProblem<G, Fact = D, Value = V> + Sync,
        G: Sync,
        G::Stmt: Send + Sync,
        G::Method: Send + Sync,
        D: Send + Sync,
        P::EF: Send + Sync,
    {
        Self::solve_with(problem, icfg, IdeSolverOptions::default())
    }

    /// Runs both phases of the IDE algorithm to a fixpoint with explicit
    /// [`IdeSolverOptions`].
    pub fn solve_with<P>(problem: &P, icfg: &G, options: IdeSolverOptions) -> Self
    where
        P: IdeProblem<G, Fact = D, Value = V> + Sync,
        G: Sync,
        G::Stmt: Send + Sync,
        G::Method: Send + Sync,
        D: Send + Sync,
        P::EF: Send + Sync,
    {
        Self::solve_seeded(problem, icfg, options, &SolverMemo::default(), &|_| false).0
    }

    /// Governed [`solve_with`](Self::solve_with): aborts with a
    /// [`SolveAbort`] when an [`IdeSolverOptions::limits`] bound is hit
    /// or (with [`IdeSolverOptions::poll_budget`]) the problem reports
    /// budget exhaustion. The partial tabulation is discarded on abort.
    pub fn try_solve_with<P>(
        problem: &P,
        icfg: &G,
        options: IdeSolverOptions,
    ) -> Result<Self, SolveAbort>
    where
        P: IdeProblem<G, Fact = D, Value = V> + Sync,
        G: Sync,
        G::Stmt: Send + Sync,
        G::Method: Send + Sync,
        D: Send + Sync,
        P::EF: Send + Sync,
    {
        Self::try_solve_seeded(problem, icfg, options, &SolverMemo::default(), &|_| false)
            .map(|(solver, _)| solver)
    }

    /// Incremental solve: warm-starts Phase 1 from `memo`, keeping the
    /// retained jump functions and end summaries of every method `m`
    /// with `clean(m)`, and re-tabulating everything else. Returns the
    /// solution together with a fresh memo for the *next* solve.
    ///
    /// The caller guarantees the clean-set closure documented on
    /// [`SolverMemo`]; with it, the result is identical to a cold
    /// [`solve_with`](Self::solve_with) while
    /// [`IdeStats::propagations`] only counts work in the dirty region
    /// (plus any new entry facts flowing into clean methods).
    pub fn solve_seeded<P>(
        problem: &P,
        icfg: &G,
        options: IdeSolverOptions,
        memo: &SolverMemo<G::Method, G::Stmt, D, P::EF>,
        clean: &dyn Fn(G::Method) -> bool,
    ) -> (Self, SolverMemo<G::Method, G::Stmt, D, P::EF>)
    where
        P: IdeProblem<G, Fact = D, Value = V> + Sync,
        G: Sync,
        G::Stmt: Send + Sync,
        G::Method: Send + Sync,
        D: Send + Sync,
        P::EF: Send + Sync,
    {
        Self::try_solve_seeded(problem, icfg, options, memo, clean)
            .expect("governed solve aborted; use try_solve_seeded to handle SolveAbort")
    }

    /// Governed [`solve_seeded`](Self::solve_seeded); see
    /// [`try_solve_with`](Self::try_solve_with) for the abort contract.
    pub fn try_solve_seeded<P>(
        problem: &P,
        icfg: &G,
        options: IdeSolverOptions,
        memo: &SolverMemo<G::Method, G::Stmt, D, P::EF>,
        clean: &dyn Fn(G::Method) -> bool,
    ) -> Result<(Self, SolverMemo<G::Method, G::Stmt, D, P::EF>), SolveAbort>
    where
        P: IdeProblem<G, Fact = D, Value = V> + Sync,
        G: Sync,
        G::Stmt: Send + Sync,
        G::Method: Send + Sync,
        D: Send + Sync,
        P::EF: Send + Sync,
    {
        // Preload clean methods' Phase-1 state. Jump entries enter with
        // a cleared pending flag: they are already at fixpoint, so the
        // initial seeds re-joining the identity edge find no change and
        // queue nothing — a fully clean program re-solves with zero
        // propagations.
        let mut jump: FastMap<(G::Stmt, P::Fact), FastMap<P::Fact, JumpEntry<P::EF>>> =
            FastMap::default();
        for (key, fns) in &memo.jump {
            if clean(icfg.method_of(key.0)) {
                jump.insert(
                    key.clone(),
                    fns.iter()
                        .map(|(d, f)| (d.clone(), (f.clone(), false)))
                        .collect(),
                );
            }
        }
        let mut end_summary: FastMap<(G::Method, P::Fact), FastMap<(G::Stmt, P::Fact), P::EF>> =
            FastMap::default();
        let mut sealed: FastSet<(G::Method, P::Fact)> = FastSet::default();
        for (key, summaries) in &memo.end_summary {
            if clean(key.0) {
                sealed.insert(key.clone());
                end_summary.insert(key.clone(), summaries.clone());
            }
        }
        let (jump, end_summary, stats) = if options.threads > 1 {
            run_parallel_phase1(problem, icfg, &options, jump, end_summary, sealed)?
        } else {
            let mut phase1 = Phase1::<G, P> {
                jump,
                worklist: VecDeque::new(),
                dedup: options.worklist_dedup,
                incoming: FastMap::default(),
                end_summary,
                sealed,
                stats: IdeStats::default(),
            };
            phase1.run(problem, icfg, &options)?;
            (phase1.jump, phase1.end_summary, phase1.stats)
        };
        let (values, stats) = phase2(problem, icfg, &jump, stats, &options)?;
        let next_memo = SolverMemo {
            jump: jump
                .into_iter()
                .map(|(k, fns)| (k, fns.into_iter().map(|(d, (f, _))| (d, f)).collect()))
                .collect(),
            end_summary,
        };
        Ok((
            IdeSolver {
                values,
                top: problem.top(),
                zero: problem.zero(),
                stats,
            },
            next_memo,
        ))
    }

    /// The value computed for `fact` at `stmt` (⊤ if never reached).
    pub fn value_at(&self, stmt: G::Stmt, fact: &D) -> V {
        self.values
            .get(&stmt)
            .and_then(|m| m.get(fact))
            .cloned()
            .unwrap_or_else(|| self.top.clone())
    }

    /// All (fact, value) pairs at `stmt` whose value is not ⊤.
    pub fn results_at(&self, stmt: G::Stmt) -> FastMap<D, V> {
        self.values
            .get(&stmt)
            .map(|m| {
                m.iter()
                    .filter(|(_, v)| **v != self.top)
                    .map(|(d, v)| (d.clone(), v.clone()))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The value of the zero fact at `stmt` — in SPLLIFT, the reachability
    /// constraint of the statement (paper §3.3).
    pub fn reachability_of(&self, stmt: G::Stmt) -> V {
        self.value_at(stmt, &self.zero)
    }

    /// Every (stmt, fact, value) triple with a non-⊤ value.
    pub fn all_results(&self) -> impl Iterator<Item = (G::Stmt, &D, &V)> {
        self.values.iter().flat_map(move |(s, m)| {
            m.iter()
                .filter(move |(_, v)| **v != self.top)
                .map(move |(d, v)| (*s, d, v))
        })
    }

    /// Solver counters.
    pub fn stats(&self) -> IdeStats {
        self.stats
    }
}

/// A Phase-1 jump function plus its worklist status. The `bool` is
/// `true` while the owning `(d1, n, d2)` triple sits in the worklist —
/// tracked inline so dedup costs no extra hashing or fact clones (the
/// flag rides on map lookups `propagate`/`run` perform anyway).
type JumpEntry<EF> = (EF, bool);

/// Phase-1 state. Jump functions are keyed `(stmt, d1) → d2 → EF`, where
/// `d1` is the fact at the start point of `stmt`'s method.
struct Phase1<G: Icfg, P: IdeProblem<G>> {
    jump: FastMap<(G::Stmt, P::Fact), FastMap<P::Fact, JumpEntry<P::EF>>>,
    worklist: VecDeque<(P::Fact, G::Stmt, P::Fact)>,
    dedup: bool,
    /// (callee, entry fact) → {(call stmt, fact at call, caller sp fact)}.
    incoming: FastMap<(G::Method, P::Fact), FastSet<(G::Stmt, P::Fact, P::Fact)>>,
    /// (callee, entry fact) → (exit stmt, exit fact) → summary EF.
    end_summary: FastMap<(G::Method, P::Fact), FastMap<(G::Stmt, P::Fact), P::EF>>,
    /// `(method, entry fact)` keys whose end summaries were preloaded
    /// from a [`SolverMemo`] and are known final: calls reaching such an
    /// entry apply the cached summaries without re-tabulating the callee
    /// body for that entry fact.
    sealed: FastSet<(G::Method, P::Fact)>,
    stats: IdeStats,
}

impl<G, P> Phase1<G, P>
where
    G: Icfg,
    P: IdeProblem<G>,
{
    fn propagate(&mut self, d1: P::Fact, n: G::Stmt, d2: P::Fact, f: P::EF) {
        if f.is_kill() {
            self.stats.killed_early += 1;
            return;
        }
        let slot = self.jump.entry((n, d1.clone())).or_default();
        // `queue` means: strengthened AND not already pending (a pending
        // entry reads the latest jump function when it is popped, so
        // re-queuing it would only burn a propagation — unless dedup is
        // off, where we reproduce the historical always-queue behavior).
        let (changed, queue) = match slot.get_mut(&d2) {
            None => {
                slot.insert(d2.clone(), (f, true));
                (true, true)
            }
            Some((old, queued)) => {
                let joined = old.join(&f);
                if joined != *old {
                    *old = joined;
                    let requeue = !*queued || !self.dedup;
                    *queued = true;
                    (true, requeue)
                } else {
                    (false, false)
                }
            }
        };
        if changed {
            self.stats.jump_fn_constructions += 1;
        }
        if queue {
            self.worklist.push_back((d1, n, d2));
        }
    }

    fn jump_of(&self, n: G::Stmt, d1: &P::Fact, d2: &P::Fact) -> Option<P::EF> {
        self.jump
            .get(&(n, d1.clone()))?
            .get(d2)
            .map(|(f, _)| f.clone())
    }

    /// [`jump_of`](Self::jump_of) for the just-popped worklist triple:
    /// additionally clears its pending flag, so later strengthenings
    /// queue it again.
    fn take_jump(&mut self, n: G::Stmt, d1: &P::Fact, d2: &P::Fact) -> Option<P::EF> {
        let (f, queued) = self.jump.get_mut(&(n, d1.clone()))?.get_mut(d2)?;
        *queued = false;
        Some(f.clone())
    }

    fn run(&mut self, problem: &P, icfg: &G, options: &IdeSolverOptions) -> Result<(), SolveAbort> {
        let governed = options.limits.armed() || options.poll_budget;
        for (sp, fact) in problem.initial_seeds(icfg) {
            self.propagate(fact.clone(), sp, fact, problem.id_edge());
        }
        while let Some((d1, n, d2)) = self.worklist.pop_front() {
            self.stats.propagations += 1;
            if governed {
                governance_check(options, self.stats.propagations, problem)?;
            }
            // Snapshot of the (current) jump function for this triple;
            // clears its pending flag.
            let Some(f) = self.take_jump(n, &d1, &d2) else {
                continue;
            };
            let method = icfg.method_of(n);
            if icfg.is_call(n) {
                self.process_call(problem, icfg, &d1, n, &d2, &f);
            } else {
                if icfg.is_exit(n) {
                    self.process_exit(problem, icfg, method, &d1, n, &d2, &f);
                }
                // Exit statements normally have no successors, but in a
                // lifted SPL graph a *disabled* return falls through
                // (paper Fig. 4): propagate normal flow along any extra
                // successors the ICFG reports.
                for succ in icfg.successors_of(n) {
                    self.stats.flow_evals += 1;
                    for (d3, g) in problem.flow_normal(icfg, n, succ, &d2) {
                        self.propagate(d1.clone(), succ, d3, f.compose_with(&g));
                    }
                }
            }
        }
        Ok(())
    }

    fn process_call(
        &mut self,
        problem: &P,
        icfg: &G,
        d1: &P::Fact,
        n: G::Stmt,
        d2: &P::Fact,
        f: &P::EF,
    ) {
        for callee in icfg.callees_of(n) {
            self.stats.flow_evals += 1;
            for (d3, g_call) in problem.flow_call(icfg, n, callee, d2) {
                let sp = icfg.start_point_of(callee);
                let key = (callee, d3.clone());
                // Callee-local jump functions start from the identity —
                // unless this entry is sealed (its summaries were
                // preloaded at fixpoint), in which case re-tabulating
                // the callee body would be pure wasted work.
                if !self.sealed.contains(&key) {
                    self.propagate(d3.clone(), sp, d3.clone(), problem.id_edge());
                }
                self.incoming
                    .entry(key.clone())
                    .or_default()
                    .insert((n, d2.clone(), d1.clone()));
                let summaries: Vec<((G::Stmt, P::Fact), P::EF)> = self
                    .end_summary
                    .get(&key)
                    .map(|m| m.iter().map(|(k, v)| (k.clone(), v.clone())).collect())
                    .unwrap_or_default();
                for ((exit, d4), f_summary) in summaries {
                    for r in icfg.return_sites_of(n) {
                        self.stats.flow_evals += 1;
                        for (d5, g_ret) in problem.flow_return(icfg, n, callee, exit, r, &d4) {
                            let composed = f
                                .compose_with(&g_call)
                                .compose_with(&f_summary)
                                .compose_with(&g_ret);
                            self.propagate(d1.clone(), r, d5, composed);
                        }
                    }
                }
            }
        }
        for r in icfg.return_sites_of(n) {
            self.stats.flow_evals += 1;
            for (d3, g) in problem.flow_call_to_return(icfg, n, r, d2) {
                self.propagate(d1.clone(), r, d3, f.compose_with(&g));
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn process_exit(
        &mut self,
        problem: &P,
        icfg: &G,
        method: G::Method,
        d1: &P::Fact,
        n: G::Stmt,
        d2: &P::Fact,
        f: &P::EF,
    ) {
        let key = (method, d1.clone());
        let entry = self
            .end_summary
            .entry(key.clone())
            .or_default()
            .entry((n, d2.clone()));
        use std::collections::hash_map::Entry;
        let changed = match entry {
            Entry::Vacant(v) => {
                v.insert(f.clone());
                true
            }
            Entry::Occupied(mut o) => {
                let joined = o.get().join(f);
                if joined != *o.get() {
                    o.insert(joined);
                    true
                } else {
                    false
                }
            }
        };
        if !changed {
            return;
        }
        let callers: Vec<(G::Stmt, P::Fact, P::Fact)> = self
            .incoming
            .get(&key)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default();
        for (call, d2c, d1c) in callers {
            let Some(f_prefix) = self.jump_of(call, &d1c, &d2c) else {
                continue;
            };
            self.stats.flow_evals += 1;
            for (d3, g_call) in problem.flow_call(icfg, call, method, &d2c) {
                if d3 != *d1 {
                    continue;
                }
                for r in icfg.return_sites_of(call) {
                    self.stats.flow_evals += 1;
                    for (d5, g_ret) in problem.flow_return(icfg, call, method, n, r, d2) {
                        let composed = f_prefix
                            .compose_with(&g_call)
                            .compose_with(&f.clone())
                            .compose_with(&g_ret);
                        self.propagate(d1c.clone(), r, d5, composed);
                    }
                }
            }
        }
    }
}

/// One method-sharded slice of parallel Phase-1 state. Every statement
/// maps to its method's shard, so all of a `(method, entry-fact)` key's
/// call-tabulation state — the jump entries at the method's statements,
/// its `incoming` callers, and its end summaries — lives behind **one**
/// mutex. That is the lock the call/exit handshake (below) relies on.
struct P1Shard<G: Icfg, P: IdeProblem<G>> {
    jump: FastMap<(G::Stmt, P::Fact), FastMap<P::Fact, JumpEntry<P::EF>>>,
    incoming: FastMap<(G::Method, P::Fact), FastSet<(G::Stmt, P::Fact, P::Fact)>>,
    end_summary: FastMap<(G::Method, P::Fact), FastMap<(G::Stmt, P::Fact), P::EF>>,
    queue: VecDeque<(P::Fact, G::Stmt, P::Fact)>,
    jump_fn_constructions: u64,
    killed_early: u64,
}

impl<G: Icfg, P: IdeProblem<G>> Default for P1Shard<G, P> {
    fn default() -> Self {
        P1Shard {
            jump: FastMap::default(),
            incoming: FastMap::default(),
            end_summary: FastMap::default(),
            queue: VecDeque::new(),
            jump_fn_constructions: 0,
            killed_early: 0,
        }
    }
}

/// Items a worker drains from a queue per lock acquisition.
const P1_BATCH: usize = 8;

/// Shared state of the parallel Phase-1 run (`threads > 1`).
///
/// # Correctness under interleaving
///
/// The two races a naive parallelization of the Heros tabulation has —
/// a summary registered between a call's summary snapshot and its
/// `incoming` insertion, and an `incoming` caller registered between an
/// exit's summary join and its caller snapshot — are both closed by a
/// single critical section per side on the **callee's shard lock**:
/// `process_call` registers the caller and snapshots summaries under
/// one acquisition; `process_exit` joins the summary and snapshots
/// callers under one acquisition of the same lock. Whichever side runs
/// second sees the other's write, so no summary application is lost.
///
/// Edge-function composition and flow-function evaluation (the BDD
/// work) always run outside shard locks, and at most one shard lock is
/// ever held, so the lock graph is acyclic; the BDD store's internal
/// shard locks are leaf locks below these.
///
/// # Termination
///
/// `inflight` counts queued-or-in-process items (incremented before a
/// queue push, decremented after an item is fully processed, which
/// orders it after any pushes the item itself performed). All queues
/// empty ∧ `inflight == 0` therefore means the fixpoint is reached.
/// A worker that aborts (governance) or panics (fault injection) sets
/// `abort` so the others stop instead of spinning on a never-draining
/// `inflight`.
struct ParPhase1<'g, G: Icfg, P: IdeProblem<G>> {
    icfg: &'g G,
    shards: Vec<Mutex<P1Shard<G, P>>>,
    mask: u64,
    /// Read-only during the run (populated from the memo preload).
    sealed: FastSet<(G::Method, P::Fact)>,
    dedup: bool,
    governed: bool,
    inflight: AtomicU64,
    propagations: AtomicU64,
    flow_evals: AtomicU64,
    abort: AtomicBool,
    abort_cause: Mutex<Option<SolveAbort>>,
}

/// Sets the abort flag if the owning worker unwinds, so sibling workers
/// exit their idle loop instead of waiting for an `inflight` decrement
/// that will never come. The panic itself re-propagates at scope join.
struct AbortOnPanic<'a>(&'a AtomicBool);

impl Drop for AbortOnPanic<'_> {
    fn drop(&mut self) {
        if thread::panicking() {
            self.0.store(true, Ordering::Release);
        }
    }
}

impl<'g, G, P> ParPhase1<'g, G, P>
where
    G: Icfg + Sync,
    P: IdeProblem<G> + Sync,
    G::Stmt: Send + Sync,
    G::Method: Send + Sync,
    P::Fact: Send + Sync,
    P::EF: Send + Sync,
{
    fn shard_for(&self, m: G::Method) -> usize {
        let mut h = FxHasher64::default();
        m.hash(&mut h);
        (h.finish() & self.mask) as usize
    }

    /// [`Phase1::propagate`], against an already-locked shard. The
    /// caller must hold the shard owning `n`'s method.
    fn propagate_into(
        &self,
        shard: &mut P1Shard<G, P>,
        d1: P::Fact,
        n: G::Stmt,
        d2: P::Fact,
        f: P::EF,
    ) {
        if f.is_kill() {
            shard.killed_early += 1;
            return;
        }
        let slot = shard.jump.entry((n, d1.clone())).or_default();
        let (changed, queue) = match slot.get_mut(&d2) {
            None => {
                slot.insert(d2.clone(), (f, true));
                (true, true)
            }
            Some((old, queued)) => {
                let joined = old.join(&f);
                if joined != *old {
                    *old = joined;
                    let requeue = !*queued || !self.dedup;
                    *queued = true;
                    (true, requeue)
                } else {
                    (false, false)
                }
            }
        };
        if changed {
            shard.jump_fn_constructions += 1;
        }
        if queue {
            self.inflight.fetch_add(1, Ordering::Release);
            shard.queue.push_back((d1, n, d2));
        }
    }

    fn propagate(&self, d1: P::Fact, n: G::Stmt, d2: P::Fact, f: P::EF) {
        let s = self.shard_for(self.icfg.method_of(n));
        let mut shard = self.shards[s].lock().expect("phase-1 shard lock");
        self.propagate_into(&mut shard, d1, n, d2, f);
    }

    /// Snapshots the jump function of a just-popped triple and clears
    /// its pending flag (cf. [`Phase1::take_jump`]).
    fn take_jump(&self, n: G::Stmt, d1: &P::Fact, d2: &P::Fact) -> Option<P::EF> {
        let s = self.shard_for(self.icfg.method_of(n));
        let mut shard = self.shards[s].lock().expect("phase-1 shard lock");
        let (f, queued) = shard.jump.get_mut(&(n, d1.clone()))?.get_mut(d2)?;
        *queued = false;
        Some(f.clone())
    }

    fn process(
        &self,
        problem: &P,
        options: &IdeSolverOptions,
        d1: P::Fact,
        n: G::Stmt,
        d2: P::Fact,
    ) -> Result<(), SolveAbort> {
        let count = self.propagations.fetch_add(1, Ordering::Relaxed) + 1;
        if self.governed {
            options.limits.check(count)?;
            if options.poll_budget {
                problem.budget_check().map_err(SolveAbort::Budget)?;
            }
        }
        let icfg = self.icfg;
        let Some(f) = self.take_jump(n, &d1, &d2) else {
            return Ok(());
        };
        if icfg.is_call(n) {
            self.process_call(problem, &d1, n, &d2, &f);
        } else {
            if icfg.is_exit(n) {
                self.process_exit(problem, icfg.method_of(n), &d1, n, &d2, &f);
            }
            for succ in icfg.successors_of(n) {
                self.flow_evals.fetch_add(1, Ordering::Relaxed);
                for (d3, g) in problem.flow_normal(icfg, n, succ, &d2) {
                    self.propagate(d1.clone(), succ, d3, f.compose_with(&g));
                }
            }
        }
        Ok(())
    }

    fn process_call(&self, problem: &P, d1: &P::Fact, n: G::Stmt, d2: &P::Fact, f: &P::EF) {
        let icfg = self.icfg;
        for callee in icfg.callees_of(n) {
            self.flow_evals.fetch_add(1, Ordering::Relaxed);
            for (d3, g_call) in problem.flow_call(icfg, n, callee, d2) {
                let sp = icfg.start_point_of(callee);
                let key = (callee, d3.clone());
                // One critical section on the callee's shard: seed the
                // callee-local identity (sp is in the callee's shard),
                // register this caller, and snapshot the summaries. An
                // exit joining a new summary on another thread either
                // happens before this (we see the summary here) or
                // after (it sees our `incoming` entry and applies the
                // summary in `process_exit`).
                let summaries: Vec<((G::Stmt, P::Fact), P::EF)> = {
                    let s = self.shard_for(callee);
                    let mut shard = self.shards[s].lock().expect("phase-1 shard lock");
                    if !self.sealed.contains(&key) {
                        self.propagate_into(
                            &mut shard,
                            d3.clone(),
                            sp,
                            d3.clone(),
                            problem.id_edge(),
                        );
                    }
                    shard.incoming.entry(key.clone()).or_default().insert((
                        n,
                        d2.clone(),
                        d1.clone(),
                    ));
                    shard
                        .end_summary
                        .get(&key)
                        .map(|m| m.iter().map(|(k, v)| (k.clone(), v.clone())).collect())
                        .unwrap_or_default()
                };
                for ((exit, d4), f_summary) in summaries {
                    for r in icfg.return_sites_of(n) {
                        self.flow_evals.fetch_add(1, Ordering::Relaxed);
                        for (d5, g_ret) in problem.flow_return(icfg, n, callee, exit, r, &d4) {
                            let composed = f
                                .compose_with(&g_call)
                                .compose_with(&f_summary)
                                .compose_with(&g_ret);
                            self.propagate(d1.clone(), r, d5, composed);
                        }
                    }
                }
            }
        }
        for r in icfg.return_sites_of(n) {
            self.flow_evals.fetch_add(1, Ordering::Relaxed);
            for (d3, g) in problem.flow_call_to_return(icfg, n, r, d2) {
                self.propagate(d1.clone(), r, d3, f.compose_with(&g));
            }
        }
    }

    fn process_exit(
        &self,
        problem: &P,
        method: G::Method,
        d1: &P::Fact,
        n: G::Stmt,
        d2: &P::Fact,
        f: &P::EF,
    ) {
        let icfg = self.icfg;
        let key = (method, d1.clone());
        // The exit side of the handshake: join the summary and snapshot
        // the registered callers under one acquisition of the exiting
        // method's shard lock (the same lock `process_call` handshakes
        // on — `method` here *is* the callee there).
        let callers: Vec<(G::Stmt, P::Fact, P::Fact)> = {
            let s = self.shard_for(method);
            let mut shard = self.shards[s].lock().expect("phase-1 shard lock");
            use std::collections::hash_map::Entry;
            let changed = match shard
                .end_summary
                .entry(key.clone())
                .or_default()
                .entry((n, d2.clone()))
            {
                Entry::Vacant(v) => {
                    v.insert(f.clone());
                    true
                }
                Entry::Occupied(mut o) => {
                    let joined = o.get().join(f);
                    if joined != *o.get() {
                        o.insert(joined);
                        true
                    } else {
                        false
                    }
                }
            };
            if !changed {
                return;
            }
            shard
                .incoming
                .get(&key)
                .map(|set| set.iter().cloned().collect())
                .unwrap_or_default()
        };
        for (call, d2c, d1c) in callers {
            // The caller's jump prefix lives in the caller's shard —
            // probed *after* releasing the callee lock. If it
            // strengthens later, the call triple re-queues and
            // `process_call` re-applies our (already joined) summary.
            let f_prefix = {
                let s = self.shard_for(icfg.method_of(call));
                let shard = self.shards[s].lock().expect("phase-1 shard lock");
                shard
                    .jump
                    .get(&(call, d1c.clone()))
                    .and_then(|m| m.get(&d2c))
                    .map(|(f, _)| f.clone())
            };
            let Some(f_prefix) = f_prefix else {
                continue;
            };
            self.flow_evals.fetch_add(1, Ordering::Relaxed);
            for (d3, g_call) in problem.flow_call(icfg, call, method, &d2c) {
                if d3 != *d1 {
                    continue;
                }
                for r in icfg.return_sites_of(call) {
                    self.flow_evals.fetch_add(1, Ordering::Relaxed);
                    for (d5, g_ret) in problem.flow_return(icfg, call, method, n, r, d2) {
                        let composed = f_prefix
                            .compose_with(&g_call)
                            .compose_with(&f.clone())
                            .compose_with(&g_ret);
                        self.propagate(d1c.clone(), r, d5, composed);
                    }
                }
            }
        }
    }

    fn record_abort(&self, e: SolveAbort) {
        let mut cause = self.abort_cause.lock().expect("abort cause lock");
        if cause.is_none() {
            *cause = Some(e);
        }
        self.abort.store(true, Ordering::Release);
    }

    /// One worker's loop: drain batches from the home shard, steal
    /// round-robin from the rest, exit when the global fixpoint is
    /// reached or any worker aborted.
    fn worker(&self, problem: &P, options: &IdeSolverOptions, home: usize) {
        let nshards = self.shards.len();
        let mut batch: Vec<(P::Fact, G::Stmt, P::Fact)> = Vec::with_capacity(P1_BATCH);
        loop {
            if self.abort.load(Ordering::Acquire) {
                return;
            }
            for i in 0..nshards {
                let s = (home + i) % nshards;
                let mut shard = self.shards[s].lock().expect("phase-1 shard lock");
                while batch.len() < P1_BATCH {
                    match shard.queue.pop_front() {
                        Some(item) => batch.push(item),
                        None => break,
                    }
                }
                if !batch.is_empty() {
                    break;
                }
            }
            if batch.is_empty() {
                if self.inflight.load(Ordering::Acquire) == 0 {
                    return;
                }
                // Single-core friendliness: hand the slice to whoever
                // holds the remaining work instead of spinning hot.
                thread::yield_now();
                continue;
            }
            for (d1, n, d2) in batch.drain(..) {
                let outcome = self.process(problem, options, d1, n, d2);
                self.inflight.fetch_sub(1, Ordering::Release);
                if let Err(e) = outcome {
                    self.record_abort(e);
                    return;
                }
            }
        }
    }
}

/// Runs Phase 1 on `options.threads` workers over method-sharded
/// worklists (see [`ParPhase1`]) and merges the shards back into the
/// global jump/summary maps the sequential Phase 2 consumes.
///
/// The merged *maps* are identical to a sequential run's (least
/// fixpoint of a monotone system, join commutative/associative/
/// idempotent, and BDD-backed edge functions are canonical, so join
/// order cannot change any value). Scheduling counters (`propagations`,
/// `flow_evals`) are **not** deterministic at `threads > 1`: dedup hits
/// depend on pop/push interleaving.
#[allow(clippy::type_complexity)]
fn run_parallel_phase1<G, P>(
    problem: &P,
    icfg: &G,
    options: &IdeSolverOptions,
    jump: FastMap<(G::Stmt, P::Fact), FastMap<P::Fact, JumpEntry<P::EF>>>,
    end_summary: FastMap<(G::Method, P::Fact), FastMap<(G::Stmt, P::Fact), P::EF>>,
    sealed: FastSet<(G::Method, P::Fact)>,
) -> Result<
    (
        FastMap<(G::Stmt, P::Fact), FastMap<P::Fact, JumpEntry<P::EF>>>,
        FastMap<(G::Method, P::Fact), FastMap<(G::Stmt, P::Fact), P::EF>>,
        IdeStats,
    ),
    SolveAbort,
>
where
    G: Icfg + Sync,
    P: IdeProblem<G> + Sync,
    G::Stmt: Send + Sync,
    G::Method: Send + Sync,
    P::Fact: Send + Sync,
    P::EF: Send + Sync,
{
    let threads = options.threads;
    // More shards than workers keeps steal conflicts rare without
    // fragmenting small programs into thousands of mutexes.
    let nshards = (threads * 8).next_power_of_two();
    let mask = (nshards - 1) as u64;
    let shard_for = |m: G::Method| -> usize {
        let mut h = FxHasher64::default();
        m.hash(&mut h);
        (h.finish() & mask) as usize
    };
    let mut shards: Vec<P1Shard<G, P>> = (0..nshards).map(|_| P1Shard::default()).collect();
    // Distribute memo-preloaded state to its owning shards.
    for (key, fns) in jump {
        shards[shard_for(icfg.method_of(key.0))]
            .jump
            .insert(key, fns);
    }
    for (key, sums) in end_summary {
        shards[shard_for(key.0)].end_summary.insert(key, sums);
    }
    let state = ParPhase1::<G, P> {
        icfg,
        shards: shards.into_iter().map(Mutex::new).collect(),
        mask,
        sealed,
        dedup: options.worklist_dedup,
        governed: options.limits.armed() || options.poll_budget,
        inflight: AtomicU64::new(0),
        propagations: AtomicU64::new(0),
        flow_evals: AtomicU64::new(0),
        abort: AtomicBool::new(false),
        abort_cause: Mutex::new(None),
    };
    for (sp, fact) in problem.initial_seeds(icfg) {
        state.propagate(fact.clone(), sp, fact, problem.id_edge());
    }
    thread::scope(|scope| {
        for w in 0..threads {
            let state = &state;
            scope.spawn(move || {
                let _guard = AbortOnPanic(&state.abort);
                state.worker(problem, options, w * nshards / threads);
            });
        }
    });
    if let Some(e) = state.abort_cause.lock().expect("abort cause lock").take() {
        return Err(e);
    }
    let mut stats = IdeStats {
        propagations: state.propagations.load(Ordering::Acquire),
        flow_evals: state.flow_evals.load(Ordering::Acquire),
        ..IdeStats::default()
    };
    let mut jump = FastMap::default();
    let mut end_summary = FastMap::default();
    for shard in state.shards {
        let s = shard.into_inner().expect("phase-1 shard lock");
        stats.jump_fn_constructions += s.jump_fn_constructions;
        stats.killed_early += s.killed_early;
        // Statements shard by method, so shard key sets are disjoint.
        jump.extend(s.jump);
        end_summary.extend(s.end_summary);
    }
    Ok((jump, end_summary, stats))
}

/// The per-propagation governance probe: bounds first (cheap integer /
/// clock tests), then the value-domain budget poll.
fn governance_check<G, P>(
    options: &IdeSolverOptions,
    propagations: u64,
    problem: &P,
) -> Result<(), SolveAbort>
where
    G: Icfg,
    P: IdeProblem<G>,
{
    options.limits.check(propagations)?;
    if options.poll_budget {
        problem.budget_check().map_err(SolveAbort::Budget)?;
    }
    Ok(())
}

/// Phase 2: propagate concrete values to all procedure entries, then
/// evaluate every jump function once.
fn phase2<G, P>(
    problem: &P,
    icfg: &G,
    jump: &FastMap<(G::Stmt, P::Fact), FastMap<P::Fact, JumpEntry<P::EF>>>,
    mut stats: IdeStats,
    options: &IdeSolverOptions,
) -> Result<(FastMap<G::Stmt, FastMap<P::Fact, P::Value>>, IdeStats), SolveAbort>
where
    G: Icfg,
    P: IdeProblem<G>,
{
    let governed = options.limits.armed() || options.poll_budget;
    let mut values: FastMap<G::Stmt, FastMap<P::Fact, P::Value>> = FastMap::default();
    let mut worklist: VecDeque<(G::Method, P::Fact)> = VecDeque::new();
    let top = problem.top();

    let update = |values: &mut FastMap<G::Stmt, FastMap<P::Fact, P::Value>>,
                  stats: &mut IdeStats,
                  stmt: G::Stmt,
                  fact: P::Fact,
                  v: P::Value|
     -> bool {
        let slot = values
            .entry(stmt)
            .or_default()
            .entry(fact)
            .or_insert_with(|| top.clone());
        let joined = problem.join_values(slot, &v);
        if joined != *slot {
            *slot = joined;
            stats.value_updates += 1;
            true
        } else {
            false
        }
    };

    for (sp, fact) in problem.initial_seeds(icfg) {
        if update(
            &mut values,
            &mut stats,
            sp,
            fact.clone(),
            problem.seed_value(),
        ) {
            worklist.push_back((icfg.method_of(sp), fact));
        }
    }

    // Inter-procedural value propagation between procedure entries.
    while let Some((m, d1)) = worklist.pop_front() {
        if governed {
            governance_check(options, stats.propagations, problem)?;
        }
        let sp = icfg.start_point_of(m);
        let v = values
            .get(&sp)
            .and_then(|facts| facts.get(&d1))
            .cloned()
            .unwrap_or_else(|| top.clone());
        for call in icfg.calls_in(m) {
            let Some(fns) = jump.get(&(call, d1.clone())) else {
                continue;
            };
            for (d2, (f, _)) in fns {
                let vc = f.apply(&v);
                if vc == top {
                    continue;
                }
                for callee in icfg.callees_of(call) {
                    for (d3, g) in problem.flow_call(icfg, call, callee, d2) {
                        let nv = g.apply(&vc);
                        if nv == top {
                            continue;
                        }
                        let spq = icfg.start_point_of(callee);
                        if update(&mut values, &mut stats, spq, d3.clone(), nv) {
                            worklist.push_back((callee, d3));
                        }
                    }
                }
            }
        }
    }

    // Evaluate jump functions at every node from the entry values.
    let mut entry_values: Vec<(G::Stmt, P::Fact, P::Value)> = Vec::new();
    for (&sp, facts) in &values {
        if icfg.start_point_of(icfg.method_of(sp)) != sp {
            continue;
        }
        for (d1, v) in facts {
            entry_values.push((sp, d1.clone(), v.clone()));
        }
    }
    for (sp, d1, v) in entry_values {
        if governed {
            governance_check(options, stats.propagations, problem)?;
        }
        let m = icfg.method_of(sp);
        for n in icfg.stmts_of(m) {
            let Some(fns) = jump.get(&(n, d1.clone())) else {
                continue;
            };
            for (d2, (f, _)) in fns {
                let nv = f.apply(&v);
                if nv == top {
                    continue;
                }
                update(&mut values, &mut stats, n, d2.clone(), nv);
            }
        }
    }

    // Value application itself runs constraint operations; a budget can
    // therefore first trip here, after phase 1 fit. Catch it before the
    // garbage values escape.
    if governed {
        governance_check(options, stats.propagations, problem)?;
    }

    Ok((values, stats))
}
