//! The IDE framework: inter-procedural distributive environment problems
//! (Sagiv, Reps, Horwitz — TAPSOFT 1995).
//!
//! This crate is the SPLLIFT reproduction's stand-in for the IDE half of
//! Heros. IDE generalizes IFDS: besides reachability of (statement, fact)
//! nodes in the exploded supergraph, it computes a *value* from a second
//! lattice `V` along the edges, by composing *edge functions* in phase 1
//! (jump-function construction) and propagating concrete values in
//! phase 2.
//!
//! SPLLIFT instantiates `V` with Boolean feature constraints and edge
//! functions of the form `λc. c ∧ F` — see `spllift-core`.
//!
//! * [`EdgeFn`] — distributive value-transformers attached to exploded
//!   supergraph edges (compose / join / apply),
//! * [`IdeProblem`] — the four flow-function classes, each returning
//!   (fact, edge-function) pairs,
//! * [`IdeSolver`] — the two-phase solver with summary functions,
//! * [`embed_ifds`](binary::IfdsAsIde) — the binary-domain embedding that
//!   proves every IFDS problem is an IDE problem (paper §2.4).

#![warn(missing_docs)]
pub mod binary;
mod edge_fn;
mod problem;
mod solver;

pub use edge_fn::EdgeFn;
pub use problem::IdeProblem;
pub use solver::{IdeSolver, IdeSolverOptions, IdeStats, SolverMemo};
pub use spllift_ifds::{SolveAbort, SolveLimits};

#[cfg(test)]
mod tests;
