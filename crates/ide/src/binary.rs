//! The binary-domain embedding of IFDS into IDE (paper §2.4).
//!
//! Every IFDS problem is an IDE problem over the two-point lattice
//! `{⊤, ⊥}`, where `d ↦ ⊥` means "fact `d` holds" and `d ↦ ⊤` means it
//! does not. This module provides that embedding generically; it is used
//! in tests to validate that the IDE solver subsumes the IFDS solver, and
//! it is the "least expressive instance" the paper's lifting generalizes.

use crate::{EdgeFn, IdeProblem};
use spllift_ifds::{Icfg, IfdsProblem};

/// The binary value lattice: `Holds` (⊥) or `Top` (fact does not hold).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Binary {
    /// ⊤ — no information / fact does not hold.
    Top,
    /// ⊥ — the fact holds.
    Holds,
}

/// Edge functions of the binary domain: identity or "kill everything".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryEdge {
    /// The identity function.
    Id,
    /// `λv. ⊤` — the kill function.
    Kill,
}

impl EdgeFn<Binary> for BinaryEdge {
    fn apply(&self, v: &Binary) -> Binary {
        match self {
            BinaryEdge::Id => *v,
            BinaryEdge::Kill => Binary::Top,
        }
    }

    fn compose_with(&self, after: &Self) -> Self {
        match (self, after) {
            (BinaryEdge::Id, BinaryEdge::Id) => BinaryEdge::Id,
            _ => BinaryEdge::Kill,
        }
    }

    fn join(&self, other: &Self) -> Self {
        match (self, other) {
            (BinaryEdge::Kill, BinaryEdge::Kill) => BinaryEdge::Kill,
            _ => BinaryEdge::Id,
        }
    }

    fn is_kill(&self) -> bool {
        *self == BinaryEdge::Kill
    }
}

/// Wraps an [`IfdsProblem`] as an [`IdeProblem`] over the binary domain.
///
/// A fact holds at `n` in the IFDS solution iff the embedded IDE solution
/// computes `Binary::Holds` for it — asserted by this crate's tests.
#[derive(Debug)]
pub struct IfdsAsIde<'p, P> {
    problem: &'p P,
}

impl<'p, P> IfdsAsIde<'p, P> {
    /// Embeds `problem`.
    pub fn new(problem: &'p P) -> Self {
        IfdsAsIde { problem }
    }
}

impl<G, P> IdeProblem<G> for IfdsAsIde<'_, P>
where
    G: Icfg,
    P: IfdsProblem<G>,
{
    type Fact = P::Fact;
    type Value = Binary;
    type EF = BinaryEdge;

    fn zero(&self) -> P::Fact {
        self.problem.zero()
    }

    fn top(&self) -> Binary {
        Binary::Top
    }

    fn seed_value(&self) -> Binary {
        Binary::Holds
    }

    fn join_values(&self, a: &Binary, b: &Binary) -> Binary {
        if *a == Binary::Holds || *b == Binary::Holds {
            Binary::Holds
        } else {
            Binary::Top
        }
    }

    fn id_edge(&self) -> BinaryEdge {
        BinaryEdge::Id
    }

    fn flow_normal(
        &self,
        icfg: &G,
        curr: G::Stmt,
        succ: G::Stmt,
        fact: &P::Fact,
    ) -> Vec<(P::Fact, BinaryEdge)> {
        self.problem
            .flow_normal(icfg, curr, succ, fact)
            .into_iter()
            .map(|d| (d, BinaryEdge::Id))
            .collect()
    }

    fn flow_call(
        &self,
        icfg: &G,
        call: G::Stmt,
        callee: G::Method,
        fact: &P::Fact,
    ) -> Vec<(P::Fact, BinaryEdge)> {
        self.problem
            .flow_call(icfg, call, callee, fact)
            .into_iter()
            .map(|d| (d, BinaryEdge::Id))
            .collect()
    }

    fn flow_return(
        &self,
        icfg: &G,
        call: G::Stmt,
        callee: G::Method,
        exit: G::Stmt,
        return_site: G::Stmt,
        fact: &P::Fact,
    ) -> Vec<(P::Fact, BinaryEdge)> {
        self.problem
            .flow_return(icfg, call, callee, exit, return_site, fact)
            .into_iter()
            .map(|d| (d, BinaryEdge::Id))
            .collect()
    }

    fn flow_call_to_return(
        &self,
        icfg: &G,
        call: G::Stmt,
        return_site: G::Stmt,
        fact: &P::Fact,
    ) -> Vec<(P::Fact, BinaryEdge)> {
        self.problem
            .flow_call_to_return(icfg, call, return_site, fact)
            .into_iter()
            .map(|d| (d, BinaryEdge::Id))
            .collect()
    }

    fn initial_seeds(&self, icfg: &G) -> Vec<(G::Stmt, P::Fact)> {
        self.problem.initial_seeds(icfg)
    }
}
