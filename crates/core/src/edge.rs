//! Constraint-labeled edge functions.

use spllift_features::Constraint;
use spllift_ide::EdgeFn;

/// The SPLLIFT edge function `λc. c ∧ k` for a feature constraint `k`.
///
/// The whole function is represented by the single constraint `k`
/// (paper §3.1: "a label F effectively denotes the function
/// `λc. c ∧ F`"). Under this representation:
///
/// * composition is conjunction (`(λc. c∧k1) ∘ (λc. c∧k2) = λc. c∧k1∧k2`),
/// * join is disjunction,
/// * the identity function is `k = true`,
/// * the kill-all function is `k = false` — and [`EdgeFn::is_kill`] is the
///   constant-time `is_false` test on reduced BDDs that §4.2/§8 credit
///   for early termination.
///
/// These operations are distributive, which is what lets SPLLIFT
/// "piggyback" the constraints onto the user's IFDS abstraction inside the
/// IDE framework (§8).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConstraintEdge<C>(pub C);

impl<C: Constraint> EdgeFn<C> for ConstraintEdge<C> {
    fn apply(&self, v: &C) -> C {
        v.and(&self.0)
    }

    fn compose_with(&self, after: &Self) -> Self {
        ConstraintEdge(self.0.and(&after.0))
    }

    fn join(&self, other: &Self) -> Self {
        ConstraintEdge(self.0.or(&other.0))
    }

    fn is_kill(&self) -> bool {
        self.0.is_false()
    }
}
