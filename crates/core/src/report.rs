//! Rendering lifted results: constraint tables and the constraint-labeled
//! exploded supergraph (the paper's Figure 5).

use crate::{AnnotatedIcfg, LiftedIcfg, LiftedProblem, LiftedSolution};
use spllift_features::{Constraint, ConstraintContext};
use spllift_ide::IdeProblem;
use spllift_ifds::{Icfg, IfdsProblem};
use std::fmt::Write as _;

/// Renders every satisfiable (statement, fact, constraint) triple of a
/// solution as an aligned text table, grouped by method.
pub fn constraints_table<G, D, C>(
    solution: &LiftedSolution<'_, G, D, C>,
    icfg: &G,
    show_constraint: impl Fn(&C) -> String,
) -> String
where
    G: AnnotatedIcfg,
    D: Clone + Eq + std::hash::Hash + std::fmt::Debug + Ord,
    C: Constraint,
{
    let mut out = String::new();
    for m in icfg.methods() {
        let _ = writeln!(out, "{}:", icfg.method_label(m));
        for s in icfg.stmts_of(m) {
            let mut results: Vec<(D, C)> = solution.results_at(s).into_iter().collect();
            if results.is_empty() {
                continue;
            }
            results.sort_by(|a, b| a.0.cmp(&b.0));
            let _ = writeln!(out, "  {}", icfg.stmt_label(s));
            for (fact, c) in results {
                let _ = writeln!(out, "    {fact:?}  ⇐  {}", show_constraint(&c));
            }
        }
    }
    out
}

/// Emits the constraint-labeled exploded supergraph of a lifted problem in
/// Graphviz DOT format — the analogue of the paper's Figure 5. Edges carry
/// their feature-constraint labels; unconditional (`true`) edges are drawn
/// solid, conditional ones dashed with the constraint printed.
pub fn lifted_supergraph_dot<G, P, Ctx>(
    lifted: &LiftedProblem<'_, G, P, Ctx>,
    icfg: &LiftedIcfg<'_, G>,
    facts_at: impl Fn(G::Stmt) -> Vec<P::Fact>,
    show_constraint: impl Fn(&Ctx::C) -> String,
) -> String
where
    G: AnnotatedIcfg,
    P: IfdsProblem<G>,
    Ctx: ConstraintContext,
{
    let mut nodes: Vec<String> = Vec::new();
    let mut edges: Vec<String> = Vec::new();
    let mut node_id = std::collections::HashMap::new();
    let mut intern = |stmt_label: String, fact_label: String, nodes: &mut Vec<String>| {
        let key = (stmt_label.clone(), fact_label.clone());
        let next = node_id.len();
        *node_id.entry(key).or_insert_with(|| {
            nodes.push(format!(
                "  n{next} [label=\"{}\\n{}\"];",
                fact_label.replace('"', "'"),
                stmt_label.replace('"', "'")
            ));
            next
        })
    };
    let emit = |from: usize, to: usize, c: &Ctx::C, edges: &mut Vec<String>| {
        let style = if c.is_true() {
            String::new()
        } else {
            format!(
                " [style=dashed,label=\"{}\"]",
                show_constraint(c).replace('"', "'")
            )
        };
        edges.push(format!("  n{from} -> n{to}{style};"));
    };
    for m in icfg.methods() {
        for s in icfg.stmts_of(m) {
            for d in facts_at(s) {
                let from = intern(icfg.stmt_label(s), format!("{d:?}"), &mut nodes);
                if icfg.is_call(s) {
                    for q in icfg.callees_of(s) {
                        let sp = icfg.start_point_of(q);
                        for (d3, ef) in lifted.flow_call(icfg, s, q, &d) {
                            let to = intern(icfg.stmt_label(sp), format!("{d3:?}"), &mut nodes);
                            emit(from, to, &ef.0, &mut edges);
                        }
                    }
                    for r in icfg.return_sites_of(s) {
                        for (d3, ef) in lifted.flow_call_to_return(icfg, s, r, &d) {
                            let to = intern(icfg.stmt_label(r), format!("{d3:?}"), &mut nodes);
                            emit(from, to, &ef.0, &mut edges);
                        }
                    }
                } else {
                    for succ in icfg.successors_of(s) {
                        for (d3, ef) in lifted.flow_normal(icfg, s, succ, &d) {
                            let to = intern(icfg.stmt_label(succ), format!("{d3:?}"), &mut nodes);
                            emit(from, to, &ef.0, &mut edges);
                        }
                    }
                }
            }
        }
    }
    let mut out = String::from("digraph lifted {\n  rankdir=TB;\n  node [shape=box];\n");
    for n in nodes {
        out.push_str(&n);
        out.push('\n');
    }
    for e in edges {
        out.push_str(&e);
        out.push('\n');
    }
    out.push_str("}\n");
    out
}
