use crate::{LiftedSolution, ModelMode};
use spllift_analyses::{PossibleTypes, TaintAnalysis, TaintFact, TypeFact};
use spllift_features::{
    BddConstraintContext, Configuration, ConstraintContext, DnfConstraintContext, FeatureExpr,
};
use spllift_ir::samples::{fig1, shapes};
use spllift_ir::ProgramIcfg;

/// In fig1's `main`, local 0 is `x` and local 1 is `y` (the print arg).
fn tainted_arg_fact(_ex: &spllift_ir::samples::Fig1) -> TaintFact {
    TaintFact::Local(spllift_ir::LocalId(1))
}

/// In shapes' `main`, local 0 is the receiver `s`.
fn receiver_local(_ex: &spllift_ir::samples::Shapes) -> spllift_ir::LocalId {
    spllift_ir::LocalId(0)
}

#[test]
fn fig1_leak_constraint_is_not_f_and_g_and_not_h() {
    let ex = fig1();
    let icfg = ProgramIcfg::new(&ex.program);
    let ctx = BddConstraintContext::new(&ex.table);
    let analysis = TaintAnalysis::secret_to_print();
    let solution = LiftedSolution::solve(&analysis, &icfg, &ctx, None, ModelMode::Ignore);
    // Fact: the local y (argument of print) is tainted at the print call.
    let y = tainted_arg_fact(&ex);
    let got = solution.constraint_of(ex.print_call, &y);
    let mut table = ex.table.clone();
    let expected = ctx.of_expr(&FeatureExpr::parse("!F && G && !H", &mut table).unwrap());
    assert_eq!(got, expected, "got {}", got.to_cube_string());
}

#[test]
fn fig1_with_model_f_iff_g_reports_no_leak() {
    // §1: under the feature model F ≡ G the leak is infeasible.
    let ex = fig1();
    let icfg = ProgramIcfg::new(&ex.program);
    let ctx = BddConstraintContext::new(&ex.table);
    let analysis = TaintAnalysis::secret_to_print();
    let mut table = ex.table.clone();
    let root = ex.features[0]; // reuse F as pseudo-root? build real model:
    let _ = root;
    let model = FeatureExpr::parse("(F && G) || (!F && !G)", &mut table).unwrap();
    let solution = LiftedSolution::solve(&analysis, &icfg, &ctx, Some(&model), ModelMode::OnEdges);
    let y = tainted_arg_fact(&ex);
    assert!(solution.constraint_of(ex.print_call, &y).is_false());
}

#[test]
fn model_on_edges_terminates_early() {
    let ex = fig1();
    let icfg = ProgramIcfg::new(&ex.program);
    let ctx = BddConstraintContext::new(&ex.table);
    let analysis = TaintAnalysis::secret_to_print();
    let mut table = ex.table.clone();
    let model = FeatureExpr::parse("(F && G) || (!F && !G)", &mut table).unwrap();
    let on_edges = LiftedSolution::solve(&analysis, &icfg, &ctx, Some(&model), ModelMode::OnEdges);
    assert!(
        on_edges.stats().killed_early > 0,
        "contradictory paths must be pruned during construction"
    );
}

#[test]
fn model_modes_agree_on_final_constraints() {
    let ex = fig1();
    let icfg = ProgramIcfg::new(&ex.program);
    let ctx = BddConstraintContext::new(&ex.table);
    let analysis = TaintAnalysis::secret_to_print();
    let mut table = ex.table.clone();
    let model = FeatureExpr::parse("(F && G) || (!F && !G)", &mut table).unwrap();
    let a = LiftedSolution::solve(&analysis, &icfg, &ctx, Some(&model), ModelMode::OnEdges);
    let b = LiftedSolution::solve(
        &analysis,
        &icfg,
        &ctx,
        Some(&model),
        ModelMode::AtStartValue,
    );
    for m in spllift_ifds::Icfg::methods(&icfg) {
        for s in spllift_ifds::Icfg::stmts_of(&icfg, m) {
            let ra = a.results_at(s);
            let rb = b.results_at(s);
            assert_eq!(ra, rb, "at {s}");
        }
    }
}

#[test]
fn reachability_constraints_of_fig1() {
    let ex = fig1();
    let icfg = ProgramIcfg::new(&ex.program);
    let ctx = BddConstraintContext::new(&ex.table);
    let analysis = TaintAnalysis::secret_to_print();
    let solution = LiftedSolution::solve(&analysis, &icfg, &ctx, None, ModelMode::Ignore);
    // main is reachable unconditionally.
    let main_entry = spllift_ifds::Icfg::start_point_of(&icfg, ex.main);
    assert!(solution.reachability_of(main_entry).is_true());
    // foo is reachable exactly under G (the annotated call).
    let foo_entry = spllift_ifds::Icfg::start_point_of(&icfg, ex.foo);
    let mut table = ex.table.clone();
    let g = ctx.of_expr(&FeatureExpr::parse("G", &mut table).unwrap());
    assert_eq!(solution.reachability_of(foo_entry), g);
}

#[test]
fn lifted_possible_types_keeps_both_alternatives() {
    // The shapes sample: s = new Circle (F); s = new Square (!F).
    // The plain analysis loses Circle; the lifted one keeps it under F.
    let ex = shapes();
    let icfg = ProgramIcfg::new(&ex.program);
    let ctx = BddConstraintContext::new(&ex.table);
    let analysis = PossibleTypes::new();
    let solution = LiftedSolution::solve(&analysis, &icfg, &ctx, None, ModelMode::Ignore);
    let [_, circle, square] = ex.classes;
    let s_local = receiver_local(&ex);
    let mut table = ex.table.clone();
    let f = ctx.of_expr(&FeatureExpr::parse("F", &mut table).unwrap());
    let not_f = ctx.of_expr(&FeatureExpr::parse("!F", &mut table).unwrap());
    assert_eq!(
        solution.constraint_of(ex.call_site, &TypeFact::Local(s_local, circle)),
        f
    );
    assert_eq!(
        solution.constraint_of(ex.call_site, &TypeFact::Local(s_local, square)),
        not_f
    );
}

#[test]
fn lifted_matches_plain_on_annotation_free_program() {
    // On a product (no annotations) the lifted analysis degenerates to
    // the plain one: every reported constraint is `true`, and the fact
    // sets coincide.
    let ex = fig1();
    let [_, g, _] = ex.features;
    let product = ex.program.derive_product(&Configuration::from_enabled([g]));
    let icfg = ProgramIcfg::new(&product);
    let ctx = BddConstraintContext::new(&ex.table);
    let analysis = TaintAnalysis::secret_to_print();
    let solution = LiftedSolution::solve(&analysis, &icfg, &ctx, None, ModelMode::Ignore);
    let plain = spllift_ifds::IfdsSolver::solve(&analysis, &icfg);
    for m in spllift_ifds::Icfg::methods(&icfg) {
        for s in spllift_ifds::Icfg::stmts_of(&icfg, m) {
            let lifted_facts: spllift_hash::FastSet<_> = solution
                .results_at(s)
                .into_iter()
                .map(|(d, c)| {
                    assert!(c.is_true(), "constraint at {s} must be true");
                    d
                })
                .collect();
            assert_eq!(lifted_facts, plain.results_at(s), "at {s}");
        }
    }
}

#[test]
fn dnf_and_bdd_lifting_agree_semantically() {
    let ex = fig1();
    let icfg = ProgramIcfg::new(&ex.program);
    let bctx = BddConstraintContext::new(&ex.table);
    let dctx = DnfConstraintContext::new(&ex.table);
    let analysis = TaintAnalysis::secret_to_print();
    let bsol = LiftedSolution::solve(&analysis, &icfg, &bctx, None, ModelMode::Ignore);
    let dsol = LiftedSolution::solve(&analysis, &icfg, &dctx, None, ModelMode::Ignore);
    let y = tainted_arg_fact(&ex);
    let bc = bsol.constraint_of(ex.print_call, &y);
    let dc = dsol.constraint_of(ex.print_call, &y);
    // Compare semantically over all 8 configurations.
    for bits in 0u64..8 {
        let cfg = Configuration::from_bits(bits, 3);
        assert_eq!(
            bctx.satisfied_by(&bc, &cfg),
            dctx.satisfied_by(&dc, &cfg),
            "config bits {bits:b}"
        );
    }
}

#[test]
fn holds_in_agrees_with_constraint_evaluation() {
    let ex = fig1();
    let [f, g, h] = ex.features;
    let icfg = ProgramIcfg::new(&ex.program);
    let ctx = BddConstraintContext::new(&ex.table);
    let analysis = TaintAnalysis::secret_to_print();
    let solution = LiftedSolution::solve(&analysis, &icfg, &ctx, None, ModelMode::Ignore);
    let y = tainted_arg_fact(&ex);
    assert!(solution.holds_in(&ctx, ex.print_call, &y, &Configuration::from_enabled([g])));
    assert!(!solution.holds_in(
        &ctx,
        ex.print_call,
        &y,
        &Configuration::from_enabled([f, g])
    ));
    assert!(!solution.holds_in(
        &ctx,
        ex.print_call,
        &y,
        &Configuration::from_enabled([g, h])
    ));
}

#[test]
fn constraints_table_and_dot_render() {
    let ex = fig1();
    let icfg = ProgramIcfg::new(&ex.program);
    let ctx = BddConstraintContext::new(&ex.table);
    let analysis = TaintAnalysis::secret_to_print();
    let solution = LiftedSolution::solve(&analysis, &icfg, &ctx, None, ModelMode::Ignore);
    let table = crate::report::constraints_table(&solution, &icfg, |c| c.to_cube_string());
    assert!(table.contains("main"));
    assert!(table.contains("⇐"));

    let lifted_icfg = crate::LiftedIcfg::new(&icfg);
    let lifted = crate::LiftedProblem::new(&analysis, &icfg, &ctx, None, ModelMode::Ignore);
    let dot = crate::report::lifted_supergraph_dot(
        &lifted,
        &lifted_icfg,
        |s| solution.results_at(s).into_keys().collect(),
        |c| c.to_cube_string(),
    );
    assert!(dot.contains("digraph lifted"));
    assert!(dot.contains("style=dashed"), "conditional edges present");
}

#[test]
fn disabled_return_falls_through() {
    // foo's `p = 0` under H is followed by `return p`; make a variant
    // where the *return* is annotated and verify fall-through to the
    // backstop return.
    use spllift_ir::{Operand, ProgramBuilder, Rvalue, Type};
    let mut table = spllift_features::FeatureTable::new();
    let r = table.intern("R");
    let mut pb = ProgramBuilder::new();
    let secret = pb.declare_method("secret", None, &[], Some(Type::Int), true);
    let print = pb.declare_method("print", None, &[Type::Int], None, true);
    let callee = pb.declare_method("callee", None, &[], Some(Type::Int), true);
    let main = pb.declare_method("main", None, &[], None, true);
    for m in [secret, print] {
        let mb = pb.method_body(m);
        pb.finish_body(mb);
    }
    {
        // callee: t = secret(); #ifdef R return t; #endif ; return 0
        let mut mb = pb.method_body(callee);
        let t = mb.local("t", Type::Int);
        let z = mb.local("z", Type::Int);
        mb.invoke(Some(t), spllift_ir::Callee::Static(secret), vec![]);
        mb.push_annotation(FeatureExpr::var(r));
        mb.ret(Some(Operand::Local(t)));
        mb.pop_annotation();
        mb.assign(z, Rvalue::Use(Operand::IntConst(0)));
        mb.ret(Some(Operand::Local(z)));
        pb.finish_body(mb);
    }
    let print_call;
    {
        let mut mb = pb.method_body(main);
        let y = mb.local("y", Type::Int);
        mb.invoke(Some(y), spllift_ir::Callee::Static(callee), vec![]);
        let idx = mb.invoke(
            None,
            spllift_ir::Callee::Static(print),
            vec![Operand::Local(y)],
        );
        print_call = spllift_ir::StmtRef {
            method: main,
            index: idx,
        };
        mb.ret(None);
        pb.finish_body(mb);
    }
    pb.add_entry_point(main);
    let p = pb.finish();
    assert!(p.check().is_ok());
    let icfg = ProgramIcfg::new(&p);
    let ctx = BddConstraintContext::new(&table);
    let analysis = TaintAnalysis::secret_to_print();
    let solution = LiftedSolution::solve(&analysis, &icfg, &ctx, None, ModelMode::Ignore);
    // y is tainted exactly when R is enabled (the annotated return runs).
    let y_fact = TaintFact::Local(spllift_ir::LocalId(0));
    let got = solution.constraint_of(print_call, &y_fact);
    let expected = ctx.lit(r, true);
    assert_eq!(got, expected, "got {}", got.to_cube_string());
}

mod lifted_icfg {
    use super::*;
    use crate::{AnnotatedIcfg, LiftedIcfg};
    use spllift_ifds::Icfg as _;
    use spllift_ir::{BinOp, Operand, ProgramBuilder, Rvalue, Type};

    /// main: x=1; [#ifdef A] goto END; x=2; END: return — the annotated
    /// goto must gain a fall-through successor in the lifted view.
    #[test]
    fn annotated_goto_gains_fall_through_edge() {
        let mut t = spllift_features::FeatureTable::new();
        let a = t.intern("A");
        let mut pb = ProgramBuilder::new();
        let main = pb.declare_method("main", None, &[], None, true);
        let mut mb = pb.method_body(main);
        let x = mb.local("x", Type::Int);
        mb.assign(x, Rvalue::Use(Operand::IntConst(1)));
        let end = mb.fresh_label();
        mb.push_annotation(FeatureExpr::var(a));
        let goto_idx = mb.goto(end);
        mb.pop_annotation();
        mb.assign(x, Rvalue::Use(Operand::IntConst(2)));
        mb.bind(end);
        mb.ret(None);
        pb.finish_body(mb);
        pb.add_entry_point(main);
        let p = pb.finish();
        let icfg = ProgramIcfg::new(&p);
        let lifted = LiftedIcfg::new(&icfg);
        let goto_stmt = spllift_ir::StmtRef {
            method: main,
            index: goto_idx,
        };
        // Plain view: one successor (the target).
        assert_eq!(icfg.successors_of(goto_stmt).len(), 1);
        // Lifted view: target + fall-through.
        assert_eq!(lifted.successors_of(goto_stmt).len(), 2);
        assert!(lifted.is_unconditional_branch(goto_stmt));
        let _ = BinOp::Eq;
    }

    /// An UNannotated goto must not gain the extra edge.
    #[test]
    fn plain_goto_unchanged() {
        let mut pb = ProgramBuilder::new();
        let main = pb.declare_method("main", None, &[], None, true);
        let mut mb = pb.method_body(main);
        let end = mb.fresh_label();
        let goto_idx = mb.goto(end);
        mb.nop();
        mb.bind(end);
        mb.ret(None);
        pb.finish_body(mb);
        pb.add_entry_point(main);
        let p = pb.finish();
        let icfg = ProgramIcfg::new(&p);
        let lifted = LiftedIcfg::new(&icfg);
        let goto_stmt = spllift_ir::StmtRef {
            method: main,
            index: goto_idx,
        };
        assert_eq!(
            lifted.successors_of(goto_stmt),
            icfg.successors_of(goto_stmt)
        );
    }

    /// The lifted analysis respects the goto rules end to end: x keeps
    /// value facts from both paths with complementary constraints.
    #[test]
    fn goto_rules_split_constraints() {
        let mut t = spllift_features::FeatureTable::new();
        let a = t.intern("A");
        let mut pb = ProgramBuilder::new();
        let secret = pb.declare_method("secret", None, &[], Some(Type::Int), true);
        let print = pb.declare_method("print", None, &[Type::Int], None, true);
        for m in [secret, print] {
            let mb = pb.method_body(m);
            pb.finish_body(mb);
        }
        let main = pb.declare_method("main", None, &[], None, true);
        let mut mb = pb.method_body(main);
        let x = mb.local("x", Type::Int);
        mb.invoke(Some(x), spllift_ir::Callee::Static(secret), vec![]);
        let end = mb.fresh_label();
        // #ifdef A: skip the scrub.
        mb.push_annotation(FeatureExpr::var(a));
        mb.goto(end);
        mb.pop_annotation();
        mb.assign(x, Rvalue::Use(Operand::IntConst(0))); // scrub
        mb.bind(end);
        let sink = mb.invoke(
            None,
            spllift_ir::Callee::Static(print),
            vec![Operand::Local(x)],
        );
        mb.ret(None);
        pb.finish_body(mb);
        pb.add_entry_point(main);
        let p = pb.finish();
        let icfg = ProgramIcfg::new(&p);
        let ctx = BddConstraintContext::new(&t);
        let analysis = spllift_analyses::TaintAnalysis::secret_to_print();
        let solution = LiftedSolution::solve(&analysis, &icfg, &ctx, None, ModelMode::Ignore);
        // x stays tainted at the sink exactly when A skips the scrub.
        let c = solution.constraint_of(
            spllift_ir::StmtRef {
                method: main,
                index: sink,
            },
            &spllift_analyses::TaintFact::Local(x),
        );
        assert_eq!(c, ctx.lit(a, true), "got {}", c.to_cube_string());
    }
}

mod branch_rules {
    use super::*;
    use spllift_ir::{BinOp, Operand, ProgramBuilder, Rvalue, Type};

    /// Fig. 4c: an annotated conditional branch may (under A) jump over
    /// the scrub straight to the sink — taint survives exactly under A.
    #[test]
    fn annotated_if_skips_scrub_under_its_feature() {
        let mut t = spllift_features::FeatureTable::new();
        let a = t.intern("A");
        let mut pb = ProgramBuilder::new();
        let secret = pb.declare_method("secret", None, &[], Some(Type::Int), true);
        let print = pb.declare_method("print", None, &[Type::Int], None, true);
        for m in [secret, print] {
            let mb = pb.method_body(m);
            pb.finish_body(mb);
        }
        let main = pb.declare_method("main", None, &[], None, true);
        let mut mb = pb.method_body(main);
        let x = mb.local("x", Type::Int);
        mb.invoke(Some(x), spllift_ir::Callee::Static(secret), vec![]);
        let end = mb.fresh_label();
        mb.push_annotation(FeatureExpr::var(a));
        mb.if_cmp(BinOp::Ge, Operand::Local(x), Operand::IntConst(0), end);
        mb.pop_annotation();
        mb.assign(x, Rvalue::Use(Operand::IntConst(0))); // scrub
        mb.bind(end);
        let sink = mb.invoke(
            None,
            spllift_ir::Callee::Static(print),
            vec![Operand::Local(x)],
        );
        mb.ret(None);
        pb.finish_body(mb);
        pb.add_entry_point(main);
        let p = pb.finish();
        let icfg = ProgramIcfg::new(&p);
        let ctx = BddConstraintContext::new(&t);
        let analysis = spllift_analyses::TaintAnalysis::secret_to_print();
        let solution = LiftedSolution::solve(&analysis, &icfg, &ctx, None, ModelMode::Ignore);
        let c = solution.constraint_of(
            spllift_ir::StmtRef {
                method: main,
                index: sink,
            },
            &spllift_analyses::TaintFact::Local(x),
        );
        assert_eq!(c, ctx.lit(a, true), "got {}", c.to_cube_string());
    }

    /// Degenerate branch: the target IS the fall-through. The lifted
    /// flow must not lose or duplicate facts (constraint stays true).
    #[test]
    fn branch_to_next_statement_is_harmless() {
        let mut t = spllift_features::FeatureTable::new();
        let a = t.intern("A");
        let mut pb = ProgramBuilder::new();
        let secret = pb.declare_method("secret", None, &[], Some(Type::Int), true);
        let print = pb.declare_method("print", None, &[Type::Int], None, true);
        for m in [secret, print] {
            let mb = pb.method_body(m);
            pb.finish_body(mb);
        }
        let main = pb.declare_method("main", None, &[], None, true);
        let mut mb = pb.method_body(main);
        let x = mb.local("x", Type::Int);
        mb.invoke(Some(x), spllift_ir::Callee::Static(secret), vec![]);
        let next = mb.fresh_label();
        mb.push_annotation(FeatureExpr::var(a));
        mb.if_cmp(BinOp::Eq, Operand::Local(x), Operand::IntConst(0), next);
        mb.pop_annotation();
        mb.bind(next);
        let sink = mb.invoke(
            None,
            spllift_ir::Callee::Static(print),
            vec![Operand::Local(x)],
        );
        mb.ret(None);
        pb.finish_body(mb);
        pb.add_entry_point(main);
        let p = pb.finish();
        let icfg = ProgramIcfg::new(&p);
        let ctx = BddConstraintContext::new(&t);
        let analysis = spllift_analyses::TaintAnalysis::secret_to_print();
        let solution = LiftedSolution::solve(&analysis, &icfg, &ctx, None, ModelMode::Ignore);
        let c = solution.constraint_of(
            spllift_ir::StmtRef {
                method: main,
                index: sink,
            },
            &spllift_analyses::TaintFact::Local(x),
        );
        assert!(c.is_true(), "got {}", c.to_cube_string());
    }

    /// Fig. 4d: a fully-annotated call — the callee is only entered under
    /// the feature; reachability of the callee reflects it and the
    /// result only returns under it.
    #[test]
    fn annotated_call_gates_both_entry_and_return() {
        let mut t = spllift_features::FeatureTable::new();
        let a = t.intern("A");
        let mut pb = ProgramBuilder::new();
        let secret = pb.declare_method("secret", None, &[], Some(Type::Int), true);
        let id = pb.declare_method("id", None, &[Type::Int], Some(Type::Int), true);
        let print = pb.declare_method("print", None, &[Type::Int], None, true);
        {
            let mb = pb.method_body(secret);
            pb.finish_body(mb);
        }
        {
            let mut mb = pb.method_body(id);
            let p0 = mb.param_local(0);
            mb.ret(Some(Operand::Local(p0)));
            pb.finish_body(mb);
        }
        {
            let mb = pb.method_body(print);
            pb.finish_body(mb);
        }
        let main = pb.declare_method("main", None, &[], None, true);
        let mut mb = pb.method_body(main);
        let x = mb.local("x", Type::Int);
        let y = mb.local("y", Type::Int);
        mb.invoke(Some(x), spllift_ir::Callee::Static(secret), vec![]);
        mb.push_annotation(FeatureExpr::var(a));
        mb.invoke(
            Some(y),
            spllift_ir::Callee::Static(id),
            vec![Operand::Local(x)],
        );
        mb.pop_annotation();
        let sink = mb.invoke(
            None,
            spllift_ir::Callee::Static(print),
            vec![Operand::Local(y)],
        );
        mb.ret(None);
        pb.finish_body(mb);
        pb.add_entry_point(main);
        let p = pb.finish();
        let icfg = ProgramIcfg::new(&p);
        let ctx = BddConstraintContext::new(&t);
        let analysis = spllift_analyses::TaintAnalysis::secret_to_print();
        let solution = LiftedSolution::solve(&analysis, &icfg, &ctx, None, ModelMode::Ignore);
        // id() is reachable only under A (paper §3.3's reachability).
        let id_entry = p.entry_of(id);
        assert_eq!(solution.reachability_of(id_entry), ctx.lit(a, true));
        // y = id(x) is tainted only under A.
        let c = solution.constraint_of(
            spllift_ir::StmtRef {
                method: main,
                index: sink,
            },
            &spllift_analyses::TaintFact::Local(y),
        );
        assert_eq!(c, ctx.lit(a, true), "got {}", c.to_cube_string());
    }
}

mod edge_laws {
    use super::*;
    use crate::ConstraintEdge;
    use spllift_ide::EdgeFn as _;

    #[test]
    fn constraint_edge_algebra() {
        let mut t = spllift_features::FeatureTable::new();
        let a = t.intern("A");
        let b = t.intern("B");
        let ctx = BddConstraintContext::new(&t);
        let ea = ConstraintEdge(ctx.lit(a, true));
        let eb = ConstraintEdge(ctx.lit(b, true));
        // compose = ∧ (commutative here), join = ∨.
        assert_eq!(
            ea.compose_with(&eb).0,
            ctx.lit(a, true).and(&ctx.lit(b, true))
        );
        assert_eq!(ea.join(&eb).0, ctx.lit(a, true).or(&ctx.lit(b, true)));
        // Identity and kill.
        let id = ConstraintEdge(ctx.tt());
        assert_eq!(ea.compose_with(&id), ea);
        assert_eq!(id.compose_with(&ea), ea);
        let kill = ConstraintEdge(ctx.ff());
        assert!(kill.is_kill());
        assert!(!ea.is_kill());
        assert_eq!(ea.compose_with(&kill).0, ctx.ff());
        // A ∘ ¬A = kill (the contradiction the solver prunes on, §4.2).
        let ena = ConstraintEdge(ctx.lit(a, false));
        assert!(ea.compose_with(&ena).is_kill());
        // apply conjoins onto the value.
        let v = ctx.lit(b, true);
        assert_eq!(ea.apply(&v), ctx.lit(b, true).and(&ctx.lit(a, true)));
    }

    #[test]
    fn distributivity_of_edge_functions() {
        // (f ⊔ g) ∘ h = (f∘h) ⊔ (g∘h) — the distributivity §8 credits for
        // the efficient IDE encoding.
        let mut t = spllift_features::FeatureTable::new();
        let a = t.intern("A");
        let b = t.intern("B");
        let c = t.intern("C");
        let ctx = BddConstraintContext::new(&t);
        let f = ConstraintEdge(ctx.lit(a, true));
        let g = ConstraintEdge(ctx.lit(b, true));
        let h = ConstraintEdge(ctx.lit(c, false));
        assert_eq!(
            f.join(&g).compose_with(&h),
            f.compose_with(&h).join(&g.compose_with(&h))
        );
    }
}
