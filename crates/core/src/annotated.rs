//! Feature-annotated ICFGs and the lifted CFG view.

use spllift_features::FeatureExpr;
use spllift_ifds::Icfg;
use spllift_ir::{ProgramIcfg, StmtKind};

/// An ICFG whose statements carry feature annotations — the interface the
/// lifting (and the A2 baseline) needs beyond plain [`Icfg`].
pub trait AnnotatedIcfg: Icfg {
    /// The feature annotation of `s` (`FeatureExpr::True` if unannotated).
    fn annotation(&self, s: Self::Stmt) -> FeatureExpr;

    /// The fall-through successor of `s` (`index + 1`): where control goes
    /// when `s` is *disabled* (paper Fig. 4).
    fn fall_through_of(&self, s: Self::Stmt) -> Option<Self::Stmt>;

    /// The branch target of `s`, if `s` is a conditional or unconditional
    /// branch.
    fn branch_target_of(&self, s: Self::Stmt) -> Option<Self::Stmt>;

    /// `true` iff `s` is an unconditional branch (`goto`/`throw`,
    /// paper Fig. 4b).
    fn is_unconditional_branch(&self, s: Self::Stmt) -> bool;

    /// `true` iff `s` is a conditional branch (`if … goto`, Fig. 4c).
    fn is_conditional_branch(&self, s: Self::Stmt) -> bool;
}

impl AnnotatedIcfg for ProgramIcfg<'_> {
    fn annotation(&self, s: Self::Stmt) -> FeatureExpr {
        ProgramIcfg::annotation_of(self, s).clone()
    }

    fn fall_through_of(&self, s: Self::Stmt) -> Option<Self::Stmt> {
        ProgramIcfg::fall_through_of(self, s)
    }

    fn branch_target_of(&self, s: Self::Stmt) -> Option<Self::Stmt> {
        ProgramIcfg::branch_target_of(self, s)
    }

    fn is_unconditional_branch(&self, s: Self::Stmt) -> bool {
        matches!(self.program().stmt(s).kind, StmtKind::Goto { .. })
    }

    fn is_conditional_branch(&self, s: Self::Stmt) -> bool {
        matches!(self.program().stmt(s).kind, StmtKind::If { .. })
    }
}

/// The *lifted* CFG view of an annotated ICFG: identical to the inner
/// graph except that annotated `goto`s and `return`s gain their
/// fall-through successor — the edge control takes when the statement is
/// disabled (paper Fig. 4b and our handling of disabled exits).
///
/// Both SPLLIFT and the feature-aware A2 baseline run on this view;
/// plain product analyses (A1) run on the inner graph of the derived
/// product, where no statement is annotated and the views coincide.
#[derive(Debug)]
pub struct LiftedIcfg<'g, G> {
    inner: &'g G,
}

impl<'g, G: AnnotatedIcfg> LiftedIcfg<'g, G> {
    /// Wraps `inner`.
    pub fn new(inner: &'g G) -> Self {
        LiftedIcfg { inner }
    }

    /// The wrapped graph.
    pub fn inner(&self) -> &'g G {
        self.inner
    }

    fn needs_disabled_edge(&self, s: G::Stmt) -> bool {
        self.inner.annotation(s) != FeatureExpr::True
            && (self.inner.is_unconditional_branch(s) || self.inner.is_exit(s))
    }
}

impl<G: AnnotatedIcfg> Icfg for LiftedIcfg<'_, G> {
    type Stmt = G::Stmt;
    type Method = G::Method;

    fn entry_points(&self) -> Vec<G::Method> {
        self.inner.entry_points()
    }

    fn start_point_of(&self, m: G::Method) -> G::Stmt {
        self.inner.start_point_of(m)
    }

    fn method_of(&self, s: G::Stmt) -> G::Method {
        self.inner.method_of(s)
    }

    fn successors_of(&self, s: G::Stmt) -> Vec<G::Stmt> {
        let mut succs = self.inner.successors_of(s);
        if self.needs_disabled_edge(s) {
            if let Some(ft) = self.inner.fall_through_of(s) {
                if !succs.contains(&ft) {
                    succs.push(ft);
                }
            }
        }
        succs
    }

    fn is_call(&self, s: G::Stmt) -> bool {
        self.inner.is_call(s)
    }

    fn callees_of(&self, s: G::Stmt) -> Vec<G::Method> {
        self.inner.callees_of(s)
    }

    fn return_sites_of(&self, s: G::Stmt) -> Vec<G::Stmt> {
        self.inner.return_sites_of(s)
    }

    fn is_exit(&self, s: G::Stmt) -> bool {
        self.inner.is_exit(s)
    }

    fn stmts_of(&self, m: G::Method) -> Vec<G::Stmt> {
        self.inner.stmts_of(m)
    }

    fn methods(&self) -> Vec<G::Method> {
        self.inner.methods()
    }

    fn stmt_label(&self, s: G::Stmt) -> String {
        self.inner.stmt_label(s)
    }

    fn method_label(&self, m: G::Method) -> String {
        self.inner.method_label(m)
    }
}

impl<G: AnnotatedIcfg> AnnotatedIcfg for LiftedIcfg<'_, G> {
    fn annotation(&self, s: G::Stmt) -> FeatureExpr {
        self.inner.annotation(s)
    }

    fn fall_through_of(&self, s: G::Stmt) -> Option<G::Stmt> {
        self.inner.fall_through_of(s)
    }

    fn branch_target_of(&self, s: G::Stmt) -> Option<G::Stmt> {
        self.inner.branch_target_of(s)
    }

    fn is_unconditional_branch(&self, s: G::Stmt) -> bool {
        self.inner.is_unconditional_branch(s)
    }

    fn is_conditional_branch(&self, s: G::Stmt) -> bool {
        self.inner.is_conditional_branch(s)
    }
}
