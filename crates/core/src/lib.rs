//! SPLLIFT — the paper's core contribution: transparently lifting any
//! IFDS-based analysis to a feature-sensitive IDE analysis over an entire
//! software product line.
//!
//! Given an unchanged [`spllift_ifds::IfdsProblem`] and an ICFG whose
//! statements carry feature annotations, [`LiftedProblem`] produces an
//! [`spllift_ide::IdeProblem`] whose value domain is Boolean feature
//! constraints: where the original analysis reports "fact `d` may hold at
//! `s`", the lifted analysis reports the exact feature constraint under
//! which it may hold (paper §3).
//!
//! The lifting follows Figure 4 of the paper:
//!
//! * a *normal* statement annotated `F` has its original flow labeled `F`
//!   disjoined with an identity flow labeled `¬F`,
//! * an *unconditional branch* flows to its target under `F` and falls
//!   through (identity) under `¬F`,
//! * a *conditional branch* flows normally under `F` and falls through
//!   under `¬F`,
//! * a *call* flows into (and back out of) the callee under `F` only —
//!   the disabled case is the kill-all function — while the
//!   call-to-return flow gets the usual `F` / `¬F` disjunction,
//! * constraints conjoin along paths and disjoin at merges, and
//! * the feature model `m` is conjoined onto every edge (§4.2), which lets
//!   the solver terminate contradictory paths *during graph construction*.
//!
//! # Example
//!
//! See `examples/quickstart.rs` at the workspace root: the Figure 1 taint
//! analysis reports the leak exactly under `¬F ∧ G ∧ ¬H`.

#![warn(missing_docs)]
mod annotated;
mod edge;
mod lift;
pub mod report;

pub use annotated::{AnnotatedIcfg, LiftedIcfg};
pub use edge::ConstraintEdge;
pub use lift::{GovernorOptions, LiftedProblem, LiftedSolution, ModelMode, Rung, SolveOutcome};
pub use spllift_ide::{SolveAbort, SolverMemo};

#[cfg(test)]
mod tests;
