//! SPLLIFT — the paper's core contribution: transparently lifting any
//! IFDS-based analysis to a feature-sensitive IDE analysis over an entire
//! software product line.
//!
//! Given an unchanged [`spllift_ifds::IfdsProblem`] and an ICFG whose
//! statements carry feature annotations, [`LiftedProblem`] produces an
//! [`spllift_ide::IdeProblem`] whose value domain is Boolean feature
//! constraints: where the original analysis reports "fact `d` may hold at
//! `s`", the lifted analysis reports the exact feature constraint under
//! which it may hold (paper §3).
//!
//! The lifting follows Figure 4 of the paper:
//!
//! * a *normal* statement annotated `F` has its original flow labeled `F`
//!   disjoined with an identity flow labeled `¬F`,
//! * an *unconditional branch* flows to its target under `F` and falls
//!   through (identity) under `¬F`,
//! * a *conditional branch* flows normally under `F` and falls through
//!   under `¬F`,
//! * a *call* flows into (and back out of) the callee under `F` only —
//!   the disabled case is the kill-all function — while the
//!   call-to-return flow gets the usual `F` / `¬F` disjunction,
//! * constraints conjoin along paths and disjoin at merges, and
//! * the feature model `m` is conjoined onto every edge (§4.2), which lets
//!   the solver terminate contradictory paths *during graph construction*.
//!
//! # Example
//!
//! See `examples/quickstart.rs` at the workspace root: the Figure 1 taint
//! analysis reports the leak exactly under `¬F ∧ G ∧ ¬H`.
//!
//! # Thread and sharing boundary
//!
//! A [`LiftedSolution`] holds live BDD handles and is therefore bound
//! to the constraint context (and thread) that produced it — like
//! everything BDD-backed, it must not cross threads (see
//! `spllift_bdd::manager`). Long-lived consumers that share or cache
//! results across threads (the analysis server's cross-session
//! solution cache, DESIGN.md §9) first *render* the solution into
//! manager-free form — constraint strings plus plain
//! [`spllift_features::FeatureExpr`] trees — and share that. The same
//! boundary governs [`SolverMemo`]: it embeds jump functions over live
//! constraints, so incremental-solve state is per-session and
//! thread-confined, never global.

#![warn(missing_docs)]
mod annotated;
mod edge;
mod lift;
pub mod report;

pub use annotated::{AnnotatedIcfg, LiftedIcfg};
pub use edge::ConstraintEdge;
pub use lift::{
    AbstractionImpact, GovernorOptions, LatticeHints, LiftedProblem, LiftedSolution, ModelMode,
    SolveOutcome,
};
pub use spllift_features::{AbstractionStep, LatticePoint};
pub use spllift_ide::{SolveAbort, SolverMemo};

#[cfg(test)]
mod tests;
