//! The automatic IFDS → IDE lifting (paper §3–§4).

use crate::{AnnotatedIcfg, ConstraintEdge, LiftedIcfg};
use spllift_features::{Configuration, Constraint, ConstraintContext, FeatureExpr};
use spllift_hash::FastMap;
use spllift_ide::{IdeProblem, IdeSolver, IdeSolverOptions, IdeStats, SolveAbort, SolverMemo};
use spllift_ifds::{IfdsProblem, SolveLimits};
use std::fmt;
use std::time::{Duration, Instant};

/// How the product line's feature model is taken into account.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ModelMode {
    /// Conjoin the model constraint `m` onto every edge (paper §4.2's
    /// final design): contradictions reduce to `false` *during* exploded
    /// supergraph construction, so the solver terminates those paths
    /// early.
    #[default]
    OnEdges,
    /// Replace the start value `true` by `m` (the paper's first attempt,
    /// from the PLAS 2012 workshop paper): same results, but early
    /// termination only in the value-propagation phase. Kept for the
    /// ablation benchmark.
    AtStartValue,
    /// Ignore the feature model entirely (the "ignored" rows of Table 3).
    Ignore,
}

/// An [`IdeProblem`] obtained by lifting an unchanged [`IfdsProblem`]
/// over feature constraints.
///
/// `G` is the *annotated* ICFG the original problem runs on; the lifted
/// problem runs on [`LiftedIcfg<G>`]. Constraints for each statement's
/// enabled/disabled cases are precomputed (including the feature-model
/// conjunction, depending on [`ModelMode`]).
#[derive(Debug)]
pub struct LiftedProblem<'a, G: AnnotatedIcfg, P, Ctx: ConstraintContext> {
    problem: &'a P,
    ctx: &'a Ctx,
    model: Ctx::C,
    /// stmt → (enabled-case constraint, disabled-case constraint).
    ann: FastMap<G::Stmt, (Ctx::C, Ctx::C)>,
}

impl<'a, G, P, Ctx> LiftedProblem<'a, G, P, Ctx>
where
    G: AnnotatedIcfg,
    P: IfdsProblem<G>,
    Ctx: ConstraintContext,
{
    /// Lifts `problem` over the annotations of `icfg`.
    ///
    /// `model` is the feature model's propositional constraint (from
    /// [`spllift_features::FeatureModel::to_expr`]); pass `None` to
    /// analyze without a model. `mode` selects how the model is applied
    /// (irrelevant when `model` is `None`).
    pub fn new(
        problem: &'a P,
        icfg: &G,
        ctx: &'a Ctx,
        model: Option<&FeatureExpr>,
        mode: ModelMode,
    ) -> Self {
        let model_c = match (model, mode) {
            (Some(expr), ModelMode::OnEdges | ModelMode::AtStartValue) => ctx.of_expr(expr),
            _ => ctx.tt(),
        };
        let on_edges = mode == ModelMode::OnEdges;
        let mut ann = FastMap::default();
        for m in icfg.methods() {
            for s in icfg.stmts_of(m) {
                let a = icfg.annotation(s);
                let (en, dis) = if a == FeatureExpr::True {
                    (ctx.tt(), ctx.ff())
                } else {
                    (ctx.of_expr(&a), ctx.of_expr(&a.clone().not()))
                };
                let (en, dis) = if on_edges {
                    (en.and(&model_c), dis.and(&model_c))
                } else {
                    (en, dis)
                };
                ann.insert(s, (en, dis));
            }
        }
        LiftedProblem {
            problem,
            ctx,
            model: model_c,
            ann,
        }
    }

    /// The maximally collapsed lifting (the ladder's A1-style bottom
    /// rung, [`Rung::ConstraintTrue`]): every feature annotation is
    /// abstracted to *unknown* — the annotated flow and the identity
    /// fall-back both fire under the constraint `true` — and the feature
    /// model is ignored.
    ///
    /// This is the variability join abstraction of Dimovski et al.: the
    /// constraint lattice collapses to `{true, false}`, so the solve
    /// performs no non-trivial constraint operations at all and cannot
    /// exhaust a constraint budget. Every reported fact carries the
    /// constraint `true`, which is entailed by any precise constraint —
    /// a sound over-approximation of [`LiftedProblem::new`]'s answer.
    pub fn collapsed(problem: &'a P, icfg: &G, ctx: &'a Ctx) -> Self {
        let mut ann = FastMap::default();
        for m in icfg.methods() {
            for s in icfg.stmts_of(m) {
                let (en, dis) = if icfg.annotation(s) == FeatureExpr::True {
                    (ctx.tt(), ctx.ff())
                } else {
                    (ctx.tt(), ctx.tt())
                };
                ann.insert(s, (en, dis));
            }
        }
        LiftedProblem {
            problem,
            ctx,
            model: ctx.tt(),
            ann,
        }
    }

    /// The constraint context in use.
    pub fn context(&self) -> &'a Ctx {
        self.ctx
    }

    fn constraints_of(&self, s: G::Stmt) -> (Ctx::C, Ctx::C) {
        self.ann
            .get(&s)
            .cloned()
            .unwrap_or_else(|| (self.ctx.tt(), self.ctx.ff()))
    }

    /// Disjoins `(fact, constraint)` into `out`, merging duplicates
    /// (an edge annotated `F` in one case and `¬F` in the other becomes
    /// unconditional — the solid edges of Fig. 4).
    fn push(out: &mut Vec<(P::Fact, ConstraintEdge<Ctx::C>)>, fact: P::Fact, c: Ctx::C) {
        if c.is_false() {
            return;
        }
        if let Some(entry) = out.iter_mut().find(|(f, _)| *f == fact) {
            entry.1 = ConstraintEdge(entry.1 .0.or(&c));
        } else {
            out.push((fact, ConstraintEdge(c)));
        }
    }

    /// Original flow labeled `enabled`, plus the identity flow labeled
    /// `disabled` — the generic disjunction of Fig. 4a.
    fn lift_with_identity(
        &self,
        orig: Vec<P::Fact>,
        fact: &P::Fact,
        enabled: &Ctx::C,
        disabled: &Ctx::C,
    ) -> Vec<(P::Fact, ConstraintEdge<Ctx::C>)> {
        let mut out = Vec::with_capacity(orig.len() + 1);
        for d in orig {
            Self::push(&mut out, d, enabled.clone());
        }
        Self::push(&mut out, fact.clone(), disabled.clone());
        out
    }

    fn lift_plain(
        &self,
        orig: Vec<P::Fact>,
        enabled: &Ctx::C,
    ) -> Vec<(P::Fact, ConstraintEdge<Ctx::C>)> {
        let mut out = Vec::with_capacity(orig.len());
        for d in orig {
            Self::push(&mut out, d, enabled.clone());
        }
        out
    }
}

impl<'a, 'g, G, P, Ctx> IdeProblem<LiftedIcfg<'g, G>> for LiftedProblem<'a, G, P, Ctx>
where
    G: AnnotatedIcfg,
    P: IfdsProblem<G>,
    Ctx: ConstraintContext,
{
    type Fact = P::Fact;
    type Value = Ctx::C;
    type EF = ConstraintEdge<Ctx::C>;

    fn zero(&self) -> P::Fact {
        self.problem.zero()
    }

    fn top(&self) -> Ctx::C {
        self.ctx.ff()
    }

    fn seed_value(&self) -> Ctx::C {
        // §3.4 seeds `true` at the program start node. With a feature
        // model we seed `m` instead: in AtStartValue mode that is the
        // whole mechanism; in OnEdges mode it only states that the entry
        // point itself is reachable in valid configurations only (every
        // edge re-conjoins `m` anyway, so this adds nothing downstream
        // and makes both modes produce identical constraints).
        self.model.clone()
    }

    fn join_values(&self, a: &Ctx::C, b: &Ctx::C) -> Ctx::C {
        a.or(b)
    }

    fn id_edge(&self) -> ConstraintEdge<Ctx::C> {
        ConstraintEdge(self.ctx.tt())
    }

    fn flow_normal(
        &self,
        icfg: &LiftedIcfg<'g, G>,
        curr: G::Stmt,
        succ: G::Stmt,
        fact: &P::Fact,
    ) -> Vec<(P::Fact, ConstraintEdge<Ctx::C>)> {
        let inner = icfg.inner();
        let (en, dis) = self.constraints_of(curr);
        let fall_through = inner.fall_through_of(curr);
        let target = inner.branch_target_of(curr);

        if inner.is_exit(curr) {
            // Only reached for the synthetic disabled-exit fall-through
            // edge: the return does not execute, identity under ¬F.
            debug_assert_eq!(Some(succ), fall_through);
            return self.lift_with_identity(Vec::new(), fact, &en, &dis);
        }
        if inner.is_unconditional_branch(curr) {
            // Fig. 4b: to the target under F; fall through under ¬F.
            let mut out = Vec::new();
            if Some(succ) == target {
                for d in self.problem.flow_normal(inner, curr, succ, fact) {
                    Self::push(&mut out, d, en.clone());
                }
            }
            if Some(succ) == fall_through {
                Self::push(&mut out, fact.clone(), dis.clone());
            }
            return out;
        }
        if inner.is_conditional_branch(curr) {
            // Fig. 4c: normal flow to both outcomes under F; identity to
            // the fall-through under ¬F.
            let mut out = Vec::new();
            if Some(succ) == target || Some(succ) == fall_through {
                for d in self.problem.flow_normal(inner, curr, succ, fact) {
                    Self::push(&mut out, d, en.clone());
                }
            }
            if Some(succ) == fall_through {
                Self::push(&mut out, fact.clone(), dis.clone());
            }
            return out;
        }
        // Fig. 4a: plain statements.
        self.lift_with_identity(
            self.problem.flow_normal(inner, curr, succ, fact),
            fact,
            &en,
            &dis,
        )
    }

    fn flow_call(
        &self,
        icfg: &LiftedIcfg<'g, G>,
        call: G::Stmt,
        callee: G::Method,
        fact: &P::Fact,
    ) -> Vec<(P::Fact, ConstraintEdge<Ctx::C>)> {
        // Fig. 4d: call flow under F; kill-all under ¬F.
        let (en, _) = self.constraints_of(call);
        self.lift_plain(
            self.problem.flow_call(icfg.inner(), call, callee, fact),
            &en,
        )
    }

    fn flow_return(
        &self,
        icfg: &LiftedIcfg<'g, G>,
        call: G::Stmt,
        callee: G::Method,
        exit: G::Stmt,
        return_site: G::Stmt,
        fact: &P::Fact,
    ) -> Vec<(P::Fact, ConstraintEdge<Ctx::C>)> {
        // Return flow exists only when both the call and the return
        // statement are enabled.
        let (en_call, _) = self.constraints_of(call);
        let (en_exit, _) = self.constraints_of(exit);
        self.lift_plain(
            self.problem
                .flow_return(icfg.inner(), call, callee, exit, return_site, fact),
            &en_call.and(&en_exit),
        )
    }

    fn flow_call_to_return(
        &self,
        icfg: &LiftedIcfg<'g, G>,
        call: G::Stmt,
        return_site: G::Stmt,
        fact: &P::Fact,
    ) -> Vec<(P::Fact, ConstraintEdge<Ctx::C>)> {
        // Fig. 4a applied at the call site: the call's intra-procedural
        // effect under F, identity under ¬F.
        let (en, dis) = self.constraints_of(call);
        self.lift_with_identity(
            self.problem
                .flow_call_to_return(icfg.inner(), call, return_site, fact),
            fact,
            &en,
            &dis,
        )
    }

    fn initial_seeds(&self, icfg: &LiftedIcfg<'g, G>) -> Vec<(G::Stmt, P::Fact)> {
        self.problem.initial_seeds(icfg.inner())
    }

    fn budget_check(&self) -> Result<(), String> {
        self.ctx.budget_status()
    }
}

/// A rung of the variability-abstraction ladder, most precise first.
///
/// When a governed solve runs out of resources at one rung, the governor
/// re-solves at the next: each rung's constraints are weaker-or-equal
/// (entailed by) the previous rung's, so descending the ladder trades
/// precision for resources without losing soundness (Dimovski et al.,
/// *Variability Abstractions*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rung {
    /// Full SPLLIFT: feature annotations and the feature model.
    Full,
    /// Feature model ignored; per-statement annotations still precise.
    /// `c ∧ m ⊨ c`, so every constraint only weakens.
    NoModel,
    /// All annotations treated as unknown ([`LiftedProblem::collapsed`]):
    /// every fact's constraint is `true`. No constraint work at all.
    ConstraintTrue,
}

impl Rung {
    /// Stable machine-readable name (used in server responses and bench
    /// JSON).
    pub fn as_str(self) -> &'static str {
        match self {
            Rung::Full => "full",
            Rung::NoModel => "no-model",
            Rung::ConstraintTrue => "constraint-true",
        }
    }
}

impl fmt::Display for Rung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How a governed solve ([`LiftedSolution::solve_governed`]) finished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveOutcome {
    /// The precise solve fit the resource envelope.
    Complete,
    /// One or more rungs aborted; the answer comes from `rung` and every
    /// reported constraint is weaker-or-equal to the precise one.
    Degraded {
        /// The rung that produced the returned solution.
        rung: Rung,
        /// Each abandoned attempt, in ladder order, with the abort reason.
        attempts: Vec<(Rung, String)>,
    },
}

impl SolveOutcome {
    /// The rung the returned solution was computed at.
    pub fn rung(&self) -> Rung {
        match self {
            SolveOutcome::Complete => Rung::Full,
            SolveOutcome::Degraded { rung, .. } => *rung,
        }
    }

    /// `true` iff the solution is degraded (not from the top rung).
    pub fn is_degraded(&self) -> bool {
        matches!(self, SolveOutcome::Degraded { .. })
    }
}

/// Resource envelope for a governed solve. Every limit defaults to
/// unlimited; with all limits off, [`LiftedSolution::solve_governed`] is
/// exactly [`LiftedSolution::solve_with`] plus an `Ok(Complete)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GovernorOptions {
    /// BDD node budget per rung attempt (nodes allocated since arming).
    pub max_bdd_nodes: Option<u64>,
    /// BDD operation budget per rung attempt.
    pub max_bdd_ops: Option<u64>,
    /// Phase-1 propagation cap per rung attempt.
    pub max_propagations: Option<u64>,
    /// Wall-clock allowance per rung attempt (each rung gets a fresh
    /// deadline — a rung that burns its allowance must not starve the
    /// cheaper fallback below it).
    pub timeout: Option<Duration>,
    /// Base solver tuning (worklist dedup etc.); the governor overrides
    /// the `limits`/`poll_budget` fields per attempt.
    pub solver: IdeSolverOptions,
}

impl GovernorOptions {
    fn arms_budget(&self) -> bool {
        self.max_bdd_nodes.is_some() || self.max_bdd_ops.is_some()
    }

    fn solver_options(&self) -> IdeSolverOptions {
        IdeSolverOptions {
            limits: SolveLimits {
                max_propagations: self.max_propagations,
                deadline: self.timeout.map(|t| Instant::now() + t),
            },
            poll_budget: self.arms_budget(),
            ..self.solver
        }
    }
}

/// The result of running SPLLIFT: for every (statement, fact) pair, the
/// feature constraint under which the fact may hold.
#[derive(Debug)]
pub struct LiftedSolution<'g, G: AnnotatedIcfg, D, C>
where
    D: Clone + Eq + std::hash::Hash,
{
    solver: IdeSolver<LiftedIcfg<'g, G>, D, C>,
}

impl<'g, G, D, C> LiftedSolution<'g, G, D, C>
where
    G: AnnotatedIcfg,
    D: Clone + Eq + std::hash::Hash + std::fmt::Debug,
    C: Constraint,
{
    /// Runs SPLLIFT: lifts `problem` over `icfg`'s annotations and solves
    /// it in one pass over the entire product line.
    ///
    /// # Example
    ///
    /// The paper's running example — the lifted taint analysis reports
    /// the leak constraint `¬F ∧ G ∧ ¬H`:
    ///
    /// ```
    /// use spllift_analyses::{TaintAnalysis, TaintFact};
    /// use spllift_core::{LiftedSolution, ModelMode};
    /// use spllift_features::BddConstraintContext;
    /// use spllift_ir::{samples::fig1, LocalId, ProgramIcfg};
    ///
    /// let ex = fig1();
    /// let icfg = ProgramIcfg::new(&ex.program);
    /// let ctx = BddConstraintContext::new(&ex.table);
    /// let analysis = TaintAnalysis::secret_to_print();
    /// let solution =
    ///     LiftedSolution::solve(&analysis, &icfg, &ctx, None, ModelMode::Ignore);
    /// let leak = solution
    ///     .constraint_of(ex.print_call, &TaintFact::Local(LocalId(1)));
    /// assert_eq!(leak.to_cube_string(), "(!F & G & !H)");
    /// ```
    pub fn solve<P, Ctx>(
        problem: &P,
        icfg: &'g G,
        ctx: &Ctx,
        model: Option<&FeatureExpr>,
        mode: ModelMode,
    ) -> Self
    where
        P: IfdsProblem<G, Fact = D> + Sync,
        Ctx: ConstraintContext<C = C> + Sync,
        G: Sync,
        G::Stmt: Send + Sync,
        G::Method: Send + Sync,
        D: Send + Sync,
        C: Send + Sync,
    {
        Self::solve_with(problem, icfg, ctx, model, mode, IdeSolverOptions::default())
    }

    /// Like [`solve`](Self::solve), but with explicit
    /// [`IdeSolverOptions`] — used by the invariance tests to compare
    /// solver configurations on the same problem.
    pub fn solve_with<P, Ctx>(
        problem: &P,
        icfg: &'g G,
        ctx: &Ctx,
        model: Option<&FeatureExpr>,
        mode: ModelMode,
        options: IdeSolverOptions,
    ) -> Self
    where
        P: IfdsProblem<G, Fact = D> + Sync,
        Ctx: ConstraintContext<C = C> + Sync,
        G: Sync,
        G::Stmt: Send + Sync,
        G::Method: Send + Sync,
        D: Send + Sync,
        C: Send + Sync,
    {
        let lifted_icfg = LiftedIcfg::new(icfg);
        let lifted = LiftedProblem::new(problem, icfg, ctx, model, mode);
        let solver = IdeSolver::solve_with(&lifted, &lifted_icfg, options);
        LiftedSolution { solver }
    }

    /// Incremental SPLLIFT: like [`solve_with`](Self::solve_with), but
    /// warm-started from the `memo` of a previous solve of the same
    /// product line. Methods for which `clean` returns `true` keep their
    /// retained jump functions and end summaries; everything else is
    /// re-tabulated. Returns the solution plus a fresh memo for the next
    /// incremental round.
    ///
    /// The caller must pass a `clean` predicate whose complement (the
    /// dirty set) contains every transitive *caller* of every edited
    /// method — see [`SolverMemo`] for the closure argument. The analysis
    /// server derives it from the call graph
    /// (`spllift_ir::callgraph::transitive_callers`).
    pub fn solve_memoized<P, Ctx>(
        problem: &P,
        icfg: &'g G,
        ctx: &Ctx,
        model: Option<&FeatureExpr>,
        mode: ModelMode,
        options: IdeSolverOptions,
        memo: &SolverMemo<G::Method, G::Stmt, D, ConstraintEdge<C>>,
        clean: &dyn Fn(G::Method) -> bool,
    ) -> (Self, SolverMemo<G::Method, G::Stmt, D, ConstraintEdge<C>>)
    where
        P: IfdsProblem<G, Fact = D> + Sync,
        Ctx: ConstraintContext<C = C> + Sync,
        G: Sync,
        G::Stmt: Send + Sync,
        G::Method: Send + Sync,
        D: Send + Sync,
        C: Send + Sync,
    {
        let lifted_icfg = LiftedIcfg::new(icfg);
        let lifted = LiftedProblem::new(problem, icfg, ctx, model, mode);
        let (solver, next) = IdeSolver::solve_seeded(&lifted, &lifted_icfg, options, memo, clean);
        (LiftedSolution { solver }, next)
    }

    /// Resource-governed SPLLIFT: solves under the `gov` envelope,
    /// descending the abstraction ladder on exhaustion.
    ///
    /// The attempt order is [`Rung::Full`], then [`Rung::NoModel`] (only
    /// when a feature model is actually in play), then
    /// [`Rung::ConstraintTrue`]. Each attempt re-arms the constraint
    /// budget and gets a fresh deadline; a successful attempt disarms the
    /// budget (so result rendering runs unmetered) and reports which rung
    /// answered via [`SolveOutcome`]. `Err` is returned only when even
    /// the bottom rung aborted (e.g. a deadline too short for any solve).
    pub fn solve_governed<P, Ctx>(
        problem: &P,
        icfg: &'g G,
        ctx: &Ctx,
        model: Option<&FeatureExpr>,
        mode: ModelMode,
        gov: GovernorOptions,
    ) -> Result<(Self, SolveOutcome), SolveAbort>
    where
        P: IfdsProblem<G, Fact = D> + Sync,
        Ctx: ConstraintContext<C = C> + Sync,
        G: Sync,
        G::Stmt: Send + Sync,
        G::Method: Send + Sync,
        D: Send + Sync,
        C: Send + Sync,
    {
        Self::solve_governed_memoized(
            problem,
            icfg,
            ctx,
            model,
            mode,
            gov,
            &SolverMemo::default(),
            &|_| false,
        )
        .map(|(solution, outcome, _)| (solution, outcome))
    }

    /// [`solve_governed`](Self::solve_governed) warm-started from a memo.
    ///
    /// The memo is only consulted by the [`Rung::Full`] attempt (retained
    /// jump functions encode full-precision constraints, which would leak
    /// stale precision into a degraded rung), and the returned memo is
    /// non-empty only when that attempt completed — after a degraded
    /// solve the next round starts cold.
    #[allow(clippy::too_many_arguments, clippy::type_complexity)]
    pub fn solve_governed_memoized<P, Ctx>(
        problem: &P,
        icfg: &'g G,
        ctx: &Ctx,
        model: Option<&FeatureExpr>,
        mode: ModelMode,
        gov: GovernorOptions,
        memo: &SolverMemo<G::Method, G::Stmt, D, ConstraintEdge<C>>,
        clean: &dyn Fn(G::Method) -> bool,
    ) -> Result<
        (
            Self,
            SolveOutcome,
            SolverMemo<G::Method, G::Stmt, D, ConstraintEdge<C>>,
        ),
        SolveAbort,
    >
    where
        P: IfdsProblem<G, Fact = D> + Sync,
        Ctx: ConstraintContext<C = C> + Sync,
        G: Sync,
        G::Stmt: Send + Sync,
        G::Method: Send + Sync,
        D: Send + Sync,
        C: Send + Sync,
    {
        let lifted_icfg = LiftedIcfg::new(icfg);
        let model_in_play = model.is_some() && mode != ModelMode::Ignore;
        let mut rungs = vec![Rung::Full];
        if model_in_play {
            rungs.push(Rung::NoModel);
        }
        rungs.push(Rung::ConstraintTrue);

        let mut attempts: Vec<(Rung, String)> = Vec::new();
        let empty_memo = SolverMemo::default();
        let mut last_abort = None;
        for rung in rungs {
            // Arm before *constructing* the problem: translating the
            // annotations and the model runs constraint operations that
            // can themselves blow up.
            if gov.arms_budget() {
                ctx.arm_budget(gov.max_bdd_nodes, gov.max_bdd_ops);
            }
            let options = gov.solver_options();
            let lifted = match rung {
                Rung::Full => LiftedProblem::new(problem, icfg, ctx, model, mode),
                Rung::NoModel => LiftedProblem::new(problem, icfg, ctx, None, ModelMode::Ignore),
                Rung::ConstraintTrue => LiftedProblem::collapsed(problem, icfg, ctx),
            };
            let rung_memo = if rung == Rung::Full {
                memo
            } else {
                &empty_memo
            };
            match IdeSolver::try_solve_seeded(&lifted, &lifted_icfg, options, rung_memo, clean) {
                Ok((solver, next_memo)) => {
                    ctx.disarm_budget();
                    let solution = LiftedSolution { solver };
                    return Ok(if rung == Rung::Full {
                        (solution, SolveOutcome::Complete, next_memo)
                    } else {
                        (
                            solution,
                            SolveOutcome::Degraded { rung, attempts },
                            SolverMemo::default(),
                        )
                    });
                }
                Err(abort) => {
                    attempts.push((rung, abort.to_string()));
                    last_abort = Some(abort);
                }
            }
        }
        ctx.disarm_budget();
        Err(last_abort.expect("ladder has at least one rung"))
    }

    /// The constraint under which `fact` may hold at `stmt`
    /// (`false` if it never holds).
    pub fn constraint_of(&self, stmt: G::Stmt, fact: &D) -> C {
        self.solver.value_at(stmt, fact)
    }

    /// The reachability constraint of `stmt` (the zero fact's value,
    /// paper §3.3).
    pub fn reachability_of(&self, stmt: G::Stmt) -> C {
        self.solver.reachability_of(stmt)
    }

    /// All facts with a satisfiable constraint at `stmt`.
    pub fn results_at(&self, stmt: G::Stmt) -> FastMap<D, C> {
        self.solver.results_at(stmt)
    }

    /// Whether `fact` holds at `stmt` in the product selected by `config`
    /// — the RQ1 cross-check query.
    pub fn holds_in<Ctx>(&self, ctx: &Ctx, stmt: G::Stmt, fact: &D, config: &Configuration) -> bool
    where
        Ctx: ConstraintContext<C = C>,
    {
        ctx.satisfied_by(&self.constraint_of(stmt, fact), config)
    }

    /// Solver statistics (jump-function constructions etc.).
    pub fn stats(&self) -> IdeStats {
        self.solver.stats()
    }

    /// Every (stmt, fact, constraint) triple with a satisfiable
    /// constraint.
    pub fn all_results(&self) -> impl Iterator<Item = (G::Stmt, &D, &C)> + use<'_, 'g, G, D, C> {
        self.solver.all_results()
    }
}
