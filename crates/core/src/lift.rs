//! The automatic IFDS → IDE lifting (paper §3–§4).

use crate::{AnnotatedIcfg, ConstraintEdge, LiftedIcfg};
use spllift_features::{Configuration, Constraint, ConstraintContext, FeatureExpr};
use spllift_hash::FastMap;
use spllift_ide::{IdeProblem, IdeSolver, IdeSolverOptions, IdeStats, SolverMemo};
use spllift_ifds::IfdsProblem;

/// How the product line's feature model is taken into account.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ModelMode {
    /// Conjoin the model constraint `m` onto every edge (paper §4.2's
    /// final design): contradictions reduce to `false` *during* exploded
    /// supergraph construction, so the solver terminates those paths
    /// early.
    #[default]
    OnEdges,
    /// Replace the start value `true` by `m` (the paper's first attempt,
    /// from the PLAS 2012 workshop paper): same results, but early
    /// termination only in the value-propagation phase. Kept for the
    /// ablation benchmark.
    AtStartValue,
    /// Ignore the feature model entirely (the "ignored" rows of Table 3).
    Ignore,
}

/// An [`IdeProblem`] obtained by lifting an unchanged [`IfdsProblem`]
/// over feature constraints.
///
/// `G` is the *annotated* ICFG the original problem runs on; the lifted
/// problem runs on [`LiftedIcfg<G>`]. Constraints for each statement's
/// enabled/disabled cases are precomputed (including the feature-model
/// conjunction, depending on [`ModelMode`]).
#[derive(Debug)]
pub struct LiftedProblem<'a, G: AnnotatedIcfg, P, Ctx: ConstraintContext> {
    problem: &'a P,
    ctx: &'a Ctx,
    model: Ctx::C,
    /// stmt → (enabled-case constraint, disabled-case constraint).
    ann: FastMap<G::Stmt, (Ctx::C, Ctx::C)>,
}

impl<'a, G, P, Ctx> LiftedProblem<'a, G, P, Ctx>
where
    G: AnnotatedIcfg,
    P: IfdsProblem<G>,
    Ctx: ConstraintContext,
{
    /// Lifts `problem` over the annotations of `icfg`.
    ///
    /// `model` is the feature model's propositional constraint (from
    /// [`spllift_features::FeatureModel::to_expr`]); pass `None` to
    /// analyze without a model. `mode` selects how the model is applied
    /// (irrelevant when `model` is `None`).
    pub fn new(
        problem: &'a P,
        icfg: &G,
        ctx: &'a Ctx,
        model: Option<&FeatureExpr>,
        mode: ModelMode,
    ) -> Self {
        let model_c = match (model, mode) {
            (Some(expr), ModelMode::OnEdges | ModelMode::AtStartValue) => ctx.of_expr(expr),
            _ => ctx.tt(),
        };
        let on_edges = mode == ModelMode::OnEdges;
        let mut ann = FastMap::default();
        for m in icfg.methods() {
            for s in icfg.stmts_of(m) {
                let a = icfg.annotation(s);
                let (en, dis) = if a == FeatureExpr::True {
                    (ctx.tt(), ctx.ff())
                } else {
                    (ctx.of_expr(&a), ctx.of_expr(&a.clone().not()))
                };
                let (en, dis) = if on_edges {
                    (en.and(&model_c), dis.and(&model_c))
                } else {
                    (en, dis)
                };
                ann.insert(s, (en, dis));
            }
        }
        LiftedProblem {
            problem,
            ctx,
            model: model_c,
            ann,
        }
    }

    /// The constraint context in use.
    pub fn context(&self) -> &'a Ctx {
        self.ctx
    }

    fn constraints_of(&self, s: G::Stmt) -> (Ctx::C, Ctx::C) {
        self.ann
            .get(&s)
            .cloned()
            .unwrap_or_else(|| (self.ctx.tt(), self.ctx.ff()))
    }

    /// Disjoins `(fact, constraint)` into `out`, merging duplicates
    /// (an edge annotated `F` in one case and `¬F` in the other becomes
    /// unconditional — the solid edges of Fig. 4).
    fn push(out: &mut Vec<(P::Fact, ConstraintEdge<Ctx::C>)>, fact: P::Fact, c: Ctx::C) {
        if c.is_false() {
            return;
        }
        if let Some(entry) = out.iter_mut().find(|(f, _)| *f == fact) {
            entry.1 = ConstraintEdge(entry.1 .0.or(&c));
        } else {
            out.push((fact, ConstraintEdge(c)));
        }
    }

    /// Original flow labeled `enabled`, plus the identity flow labeled
    /// `disabled` — the generic disjunction of Fig. 4a.
    fn lift_with_identity(
        &self,
        orig: Vec<P::Fact>,
        fact: &P::Fact,
        enabled: &Ctx::C,
        disabled: &Ctx::C,
    ) -> Vec<(P::Fact, ConstraintEdge<Ctx::C>)> {
        let mut out = Vec::with_capacity(orig.len() + 1);
        for d in orig {
            Self::push(&mut out, d, enabled.clone());
        }
        Self::push(&mut out, fact.clone(), disabled.clone());
        out
    }

    fn lift_plain(
        &self,
        orig: Vec<P::Fact>,
        enabled: &Ctx::C,
    ) -> Vec<(P::Fact, ConstraintEdge<Ctx::C>)> {
        let mut out = Vec::with_capacity(orig.len());
        for d in orig {
            Self::push(&mut out, d, enabled.clone());
        }
        out
    }
}

impl<'a, 'g, G, P, Ctx> IdeProblem<LiftedIcfg<'g, G>> for LiftedProblem<'a, G, P, Ctx>
where
    G: AnnotatedIcfg,
    P: IfdsProblem<G>,
    Ctx: ConstraintContext,
{
    type Fact = P::Fact;
    type Value = Ctx::C;
    type EF = ConstraintEdge<Ctx::C>;

    fn zero(&self) -> P::Fact {
        self.problem.zero()
    }

    fn top(&self) -> Ctx::C {
        self.ctx.ff()
    }

    fn seed_value(&self) -> Ctx::C {
        // §3.4 seeds `true` at the program start node. With a feature
        // model we seed `m` instead: in AtStartValue mode that is the
        // whole mechanism; in OnEdges mode it only states that the entry
        // point itself is reachable in valid configurations only (every
        // edge re-conjoins `m` anyway, so this adds nothing downstream
        // and makes both modes produce identical constraints).
        self.model.clone()
    }

    fn join_values(&self, a: &Ctx::C, b: &Ctx::C) -> Ctx::C {
        a.or(b)
    }

    fn id_edge(&self) -> ConstraintEdge<Ctx::C> {
        ConstraintEdge(self.ctx.tt())
    }

    fn flow_normal(
        &self,
        icfg: &LiftedIcfg<'g, G>,
        curr: G::Stmt,
        succ: G::Stmt,
        fact: &P::Fact,
    ) -> Vec<(P::Fact, ConstraintEdge<Ctx::C>)> {
        let inner = icfg.inner();
        let (en, dis) = self.constraints_of(curr);
        let fall_through = inner.fall_through_of(curr);
        let target = inner.branch_target_of(curr);

        if inner.is_exit(curr) {
            // Only reached for the synthetic disabled-exit fall-through
            // edge: the return does not execute, identity under ¬F.
            debug_assert_eq!(Some(succ), fall_through);
            return self.lift_with_identity(Vec::new(), fact, &en, &dis);
        }
        if inner.is_unconditional_branch(curr) {
            // Fig. 4b: to the target under F; fall through under ¬F.
            let mut out = Vec::new();
            if Some(succ) == target {
                for d in self.problem.flow_normal(inner, curr, succ, fact) {
                    Self::push(&mut out, d, en.clone());
                }
            }
            if Some(succ) == fall_through {
                Self::push(&mut out, fact.clone(), dis.clone());
            }
            return out;
        }
        if inner.is_conditional_branch(curr) {
            // Fig. 4c: normal flow to both outcomes under F; identity to
            // the fall-through under ¬F.
            let mut out = Vec::new();
            if Some(succ) == target || Some(succ) == fall_through {
                for d in self.problem.flow_normal(inner, curr, succ, fact) {
                    Self::push(&mut out, d, en.clone());
                }
            }
            if Some(succ) == fall_through {
                Self::push(&mut out, fact.clone(), dis.clone());
            }
            return out;
        }
        // Fig. 4a: plain statements.
        self.lift_with_identity(
            self.problem.flow_normal(inner, curr, succ, fact),
            fact,
            &en,
            &dis,
        )
    }

    fn flow_call(
        &self,
        icfg: &LiftedIcfg<'g, G>,
        call: G::Stmt,
        callee: G::Method,
        fact: &P::Fact,
    ) -> Vec<(P::Fact, ConstraintEdge<Ctx::C>)> {
        // Fig. 4d: call flow under F; kill-all under ¬F.
        let (en, _) = self.constraints_of(call);
        self.lift_plain(
            self.problem.flow_call(icfg.inner(), call, callee, fact),
            &en,
        )
    }

    fn flow_return(
        &self,
        icfg: &LiftedIcfg<'g, G>,
        call: G::Stmt,
        callee: G::Method,
        exit: G::Stmt,
        return_site: G::Stmt,
        fact: &P::Fact,
    ) -> Vec<(P::Fact, ConstraintEdge<Ctx::C>)> {
        // Return flow exists only when both the call and the return
        // statement are enabled.
        let (en_call, _) = self.constraints_of(call);
        let (en_exit, _) = self.constraints_of(exit);
        self.lift_plain(
            self.problem
                .flow_return(icfg.inner(), call, callee, exit, return_site, fact),
            &en_call.and(&en_exit),
        )
    }

    fn flow_call_to_return(
        &self,
        icfg: &LiftedIcfg<'g, G>,
        call: G::Stmt,
        return_site: G::Stmt,
        fact: &P::Fact,
    ) -> Vec<(P::Fact, ConstraintEdge<Ctx::C>)> {
        // Fig. 4a applied at the call site: the call's intra-procedural
        // effect under F, identity under ¬F.
        let (en, dis) = self.constraints_of(call);
        self.lift_with_identity(
            self.problem
                .flow_call_to_return(icfg.inner(), call, return_site, fact),
            fact,
            &en,
            &dis,
        )
    }

    fn initial_seeds(&self, icfg: &LiftedIcfg<'g, G>) -> Vec<(G::Stmt, P::Fact)> {
        self.problem.initial_seeds(icfg.inner())
    }
}

/// The result of running SPLLIFT: for every (statement, fact) pair, the
/// feature constraint under which the fact may hold.
#[derive(Debug)]
pub struct LiftedSolution<'g, G: AnnotatedIcfg, D, C>
where
    D: Clone + Eq + std::hash::Hash,
{
    solver: IdeSolver<LiftedIcfg<'g, G>, D, C>,
}

impl<'g, G, D, C> LiftedSolution<'g, G, D, C>
where
    G: AnnotatedIcfg,
    D: Clone + Eq + std::hash::Hash + std::fmt::Debug,
    C: Constraint,
{
    /// Runs SPLLIFT: lifts `problem` over `icfg`'s annotations and solves
    /// it in one pass over the entire product line.
    ///
    /// # Example
    ///
    /// The paper's running example — the lifted taint analysis reports
    /// the leak constraint `¬F ∧ G ∧ ¬H`:
    ///
    /// ```
    /// use spllift_analyses::{TaintAnalysis, TaintFact};
    /// use spllift_core::{LiftedSolution, ModelMode};
    /// use spllift_features::BddConstraintContext;
    /// use spllift_ir::{samples::fig1, LocalId, ProgramIcfg};
    ///
    /// let ex = fig1();
    /// let icfg = ProgramIcfg::new(&ex.program);
    /// let ctx = BddConstraintContext::new(&ex.table);
    /// let analysis = TaintAnalysis::secret_to_print();
    /// let solution =
    ///     LiftedSolution::solve(&analysis, &icfg, &ctx, None, ModelMode::Ignore);
    /// let leak = solution
    ///     .constraint_of(ex.print_call, &TaintFact::Local(LocalId(1)));
    /// assert_eq!(leak.to_cube_string(), "(!F & G & !H)");
    /// ```
    pub fn solve<P, Ctx>(
        problem: &P,
        icfg: &'g G,
        ctx: &Ctx,
        model: Option<&FeatureExpr>,
        mode: ModelMode,
    ) -> Self
    where
        P: IfdsProblem<G, Fact = D>,
        Ctx: ConstraintContext<C = C>,
    {
        Self::solve_with(problem, icfg, ctx, model, mode, IdeSolverOptions::default())
    }

    /// Like [`solve`](Self::solve), but with explicit
    /// [`IdeSolverOptions`] — used by the invariance tests to compare
    /// solver configurations on the same problem.
    pub fn solve_with<P, Ctx>(
        problem: &P,
        icfg: &'g G,
        ctx: &Ctx,
        model: Option<&FeatureExpr>,
        mode: ModelMode,
        options: IdeSolverOptions,
    ) -> Self
    where
        P: IfdsProblem<G, Fact = D>,
        Ctx: ConstraintContext<C = C>,
    {
        let lifted_icfg = LiftedIcfg::new(icfg);
        let lifted = LiftedProblem::new(problem, icfg, ctx, model, mode);
        let solver = IdeSolver::solve_with(&lifted, &lifted_icfg, options);
        LiftedSolution { solver }
    }

    /// Incremental SPLLIFT: like [`solve_with`](Self::solve_with), but
    /// warm-started from the `memo` of a previous solve of the same
    /// product line. Methods for which `clean` returns `true` keep their
    /// retained jump functions and end summaries; everything else is
    /// re-tabulated. Returns the solution plus a fresh memo for the next
    /// incremental round.
    ///
    /// The caller must pass a `clean` predicate whose complement (the
    /// dirty set) contains every transitive *caller* of every edited
    /// method — see [`SolverMemo`] for the closure argument. The analysis
    /// server derives it from the call graph
    /// (`spllift_ir::callgraph::transitive_callers`).
    pub fn solve_memoized<P, Ctx>(
        problem: &P,
        icfg: &'g G,
        ctx: &Ctx,
        model: Option<&FeatureExpr>,
        mode: ModelMode,
        options: IdeSolverOptions,
        memo: &SolverMemo<G::Method, G::Stmt, D, ConstraintEdge<C>>,
        clean: &dyn Fn(G::Method) -> bool,
    ) -> (Self, SolverMemo<G::Method, G::Stmt, D, ConstraintEdge<C>>)
    where
        P: IfdsProblem<G, Fact = D>,
        Ctx: ConstraintContext<C = C>,
    {
        let lifted_icfg = LiftedIcfg::new(icfg);
        let lifted = LiftedProblem::new(problem, icfg, ctx, model, mode);
        let (solver, next) = IdeSolver::solve_seeded(&lifted, &lifted_icfg, options, memo, clean);
        (LiftedSolution { solver }, next)
    }

    /// The constraint under which `fact` may hold at `stmt`
    /// (`false` if it never holds).
    pub fn constraint_of(&self, stmt: G::Stmt, fact: &D) -> C {
        self.solver.value_at(stmt, fact)
    }

    /// The reachability constraint of `stmt` (the zero fact's value,
    /// paper §3.3).
    pub fn reachability_of(&self, stmt: G::Stmt) -> C {
        self.solver.reachability_of(stmt)
    }

    /// All facts with a satisfiable constraint at `stmt`.
    pub fn results_at(&self, stmt: G::Stmt) -> FastMap<D, C> {
        self.solver.results_at(stmt)
    }

    /// Whether `fact` holds at `stmt` in the product selected by `config`
    /// — the RQ1 cross-check query.
    pub fn holds_in<Ctx>(&self, ctx: &Ctx, stmt: G::Stmt, fact: &D, config: &Configuration) -> bool
    where
        Ctx: ConstraintContext<C = C>,
    {
        ctx.satisfied_by(&self.constraint_of(stmt, fact), config)
    }

    /// Solver statistics (jump-function constructions etc.).
    pub fn stats(&self) -> IdeStats {
        self.solver.stats()
    }

    /// Every (stmt, fact, constraint) triple with a satisfiable
    /// constraint.
    pub fn all_results(&self) -> impl Iterator<Item = (G::Stmt, &D, &C)> + use<'_, 'g, G, D, C> {
        self.solver.all_results()
    }
}
