//! The automatic IFDS → IDE lifting (paper §3–§4).

use crate::{AnnotatedIcfg, ConstraintEdge, LiftedIcfg};
use spllift_features::{
    AbstractionStep, Configuration, Constraint, ConstraintContext, FeatureExpr, FeatureId,
    LatticePoint,
};
use spllift_hash::{FastMap, FastSet};
use spllift_ide::{IdeProblem, IdeSolver, IdeSolverOptions, IdeStats, SolveAbort, SolverMemo};
use spllift_ifds::{IfdsProblem, SolveLimits};
use std::time::{Duration, Instant};

/// How the product line's feature model is taken into account.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ModelMode {
    /// Conjoin the model constraint `m` onto every edge (paper §4.2's
    /// final design): contradictions reduce to `false` *during* exploded
    /// supergraph construction, so the solver terminates those paths
    /// early.
    #[default]
    OnEdges,
    /// Replace the start value `true` by `m` (the paper's first attempt,
    /// from the PLAS 2012 workshop paper): same results, but early
    /// termination only in the value-propagation phase. Kept for the
    /// ablation benchmark.
    AtStartValue,
    /// Ignore the feature model entirely (the "ignored" rows of Table 3).
    Ignore,
}

/// An [`IdeProblem`] obtained by lifting an unchanged [`IfdsProblem`]
/// over feature constraints.
///
/// `G` is the *annotated* ICFG the original problem runs on; the lifted
/// problem runs on [`LiftedIcfg<G>`]. Constraints for each statement's
/// enabled/disabled cases are precomputed (including the feature-model
/// conjunction, depending on [`ModelMode`]).
#[derive(Debug)]
pub struct LiftedProblem<'a, G: AnnotatedIcfg, P, Ctx: ConstraintContext> {
    problem: &'a P,
    ctx: &'a Ctx,
    model: Ctx::C,
    /// stmt → (enabled-case constraint, disabled-case constraint).
    ann: FastMap<G::Stmt, (Ctx::C, Ctx::C)>,
}

impl<'a, G, P, Ctx> LiftedProblem<'a, G, P, Ctx>
where
    G: AnnotatedIcfg,
    P: IfdsProblem<G>,
    Ctx: ConstraintContext,
{
    /// Lifts `problem` over the annotations of `icfg`.
    ///
    /// `model` is the feature model's propositional constraint (from
    /// [`spllift_features::FeatureModel::to_expr`]); pass `None` to
    /// analyze without a model. `mode` selects how the model is applied
    /// (irrelevant when `model` is `None`).
    pub fn new(
        problem: &'a P,
        icfg: &G,
        ctx: &'a Ctx,
        model: Option<&FeatureExpr>,
        mode: ModelMode,
    ) -> Self {
        let model_c = match (model, mode) {
            (Some(expr), ModelMode::OnEdges | ModelMode::AtStartValue) => ctx.of_expr(expr),
            _ => ctx.tt(),
        };
        let on_edges = mode == ModelMode::OnEdges;
        let mut ann = FastMap::default();
        for m in icfg.methods() {
            for s in icfg.stmts_of(m) {
                let a = icfg.annotation(s);
                let (en, dis) = if a == FeatureExpr::True {
                    (ctx.tt(), ctx.ff())
                } else {
                    (ctx.of_expr(&a), ctx.of_expr(&a.clone().not()))
                };
                let (en, dis) = if on_edges {
                    (en.and(&model_c), dis.and(&model_c))
                } else {
                    (en, dis)
                };
                ann.insert(s, (en, dis));
            }
        }
        LiftedProblem {
            problem,
            ctx,
            model: model_c,
            ann,
        }
    }

    /// Lifts `problem` at an arbitrary point of the variability-
    /// abstraction lattice: every per-statement annotation constraint
    /// and (unless the point drops it) the feature-model constraint are
    /// passed through the point's composed weakening transformer before
    /// the solve. Since every transformer is weakening (`c ⊨ τ(c)`) and
    /// the lifting only combines these inputs with `∧`/`∨` — both
    /// monotone w.r.t. entailment — every constraint the abstracted
    /// solve reports is entailed by the full-precision one.
    ///
    /// Note the disabled-case constraint is `τ(¬a) ∧ τ(m)`, i.e. the
    /// transformer is applied to the *negated annotation*, never
    /// negated afterwards: `¬τ(a)` would strengthen, breaking
    /// soundness.
    ///
    /// Also returns the [`AbstractionImpact`]: which methods' stored
    /// constraints actually changed relative to [`LiftedProblem::new`]
    /// — the governor uses it to keep still-valid memoized jump
    /// functions (closed under transitive callers) when re-solving.
    pub fn abstracted(
        problem: &'a P,
        icfg: &G,
        ctx: &'a Ctx,
        model: Option<&FeatureExpr>,
        mode: ModelMode,
        point: &LatticePoint,
    ) -> (Self, AbstractionImpact<G::Method>) {
        if point.is_collapsed() {
            let impact = AbstractionImpact {
                model_changed: true,
                changed_methods: FastSet::default(),
            };
            return (Self::collapsed(problem, icfg, ctx), impact);
        }
        let steps = point.steps();
        let model_in_play = matches!(
            (model, mode),
            (Some(_), ModelMode::OnEdges | ModelMode::AtStartValue)
        );
        let (model_c, model_changed) = if !model_in_play {
            (ctx.tt(), false)
        } else if point.drops_model() {
            (ctx.tt(), true)
        } else {
            let m0 = ctx.of_expr(model.expect("model_in_play"));
            let m1 = ctx.apply_abstraction(steps, &m0);
            let changed = m1 != m0;
            (m1, changed)
        };
        let on_edges = mode == ModelMode::OnEdges && !point.drops_model();
        let mut ann = FastMap::default();
        let mut changed_methods = FastSet::default();
        for m in icfg.methods() {
            let mut method_changed = false;
            for s in icfg.stmts_of(m) {
                let a = icfg.annotation(s);
                let (en, dis) = if a == FeatureExpr::True {
                    (ctx.tt(), ctx.ff())
                } else {
                    let en0 = ctx.of_expr(&a);
                    let dis0 = ctx.of_expr(&a.clone().not());
                    let en1 = ctx.apply_abstraction(steps, &en0);
                    let dis1 = ctx.apply_abstraction(steps, &dis0);
                    if en1 != en0 || dis1 != dis0 {
                        method_changed = true;
                    }
                    (en1, dis1)
                };
                let (en, dis) = if on_edges {
                    (en.and(&model_c), dis.and(&model_c))
                } else {
                    (en, dis)
                };
                ann.insert(s, (en, dis));
            }
            if method_changed {
                changed_methods.insert(m);
            }
        }
        let lifted = LiftedProblem {
            problem,
            ctx,
            model: model_c,
            ann,
        };
        let impact = AbstractionImpact {
            model_changed,
            changed_methods,
        };
        (lifted, impact)
    }

    /// The maximally collapsed lifting (the lattice's A1-style bottom
    /// point, [`LatticePoint::constraint_true`]): every feature
    /// annotation is abstracted to *unknown* — the annotated flow and
    /// the identity fall-back both fire under the constraint `true` —
    /// and the feature model is ignored.
    ///
    /// This is the variability join abstraction of Dimovski et al.: the
    /// constraint lattice collapses to `{true, false}`, so the solve
    /// performs no non-trivial constraint operations at all and cannot
    /// exhaust a constraint budget. Every reported fact carries the
    /// constraint `true`, which is entailed by any precise constraint —
    /// a sound over-approximation of [`LiftedProblem::new`]'s answer.
    pub fn collapsed(problem: &'a P, icfg: &G, ctx: &'a Ctx) -> Self {
        let mut ann = FastMap::default();
        for m in icfg.methods() {
            for s in icfg.stmts_of(m) {
                let (en, dis) = if icfg.annotation(s) == FeatureExpr::True {
                    (ctx.tt(), ctx.ff())
                } else {
                    (ctx.tt(), ctx.tt())
                };
                ann.insert(s, (en, dis));
            }
        }
        LiftedProblem {
            problem,
            ctx,
            model: ctx.tt(),
            ann,
        }
    }

    /// The constraint context in use.
    pub fn context(&self) -> &'a Ctx {
        self.ctx
    }

    fn constraints_of(&self, s: G::Stmt) -> (Ctx::C, Ctx::C) {
        self.ann
            .get(&s)
            .cloned()
            .unwrap_or_else(|| (self.ctx.tt(), self.ctx.ff()))
    }

    /// Disjoins `(fact, constraint)` into `out`, merging duplicates
    /// (an edge annotated `F` in one case and `¬F` in the other becomes
    /// unconditional — the solid edges of Fig. 4).
    fn push(out: &mut Vec<(P::Fact, ConstraintEdge<Ctx::C>)>, fact: P::Fact, c: Ctx::C) {
        if c.is_false() {
            return;
        }
        if let Some(entry) = out.iter_mut().find(|(f, _)| *f == fact) {
            entry.1 = ConstraintEdge(entry.1 .0.or(&c));
        } else {
            out.push((fact, ConstraintEdge(c)));
        }
    }

    /// Original flow labeled `enabled`, plus the identity flow labeled
    /// `disabled` — the generic disjunction of Fig. 4a.
    fn lift_with_identity(
        &self,
        orig: Vec<P::Fact>,
        fact: &P::Fact,
        enabled: &Ctx::C,
        disabled: &Ctx::C,
    ) -> Vec<(P::Fact, ConstraintEdge<Ctx::C>)> {
        let mut out = Vec::with_capacity(orig.len() + 1);
        for d in orig {
            Self::push(&mut out, d, enabled.clone());
        }
        Self::push(&mut out, fact.clone(), disabled.clone());
        out
    }

    fn lift_plain(
        &self,
        orig: Vec<P::Fact>,
        enabled: &Ctx::C,
    ) -> Vec<(P::Fact, ConstraintEdge<Ctx::C>)> {
        let mut out = Vec::with_capacity(orig.len());
        for d in orig {
            Self::push(&mut out, d, enabled.clone());
        }
        out
    }
}

impl<'a, 'g, G, P, Ctx> IdeProblem<LiftedIcfg<'g, G>> for LiftedProblem<'a, G, P, Ctx>
where
    G: AnnotatedIcfg,
    P: IfdsProblem<G>,
    Ctx: ConstraintContext,
{
    type Fact = P::Fact;
    type Value = Ctx::C;
    type EF = ConstraintEdge<Ctx::C>;

    fn zero(&self) -> P::Fact {
        self.problem.zero()
    }

    fn top(&self) -> Ctx::C {
        self.ctx.ff()
    }

    fn seed_value(&self) -> Ctx::C {
        // §3.4 seeds `true` at the program start node. With a feature
        // model we seed `m` instead: in AtStartValue mode that is the
        // whole mechanism; in OnEdges mode it only states that the entry
        // point itself is reachable in valid configurations only (every
        // edge re-conjoins `m` anyway, so this adds nothing downstream
        // and makes both modes produce identical constraints).
        self.model.clone()
    }

    fn join_values(&self, a: &Ctx::C, b: &Ctx::C) -> Ctx::C {
        a.or(b)
    }

    fn id_edge(&self) -> ConstraintEdge<Ctx::C> {
        ConstraintEdge(self.ctx.tt())
    }

    fn flow_normal(
        &self,
        icfg: &LiftedIcfg<'g, G>,
        curr: G::Stmt,
        succ: G::Stmt,
        fact: &P::Fact,
    ) -> Vec<(P::Fact, ConstraintEdge<Ctx::C>)> {
        let inner = icfg.inner();
        let (en, dis) = self.constraints_of(curr);
        let fall_through = inner.fall_through_of(curr);
        let target = inner.branch_target_of(curr);

        if inner.is_exit(curr) {
            // Only reached for the synthetic disabled-exit fall-through
            // edge: the return does not execute, identity under ¬F.
            debug_assert_eq!(Some(succ), fall_through);
            return self.lift_with_identity(Vec::new(), fact, &en, &dis);
        }
        if inner.is_unconditional_branch(curr) {
            // Fig. 4b: to the target under F; fall through under ¬F.
            let mut out = Vec::new();
            if Some(succ) == target {
                for d in self.problem.flow_normal(inner, curr, succ, fact) {
                    Self::push(&mut out, d, en.clone());
                }
            }
            if Some(succ) == fall_through {
                Self::push(&mut out, fact.clone(), dis.clone());
            }
            return out;
        }
        if inner.is_conditional_branch(curr) {
            // Fig. 4c: normal flow to both outcomes under F; identity to
            // the fall-through under ¬F.
            let mut out = Vec::new();
            if Some(succ) == target || Some(succ) == fall_through {
                for d in self.problem.flow_normal(inner, curr, succ, fact) {
                    Self::push(&mut out, d, en.clone());
                }
            }
            if Some(succ) == fall_through {
                Self::push(&mut out, fact.clone(), dis.clone());
            }
            return out;
        }
        // Fig. 4a: plain statements.
        self.lift_with_identity(
            self.problem.flow_normal(inner, curr, succ, fact),
            fact,
            &en,
            &dis,
        )
    }

    fn flow_call(
        &self,
        icfg: &LiftedIcfg<'g, G>,
        call: G::Stmt,
        callee: G::Method,
        fact: &P::Fact,
    ) -> Vec<(P::Fact, ConstraintEdge<Ctx::C>)> {
        // Fig. 4d: call flow under F; kill-all under ¬F.
        let (en, _) = self.constraints_of(call);
        self.lift_plain(
            self.problem.flow_call(icfg.inner(), call, callee, fact),
            &en,
        )
    }

    fn flow_return(
        &self,
        icfg: &LiftedIcfg<'g, G>,
        call: G::Stmt,
        callee: G::Method,
        exit: G::Stmt,
        return_site: G::Stmt,
        fact: &P::Fact,
    ) -> Vec<(P::Fact, ConstraintEdge<Ctx::C>)> {
        // Return flow exists only when both the call and the return
        // statement are enabled.
        let (en_call, _) = self.constraints_of(call);
        let (en_exit, _) = self.constraints_of(exit);
        self.lift_plain(
            self.problem
                .flow_return(icfg.inner(), call, callee, exit, return_site, fact),
            &en_call.and(&en_exit),
        )
    }

    fn flow_call_to_return(
        &self,
        icfg: &LiftedIcfg<'g, G>,
        call: G::Stmt,
        return_site: G::Stmt,
        fact: &P::Fact,
    ) -> Vec<(P::Fact, ConstraintEdge<Ctx::C>)> {
        // Fig. 4a applied at the call site: the call's intra-procedural
        // effect under F, identity under ¬F.
        let (en, dis) = self.constraints_of(call);
        self.lift_with_identity(
            self.problem
                .flow_call_to_return(icfg.inner(), call, return_site, fact),
            fact,
            &en,
            &dis,
        )
    }

    fn initial_seeds(&self, icfg: &LiftedIcfg<'g, G>) -> Vec<(G::Stmt, P::Fact)> {
        self.problem.initial_seeds(icfg.inner())
    }

    fn budget_check(&self) -> Result<(), String> {
        self.ctx.budget_status()
    }
}

/// Which methods an abstraction actually touched, reported by
/// [`LiftedProblem::abstracted`].
///
/// A method whose per-statement constraints are unchanged by the
/// point's transformer (and whose model conjunct is unchanged) has
/// bit-identical edge functions at that point, so its full-precision
/// memoized jump functions and end summaries remain valid — provided
/// the dirty set is closed under transitive *callers* (summaries embed
/// callee summaries; see [`SolverMemo`]).
#[derive(Debug, Clone)]
pub struct AbstractionImpact<M> {
    /// Whether the feature-model conjunct differs from full precision
    /// (dropped or weakened). When it does, every edge changed and no
    /// memo reuse is possible.
    pub model_changed: bool,
    /// Methods with at least one statement whose (enabled, disabled)
    /// constraints changed. *Not* closed under callers.
    pub changed_methods: FastSet<M>,
}

/// How a governed solve ([`LiftedSolution::solve_governed`]) finished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveOutcome {
    /// The precise solve fit the resource envelope.
    Complete,
    /// One or more lattice points aborted; the answer comes from
    /// `point` and every reported constraint is weaker-or-equal to
    /// (entailed by) the precise one.
    Degraded {
        /// The exact lattice point that produced the returned solution
        /// — clients can read off precisely which features were
        /// projected, joined, or confounded.
        point: LatticePoint,
        /// Each abandoned attempt, in descent order, with the abort
        /// reason.
        attempts: Vec<(LatticePoint, String)>,
    },
}

impl SolveOutcome {
    /// The lattice point the returned solution was computed at
    /// ([`LatticePoint::full`] for a complete solve).
    pub fn point(&self) -> LatticePoint {
        match self {
            SolveOutcome::Complete => LatticePoint::full(),
            SolveOutcome::Degraded { point, .. } => point.clone(),
        }
    }

    /// Stable machine-readable name of [`point`](Self::point) — the
    /// `rung` field of server responses and bench JSON. The PR 5 rungs
    /// keep their exact names (`full`, `no-model`, `constraint-true`).
    pub fn rung_name(&self) -> String {
        self.point().name()
    }

    /// `true` iff the solution is degraded (not from the top point).
    pub fn is_degraded(&self) -> bool {
        matches!(self, SolveOutcome::Degraded { .. })
    }
}

/// Feature-universe hints the governor needs to pick lattice points
/// adaptively. With no `keep` set, the governor's descent is exactly
/// PR 5's hard ladder (full → no-model → constraint-true), so existing
/// clients see byte-identical behavior.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatticeHints {
    /// The full feature universe, `(id, name)` — names feed the stable
    /// lattice-point labels. Required for adaptive descent (an empty
    /// universe disables the adaptive points).
    pub universe: Vec<(FeatureId, String)>,
    /// Features the pending query cares about: abstractions that touch
    /// any of these are skipped, so precision is spent only where the
    /// client asked for it (`keep_features` on the wire,
    /// `--keep-features` on the CLI). `None` = hard ladder.
    pub keep: Option<Vec<FeatureId>>,
    /// The feature model's OR groups (`FeatureModel::or_groups`) —
    /// candidates for the *confound* abstraction.
    pub or_groups: Vec<(FeatureId, Vec<FeatureId>)>,
}

impl LatticeHints {
    fn named(&self, id: FeatureId) -> (FeatureId, String) {
        let name = self
            .universe
            .iter()
            .find(|(i, _)| *i == id)
            .map(|(_, n)| n.clone())
            .unwrap_or_else(|| format!("f{}", id.0));
        (id, name)
    }

    /// The descent schedule, most precise first. Always starts at
    /// [`LatticePoint::full`] and ends at
    /// [`LatticePoint::constraint_true`]; what lies between depends on
    /// `keep`:
    ///
    /// * `keep = None` — the PR 5 ladder: `no-model` (when a model is
    ///   in play), nothing else.
    /// * `keep = Some(K)` — cheapest-first adaptive points sparing `K`:
    ///   confound every OR group disjoint from `K` (model kept, only
    ///   group-member distinctions lost), then project away the entire
    ///   non-kept universe, then the same projection with the model
    ///   dropped too.
    fn schedule(&self, model_in_play: bool) -> Vec<LatticePoint> {
        let mut points = vec![LatticePoint::full()];
        match &self.keep {
            Some(keep) if !self.universe.is_empty() => {
                let keep: FastSet<FeatureId> = keep.iter().copied().collect();
                if model_in_play {
                    let confounds: Vec<AbstractionStep> = self
                        .or_groups
                        .iter()
                        .filter(|(p, ms)| !keep.contains(p) && ms.iter().all(|m| !keep.contains(m)))
                        .map(|(p, ms)| {
                            AbstractionStep::confound(
                                self.named(*p),
                                ms.iter().map(|&m| self.named(m)),
                            )
                        })
                        .collect();
                    if !confounds.is_empty() {
                        points.push(LatticePoint::abstracted(confounds));
                    }
                }
                let away: Vec<(FeatureId, String)> = self
                    .universe
                    .iter()
                    .filter(|(id, _)| !keep.contains(id))
                    .cloned()
                    .collect();
                if !away.is_empty() {
                    let project = LatticePoint::abstracted(vec![AbstractionStep::project(away)]);
                    points.push(project.clone());
                    if model_in_play {
                        points.push(project.without_model());
                    }
                } else if model_in_play {
                    points.push(LatticePoint::no_model());
                }
            }
            _ => {
                if model_in_play {
                    points.push(LatticePoint::no_model());
                }
            }
        }
        points.push(LatticePoint::constraint_true());
        points.dedup();
        points
    }
}

/// Resource envelope for a governed solve. Every limit defaults to
/// unlimited; with all limits off, [`LiftedSolution::solve_governed`] is
/// exactly [`LiftedSolution::solve_with`] plus an `Ok(Complete)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GovernorOptions {
    /// BDD node budget per lattice-point attempt (nodes allocated since
    /// arming).
    pub max_bdd_nodes: Option<u64>,
    /// BDD operation budget per lattice-point attempt.
    pub max_bdd_ops: Option<u64>,
    /// Phase-1 propagation cap per lattice-point attempt.
    pub max_propagations: Option<u64>,
    /// Wall-clock allowance per attempt (each lattice point gets a
    /// fresh deadline — a point that burns its allowance must not
    /// starve the cheaper fallback below it).
    pub timeout: Option<Duration>,
    /// Base solver tuning (worklist dedup etc.); the governor overrides
    /// the `limits`/`poll_budget` fields per attempt.
    pub solver: IdeSolverOptions,
    /// Feature-universe hints for adaptive descent; default = PR 5's
    /// hard ladder.
    pub lattice: LatticeHints,
}

impl GovernorOptions {
    fn arms_budget(&self) -> bool {
        self.max_bdd_nodes.is_some() || self.max_bdd_ops.is_some()
    }

    fn solver_options(&self) -> IdeSolverOptions {
        IdeSolverOptions {
            limits: SolveLimits {
                max_propagations: self.max_propagations,
                deadline: self.timeout.map(|t| Instant::now() + t),
            },
            poll_budget: self.arms_budget(),
            ..self.solver
        }
    }
}

/// The transitive-caller closure of `changed`: every method from which
/// some changed method is reachable in the call graph (including the
/// changed methods themselves). This is the dirty set memo reuse needs
/// — a caller's summaries embed callee summaries, so a clean caller of
/// a changed callee would leak stale constraints.
fn transitive_callers<G: AnnotatedIcfg>(
    icfg: &G,
    changed: &FastSet<G::Method>,
) -> FastSet<G::Method> {
    let mut callers_of: FastMap<G::Method, Vec<G::Method>> = FastMap::default();
    for m in icfg.methods() {
        for s in icfg.calls_in(m) {
            for callee in icfg.callees_of(s) {
                callers_of.entry(callee).or_default().push(m);
            }
        }
    }
    let mut dirty: FastSet<G::Method> = changed.clone();
    let mut work: Vec<G::Method> = changed.iter().copied().collect();
    while let Some(m) = work.pop() {
        if let Some(callers) = callers_of.get(&m) {
            for &c in callers {
                if dirty.insert(c) {
                    work.push(c);
                }
            }
        }
    }
    dirty
}

/// The result of running SPLLIFT: for every (statement, fact) pair, the
/// feature constraint under which the fact may hold.
#[derive(Debug)]
pub struct LiftedSolution<'g, G: AnnotatedIcfg, D, C>
where
    D: Clone + Eq + std::hash::Hash,
{
    solver: IdeSolver<LiftedIcfg<'g, G>, D, C>,
}

impl<'g, G, D, C> LiftedSolution<'g, G, D, C>
where
    G: AnnotatedIcfg,
    D: Clone + Eq + std::hash::Hash + std::fmt::Debug,
    C: Constraint,
{
    /// Runs SPLLIFT: lifts `problem` over `icfg`'s annotations and solves
    /// it in one pass over the entire product line.
    ///
    /// # Example
    ///
    /// The paper's running example — the lifted taint analysis reports
    /// the leak constraint `¬F ∧ G ∧ ¬H`:
    ///
    /// ```
    /// use spllift_analyses::{TaintAnalysis, TaintFact};
    /// use spllift_core::{LiftedSolution, ModelMode};
    /// use spllift_features::BddConstraintContext;
    /// use spllift_ir::{samples::fig1, LocalId, ProgramIcfg};
    ///
    /// let ex = fig1();
    /// let icfg = ProgramIcfg::new(&ex.program);
    /// let ctx = BddConstraintContext::new(&ex.table);
    /// let analysis = TaintAnalysis::secret_to_print();
    /// let solution =
    ///     LiftedSolution::solve(&analysis, &icfg, &ctx, None, ModelMode::Ignore);
    /// let leak = solution
    ///     .constraint_of(ex.print_call, &TaintFact::Local(LocalId(1)));
    /// assert_eq!(leak.to_cube_string(), "(!F & G & !H)");
    /// ```
    pub fn solve<P, Ctx>(
        problem: &P,
        icfg: &'g G,
        ctx: &Ctx,
        model: Option<&FeatureExpr>,
        mode: ModelMode,
    ) -> Self
    where
        P: IfdsProblem<G, Fact = D> + Sync,
        Ctx: ConstraintContext<C = C> + Sync,
        G: Sync,
        G::Stmt: Send + Sync,
        G::Method: Send + Sync,
        D: Send + Sync,
        C: Send + Sync,
    {
        Self::solve_with(problem, icfg, ctx, model, mode, IdeSolverOptions::default())
    }

    /// Like [`solve`](Self::solve), but with explicit
    /// [`IdeSolverOptions`] — used by the invariance tests to compare
    /// solver configurations on the same problem.
    pub fn solve_with<P, Ctx>(
        problem: &P,
        icfg: &'g G,
        ctx: &Ctx,
        model: Option<&FeatureExpr>,
        mode: ModelMode,
        options: IdeSolverOptions,
    ) -> Self
    where
        P: IfdsProblem<G, Fact = D> + Sync,
        Ctx: ConstraintContext<C = C> + Sync,
        G: Sync,
        G::Stmt: Send + Sync,
        G::Method: Send + Sync,
        D: Send + Sync,
        C: Send + Sync,
    {
        let lifted_icfg = LiftedIcfg::new(icfg);
        let lifted = LiftedProblem::new(problem, icfg, ctx, model, mode);
        let solver = IdeSolver::solve_with(&lifted, &lifted_icfg, options);
        LiftedSolution { solver }
    }

    /// Incremental SPLLIFT: like [`solve_with`](Self::solve_with), but
    /// warm-started from the `memo` of a previous solve of the same
    /// product line. Methods for which `clean` returns `true` keep their
    /// retained jump functions and end summaries; everything else is
    /// re-tabulated. Returns the solution plus a fresh memo for the next
    /// incremental round.
    ///
    /// The caller must pass a `clean` predicate whose complement (the
    /// dirty set) contains every transitive *caller* of every edited
    /// method — see [`SolverMemo`] for the closure argument. The analysis
    /// server derives it from the call graph
    /// (`spllift_ir::callgraph::transitive_callers`).
    pub fn solve_memoized<P, Ctx>(
        problem: &P,
        icfg: &'g G,
        ctx: &Ctx,
        model: Option<&FeatureExpr>,
        mode: ModelMode,
        options: IdeSolverOptions,
        memo: &SolverMemo<G::Method, G::Stmt, D, ConstraintEdge<C>>,
        clean: &dyn Fn(G::Method) -> bool,
    ) -> (Self, SolverMemo<G::Method, G::Stmt, D, ConstraintEdge<C>>)
    where
        P: IfdsProblem<G, Fact = D> + Sync,
        Ctx: ConstraintContext<C = C> + Sync,
        G: Sync,
        G::Stmt: Send + Sync,
        G::Method: Send + Sync,
        D: Send + Sync,
        C: Send + Sync,
    {
        let lifted_icfg = LiftedIcfg::new(icfg);
        let lifted = LiftedProblem::new(problem, icfg, ctx, model, mode);
        let (solver, next) = IdeSolver::solve_seeded(&lifted, &lifted_icfg, options, memo, clean);
        (LiftedSolution { solver }, next)
    }

    /// SPLLIFT at an explicit lattice point, ungoverned — the
    /// entailment-differential harness and the fuzz campaign's
    /// weakening verdict compare this against [`solve`](Self::solve).
    pub fn solve_abstracted<P, Ctx>(
        problem: &P,
        icfg: &'g G,
        ctx: &Ctx,
        model: Option<&FeatureExpr>,
        mode: ModelMode,
        point: &LatticePoint,
    ) -> Self
    where
        P: IfdsProblem<G, Fact = D> + Sync,
        Ctx: ConstraintContext<C = C> + Sync,
        G: Sync,
        G::Stmt: Send + Sync,
        G::Method: Send + Sync,
        D: Send + Sync,
        C: Send + Sync,
    {
        let lifted_icfg = LiftedIcfg::new(icfg);
        let (lifted, _) = LiftedProblem::abstracted(problem, icfg, ctx, model, mode, point);
        let solver = IdeSolver::solve_with(&lifted, &lifted_icfg, IdeSolverOptions::default());
        LiftedSolution { solver }
    }

    /// Resource-governed SPLLIFT: solves under the `gov` envelope,
    /// descending the variability-abstraction lattice on exhaustion.
    ///
    /// The attempt order is [`LatticeHints::schedule`]'s descent: the
    /// full-precision top first, then — when `gov.lattice.keep` names
    /// the features the pending query cares about — progressively
    /// coarser points that spare exactly those features (confound
    /// unrelated OR groups, project away the non-kept universe, drop
    /// the model), ending at the constraint-true bottom. Without
    /// `keep`, the descent is PR 5's hard ladder. Each attempt re-arms
    /// the constraint budget and gets a fresh deadline; a successful
    /// attempt disarms the budget (so result rendering runs unmetered)
    /// and reports which lattice point answered via [`SolveOutcome`].
    /// `Err` is returned only when even the bottom point aborted (e.g.
    /// a deadline too short for any solve).
    pub fn solve_governed<P, Ctx>(
        problem: &P,
        icfg: &'g G,
        ctx: &Ctx,
        model: Option<&FeatureExpr>,
        mode: ModelMode,
        gov: GovernorOptions,
    ) -> Result<(Self, SolveOutcome), SolveAbort>
    where
        P: IfdsProblem<G, Fact = D> + Sync,
        Ctx: ConstraintContext<C = C> + Sync,
        G: Sync,
        G::Stmt: Send + Sync,
        G::Method: Send + Sync,
        D: Send + Sync,
        C: Send + Sync,
    {
        Self::solve_governed_memoized(
            problem,
            icfg,
            ctx,
            model,
            mode,
            gov,
            &SolverMemo::default(),
            &|_| false,
        )
        .map(|(solution, outcome, _)| (solution, outcome))
    }

    /// [`solve_governed`](Self::solve_governed) warm-started from a memo.
    ///
    /// The full-precision attempt consults `memo` as usual. A degraded
    /// attempt still reuses the memo *selectively*: methods whose
    /// constraints the lattice point leaves bit-identical (per
    /// [`AbstractionImpact`], closed under transitive callers) keep
    /// their retained jump functions — they encode exactly the same
    /// edge functions at that point. When the point changes the
    /// feature-model conjunct (drops or weakens it) every edge changed,
    /// so the attempt runs cold. The *returned* memo is non-empty only
    /// when the full attempt completed — a degraded solve's jump
    /// functions encode weakened constraints that must not seed a later
    /// full-precision round.
    #[allow(clippy::too_many_arguments, clippy::type_complexity)]
    pub fn solve_governed_memoized<P, Ctx>(
        problem: &P,
        icfg: &'g G,
        ctx: &Ctx,
        model: Option<&FeatureExpr>,
        mode: ModelMode,
        gov: GovernorOptions,
        memo: &SolverMemo<G::Method, G::Stmt, D, ConstraintEdge<C>>,
        clean: &dyn Fn(G::Method) -> bool,
    ) -> Result<
        (
            Self,
            SolveOutcome,
            SolverMemo<G::Method, G::Stmt, D, ConstraintEdge<C>>,
        ),
        SolveAbort,
    >
    where
        P: IfdsProblem<G, Fact = D> + Sync,
        Ctx: ConstraintContext<C = C> + Sync,
        G: Sync,
        G::Stmt: Send + Sync,
        G::Method: Send + Sync,
        D: Send + Sync,
        C: Send + Sync,
    {
        let lifted_icfg = LiftedIcfg::new(icfg);
        let model_in_play = model.is_some() && mode != ModelMode::Ignore;
        let points = gov.lattice.schedule(model_in_play);

        let mut attempts: Vec<(LatticePoint, String)> = Vec::new();
        let empty_memo = SolverMemo::default();
        let mut last_abort = None;
        for point in points {
            // Arm before *constructing* the problem: translating the
            // annotations and the model (and applying the abstraction
            // transformers) runs constraint operations that can
            // themselves blow up.
            if gov.arms_budget() {
                ctx.arm_budget(gov.max_bdd_nodes, gov.max_bdd_ops);
            }
            let options = gov.solver_options();
            let is_full = point.is_full();
            let (lifted, impact) = if is_full {
                (LiftedProblem::new(problem, icfg, ctx, model, mode), None)
            } else {
                let (lifted, impact) =
                    LiftedProblem::abstracted(problem, icfg, ctx, model, mode, &point);
                (lifted, Some(impact))
            };
            // The constraint work above can already exhaust the budget;
            // bail out before solving on garbage constraints.
            if let Err(reason) = ctx.budget_status() {
                let abort = SolveAbort::Budget(reason);
                attempts.push((point, abort.to_string()));
                last_abort = Some(abort);
                continue;
            }
            // Memo reuse: the full attempt uses the caller's clean
            // predicate as-is. A degraded attempt additionally dirties
            // every method the abstraction touched, closed under
            // transitive callers; a changed model conjunct invalidates
            // everything (run cold).
            let reuse_memo = match &impact {
                None => true,
                Some(impact) => !impact.model_changed,
            };
            let dirty = impact
                .as_ref()
                .filter(|impact| !impact.model_changed && !impact.changed_methods.is_empty())
                .map(|impact| transitive_callers(icfg, &impact.changed_methods));
            let composed_clean =
                |m: G::Method| clean(m) && dirty.as_ref().is_none_or(|d| !d.contains(&m));
            let point_memo = if reuse_memo { memo } else { &empty_memo };
            match IdeSolver::try_solve_seeded(
                &lifted,
                &lifted_icfg,
                options,
                point_memo,
                &composed_clean,
            ) {
                Ok((solver, next_memo)) => {
                    ctx.disarm_budget();
                    let solution = LiftedSolution { solver };
                    return Ok(if is_full {
                        (solution, SolveOutcome::Complete, next_memo)
                    } else {
                        (
                            solution,
                            SolveOutcome::Degraded { point, attempts },
                            SolverMemo::default(),
                        )
                    });
                }
                Err(abort) => {
                    attempts.push((point, abort.to_string()));
                    last_abort = Some(abort);
                }
            }
        }
        ctx.disarm_budget();
        Err(last_abort.expect("lattice descent has at least one point"))
    }

    /// The constraint under which `fact` may hold at `stmt`
    /// (`false` if it never holds).
    pub fn constraint_of(&self, stmt: G::Stmt, fact: &D) -> C {
        self.solver.value_at(stmt, fact)
    }

    /// The reachability constraint of `stmt` (the zero fact's value,
    /// paper §3.3).
    pub fn reachability_of(&self, stmt: G::Stmt) -> C {
        self.solver.reachability_of(stmt)
    }

    /// All facts with a satisfiable constraint at `stmt`.
    pub fn results_at(&self, stmt: G::Stmt) -> FastMap<D, C> {
        self.solver.results_at(stmt)
    }

    /// Whether `fact` holds at `stmt` in the product selected by `config`
    /// — the RQ1 cross-check query.
    pub fn holds_in<Ctx>(&self, ctx: &Ctx, stmt: G::Stmt, fact: &D, config: &Configuration) -> bool
    where
        Ctx: ConstraintContext<C = C>,
    {
        ctx.satisfied_by(&self.constraint_of(stmt, fact), config)
    }

    /// Solver statistics (jump-function constructions etc.).
    pub fn stats(&self) -> IdeStats {
        self.solver.stats()
    }

    /// Every (stmt, fact, constraint) triple with a satisfiable
    /// constraint.
    pub fn all_results(&self) -> impl Iterator<Item = (G::Stmt, &D, &C)> + use<'_, 'g, G, D, C> {
        self.solver.all_results()
    }
}
