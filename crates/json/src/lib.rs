//! A dependency-free JSON value type, parser, and emitter.
//!
//! The workspace builds offline with zero registry dependencies (see
//! DESIGN.md §5), so there is no serde anywhere. This crate is the one
//! hand-rolled JSON implementation in-tree: the bench crate's
//! `BENCH_solver.json` emitter/validator and the analysis server's
//! line-delimited request/response protocol are both built on it.
//!
//! The parser is a ~150-line recursive descent over the JSON subset the
//! in-tree emitters produce (objects, arrays, strings, finite numbers,
//! booleans, `null`). It rejects duplicate object keys, non-finite
//! numbers, and trailing garbage — a corrupted document fails fast
//! instead of validating by accident.
//!
//! The emitter ([`Json::render`]) is *canonical*: no insignificant
//! whitespace, object keys in insertion order, and numbers with a zero
//! fractional part rendered as integers. Rendering the same value twice
//! yields byte-identical text, which the server's golden-transcript and
//! jobs-invariance tests lean on.

#![warn(missing_docs)]

use std::fmt::Write as _;

/// A parsed (or to-be-emitted) JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; the parser rejects non-finite values.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys rejected).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as a `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The number as a finite `f64`, if this is a number. Unlike
    /// [`Json::as_u64`] this admits fractional values (latency
    /// percentiles, throughput rates) but still rejects the
    /// non-finite values a corrupted emitter could produce.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) if n.is_finite() => Some(*n),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// A string value (constructor shorthand).
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An integral number value (constructor shorthand).
    pub fn num(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Renders the value as compact canonical JSON: no whitespace,
    /// object keys in insertion order, integral numbers without a
    /// fractional part. The output round-trips through [`parse_json`].
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                // Integral values must not pick up a `.0` suffix (or
                // exponent notation) — the protocol emits counters and
                // the golden transcripts diff byte-exactly.
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Escapes a string for inclusion between JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\n' || b == b'\t' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn keyword(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let n: f64 = text
            .parse()
            .map_err(|_| self.err(&format!("bad number `{text}`")))?;
        if !n.is_finite() {
            return Err(self.err(&format!("non-finite number `{text}`")));
        }
        Ok(Json::Num(n))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unsupported escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err(&format!("duplicate key `{key}`")));
            }
            self.skip_ws();
            self.expect(b':')?;
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parses a JSON document (the subset the in-tree emitters produce).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after document"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_strings_escapes_and_nesting() {
        let doc =
            parse_json(r#"{"a": ["x\n\"y\"", {"b": -1.5e3}], "c": true, "d": null}"#).unwrap();
        let Some(Json::Arr(items)) = doc.get("a") else {
            panic!()
        };
        assert_eq!(items[0], Json::Str("x\n\"y\"".into()));
        assert_eq!(items[1].get("b"), Some(&Json::Num(-1500.0)));
        assert_eq!(doc.get("c"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("d"), Some(&Json::Null));
    }

    #[test]
    fn parser_rejects_duplicate_keys_and_trailing_garbage() {
        assert!(parse_json(r#"{"a": 1, "a": 2}"#).is_err());
        assert!(parse_json(r#"{"a": 1} extra"#).is_err());
        assert!(parse_json(r#"{"a": }"#).is_err());
        assert!(parse_json(r#"{"a": 1"#).is_err());
    }

    #[test]
    fn render_is_compact_and_round_trips() {
        let v = Json::Obj(vec![
            ("type".into(), Json::str("ok")),
            ("count".into(), Json::num(42)),
            (
                "items".into(),
                Json::Arr(vec![Json::Bool(true), Json::Null, Json::str("a\"b")]),
            ),
        ]);
        let text = v.render();
        assert_eq!(
            text,
            r#"{"type":"ok","count":42,"items":[true,null,"a\"b"]}"#
        );
        assert_eq!(parse_json(&text).unwrap(), v);
    }

    #[test]
    fn render_keeps_integers_integral() {
        assert_eq!(Json::num(0).render(), "0");
        assert_eq!(Json::num(123456789).render(), "123456789");
        assert_eq!(Json::Num(1.5).render(), "1.5");
    }

    #[test]
    fn accessors() {
        let v = parse_json(r#"{"s": "x", "n": 7, "b": false, "a": [1]}"#).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("a").and_then(Json::as_arr).map(|a| a.len()), Some(1));
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
    }
}
