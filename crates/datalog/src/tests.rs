//! Engine edge cases, the dump round trip, and equivalence against the
//! IDE-lifted solver.

use crate::*;
use spllift_analyses::{DefFact, ReachingDefs};
use spllift_core::{LiftedSolution, ModelMode};
use spllift_features::{
    BddConstraintContext, ConstraintContext, FeatureExpr, FeatureId, FeatureTable,
};
use spllift_hash::FastMap;
use spllift_ifds::Icfg;
use spllift_ir::samples::{fig1, shapes};
use spllift_ir::ProgramIcfg;

fn two_feature_ctx() -> (FeatureTable, BddConstraintContext) {
    let mut table = FeatureTable::new();
    table.intern("A");
    table.intern("B");
    let ctx = BddConstraintContext::new(&table);
    (table, ctx)
}

/// edge/2 EDB with per-edge constraints; path/2 as its transitive
/// closure. The lifted join must AND constraints along a path and OR
/// them across alternative paths.
#[test]
fn transitive_closure_joins_and_merges_constraints() {
    let (_table, ctx) = two_feature_ctx();
    let a = ctx.lit(FeatureId(0), true);
    let b = ctx.lit(FeatureId(1), true);
    let mut p = DatalogProgram::new();
    let edge = p.relation("edge", 2);
    let path = p.relation("path", 2);
    let v = Term::Var;
    p.rule(
        "path-base",
        Atom::new(path, vec![v(0), v(1)]),
        vec![pos(edge, vec![v(0), v(1)])],
    );
    p.rule(
        "path-step",
        Atom::new(path, vec![v(0), v(2)]),
        vec![pos(path, vec![v(0), v(1)]), pos(edge, vec![v(1), v(2)])],
    );
    let mut db = Database::new(&p);
    db.insert(edge, vec![1, 2], a.clone());
    db.insert(edge, vec![2, 3], b.clone());
    db.insert(edge, vec![1, 3], ctx.tt());
    let stats = evaluate(&p, &mut db, &ctx, &EvalOptions::default()).unwrap();
    // 1→3 directly (true) or via 2 (A ∧ B): merged constraint is true.
    assert_eq!(db.constraint_of(path, &[1, 3]), Some(&ctx.tt()));
    // 1→2 only under A, 2→3 only under B.
    assert_eq!(db.constraint_of(path, &[1, 2]), Some(&a));
    assert_eq!(db.constraint_of(path, &[2, 3]), Some(&b));
    assert!(stats.rounds >= 2);
}

/// A body whose joined constraint is unsatisfiable must not materialize
/// the head tuple at all (not even with a `false` constraint).
#[test]
fn contradictory_join_does_not_materialize() {
    let (_table, ctx) = two_feature_ctx();
    let a = ctx.lit(FeatureId(0), true);
    let mut p = DatalogProgram::new();
    let l = p.relation("l", 1);
    let r = p.relation("r", 1);
    let out = p.relation("out", 1);
    let v = Term::Var;
    p.rule(
        "join",
        Atom::new(out, vec![v(0)]),
        vec![pos(l, vec![v(0)]), pos(r, vec![v(0)])],
    );
    let mut db = Database::new(&p);
    db.insert(l, vec![7], a.clone());
    db.insert(r, vec![7], a.not());
    evaluate(&p, &mut db, &ctx, &EvalOptions::default()).unwrap();
    assert_eq!(db.len(out), 0, "A ∧ ¬A join must derive nothing");
    // Inserting an explicitly false tuple is also a no-op.
    assert!(!db.insert(out, vec![9], ctx.ff()));
    assert_eq!(db.len(out), 0);
}

/// Re-deriving a tuple under an already-covered constraint is subsumed:
/// the stored BDD is unchanged and the fixpoint terminates.
#[test]
fn repeated_derivation_is_subsumed() {
    let (_table, ctx) = two_feature_ctx();
    let a = ctx.lit(FeatureId(0), true);
    let mut p = DatalogProgram::new();
    let e = p.relation("e", 2);
    let t = p.relation("t", 2);
    let v = Term::Var;
    p.rule(
        "base",
        Atom::new(t, vec![v(0), v(1)]),
        vec![pos(e, vec![v(0), v(1)])],
    );
    p.rule(
        "step",
        Atom::new(t, vec![v(0), v(2)]),
        vec![pos(t, vec![v(0), v(1)]), pos(e, vec![v(1), v(2)])],
    );
    let mut db = Database::new(&p);
    // A cycle: 1→2→1, both under A. t(1,1) keeps re-deriving as A∧A∧…
    db.insert(e, vec![1, 2], a.clone());
    db.insert(e, vec![2, 1], a.clone());
    let stats = evaluate(&p, &mut db, &ctx, &EvalOptions::default()).unwrap();
    assert_eq!(db.constraint_of(t, &[1, 1]), Some(&a));
    assert_eq!(db.len(t), 4); // (1,1) (1,2) (2,1) (2,2)
    assert!(
        stats.derivations > db.len(t) as u64,
        "the cycle re-derives tuples; subsumption must retire them"
    );
}

/// Lifted stratified negation: `!R(t)` contributes ¬c for a stored
/// constraint c, and `true` when the tuple is absent.
#[test]
fn negation_is_lifted() {
    let (_table, ctx) = two_feature_ctx();
    let a = ctx.lit(FeatureId(0), true);
    let mut p = DatalogProgram::new();
    let node = p.relation("node", 1);
    let bad = p.relation("bad", 1);
    let good = p.relation("good", 1);
    let v = Term::Var;
    p.rule(
        "good",
        Atom::new(good, vec![v(0)]),
        vec![pos(node, vec![v(0)]), neg(bad, vec![v(0)])],
    );
    let mut db = Database::new(&p);
    db.insert(node, vec![1], ctx.tt());
    db.insert(node, vec![2], ctx.tt());
    db.insert(bad, vec![1], a.clone());
    evaluate(&p, &mut db, &ctx, &EvalOptions::default()).unwrap();
    assert_eq!(db.constraint_of(good, &[1]), Some(&a.not()));
    assert_eq!(db.constraint_of(good, &[2]), Some(&ctx.tt()));
}

/// Negation through a cycle is rejected as unstratifiable.
#[test]
fn negative_cycle_is_unstratifiable() {
    let (_table, ctx) = two_feature_ctx();
    let mut p = DatalogProgram::new();
    let n = p.relation("n", 1);
    let odd = p.relation("odd", 1);
    let even = p.relation("even", 1);
    let v = Term::Var;
    p.rule(
        "odd",
        Atom::new(odd, vec![v(0)]),
        vec![pos(n, vec![v(0)]), neg(even, vec![v(0)])],
    );
    p.rule(
        "even",
        Atom::new(even, vec![v(0)]),
        vec![pos(n, vec![v(0)]), neg(odd, vec![v(0)])],
    );
    let mut db = Database::new(&p);
    let err = evaluate(&p, &mut db, &ctx, &EvalOptions::default()).unwrap_err();
    assert!(matches!(err, DatalogError::Unstratifiable { .. }), "{err}");
}

/// Structural validation surfaces as errors, not panics.
#[test]
fn validation_errors() {
    let (_table, ctx) = two_feature_ctx();
    let v = Term::Var;

    // Arity mismatch.
    let mut p = DatalogProgram::new();
    let e = p.relation("e", 2);
    p.rule(
        "bad",
        Atom::new(e, vec![v(0)]),
        vec![pos(e, vec![v(0), v(1)])],
    );
    let mut db = Database::new(&p);
    assert!(matches!(
        evaluate(&p, &mut db, &ctx, &EvalOptions::default()),
        Err(DatalogError::ArityMismatch { .. })
    ));

    // Unbound head variable.
    let mut p = DatalogProgram::new();
    let e = p.relation("e", 2);
    let o = p.relation("o", 2);
    p.rule(
        "bad",
        Atom::new(o, vec![v(0), v(9)]),
        vec![pos(e, vec![v(0), v(1)])],
    );
    let mut db = Database::new(&p);
    assert!(matches!(
        evaluate(&p, &mut db, &ctx, &EvalOptions::default()),
        Err(DatalogError::UnboundVariable { .. })
    ));

    // A rule with no positive literal.
    let mut p = DatalogProgram::new();
    let e = p.relation("e", 1);
    let o = p.relation("o", 1);
    p.rule(
        "bad",
        Atom::new(o, vec![Term::Const(1)]),
        vec![neg(e, vec![Term::Const(1)])],
    );
    let mut db = Database::new(&p);
    assert!(matches!(
        evaluate(&p, &mut db, &ctx, &EvalOptions::default()),
        Err(DatalogError::NoPositiveLiteral { .. })
    ));
}

/// A program with declared relations but no rules (every stratum empty)
/// evaluates to a no-op instead of erroring.
#[test]
fn empty_strata_are_a_noop() {
    let (_table, ctx) = two_feature_ctx();
    let mut p = DatalogProgram::new();
    let e = p.relation("e", 2);
    let mut db = Database::new(&p);
    db.insert(e, vec![1, 2], ctx.tt());
    let stats = evaluate(&p, &mut db, &ctx, &EvalOptions::default()).unwrap();
    assert_eq!(stats.rounds, 0);
    assert_eq!(db.len(e), 1);
}

/// Exhausting the BDD manager's budget mid-evaluation surfaces as a
/// structured error, not a panic.
#[test]
fn budget_exhaustion_is_a_structured_error() {
    let ex = fig1();
    let icfg = ProgramIcfg::new(&ex.program);
    let ctx = BddConstraintContext::new(&ex.table);
    ctx.arm_budget(None, Some(1));
    let err = solve_reaching_defs(&icfg, &ctx, None, &EvalOptions::default());
    ctx.disarm_budget();
    match err {
        Err(DatalogError::BudgetExceeded { .. }) => {}
        Ok(_) => panic!("expected BudgetExceeded, got a completed solve"),
        Err(e) => panic!("expected BudgetExceeded, got {e}"),
    }
}

// ---------------------------------------------------------------------
// Equivalence against the IDE-lifted solver.
// ---------------------------------------------------------------------

/// Asserts that the Datalog solve of reaching definitions produces the
/// exact per-fact constraints of the IDE lifting, both directions, plus
/// matching reachability constraints.
fn assert_matches_ide(
    icfg: &ProgramIcfg<'_>,
    ctx: &BddConstraintContext,
    model: Option<&FeatureExpr>,
) {
    let analysis = ReachingDefs::new();
    let mode = if model.is_some() {
        ModelMode::OnEdges
    } else {
        ModelMode::Ignore
    };
    let ide = LiftedSolution::solve(&analysis, icfg, ctx, model, mode);
    let dl = solve_reaching_defs(icfg, ctx, model, &EvalOptions::default()).unwrap();
    for m in icfg.methods() {
        for s in icfg.stmts_of(m) {
            let want: FastMap<DefFact, _> = ide.results_at(s);
            let got = dl.reaching_at(s);
            for (fact, c) in &want {
                let dc = dl.reaching_constraint(s, fact);
                assert_eq!(
                    dc,
                    Some(c),
                    "at {s} fact {fact:?}: ide={} datalog={:?}",
                    c.to_cube_string(),
                    dc.map(|x| x.to_cube_string()),
                );
            }
            for (fact, c) in &got {
                assert_eq!(
                    want.get(fact),
                    Some(c),
                    "at {s} fact {fact:?} derived only by datalog ({})",
                    c.to_cube_string()
                );
            }
            // Reachability: the Zero-fact projection.
            let ide_reach = ide.reachability_of(s);
            match dl.reachability_of(s) {
                Some(c) => assert_eq!(c, &ide_reach, "reachability at {s}"),
                None => assert!(ide_reach.is_false(), "reachability at {s} missing"),
            }
        }
    }
}

#[test]
fn fig1_matches_ide() {
    let ex = fig1();
    let icfg = ProgramIcfg::new(&ex.program);
    let ctx = BddConstraintContext::new(&ex.table);
    assert_matches_ide(&icfg, &ctx, None);
}

#[test]
fn fig1_with_model_matches_ide() {
    let ex = fig1();
    let icfg = ProgramIcfg::new(&ex.program);
    let ctx = BddConstraintContext::new(&ex.table);
    let mut table = ex.table.clone();
    let model = FeatureExpr::parse("(F && G) || (!F && !G)", &mut table).unwrap();
    assert_matches_ide(&icfg, &ctx, Some(&model));
}

#[test]
fn shapes_matches_ide() {
    let ex = shapes();
    let icfg = ProgramIcfg::new(&ex.program);
    let ctx = BddConstraintContext::new(&ex.table);
    assert_matches_ide(&icfg, &ctx, None);
}

#[test]
fn random_programs_match_ide() {
    for seed in [1u64, 7, 13, 21, 34, 55] {
        let spl = spllift_benchgen::random_spl(seed, 4, 5);
        let icfg = ProgramIcfg::new(&spl.program);
        let ctx = BddConstraintContext::new(&spl.table);
        assert_matches_ide(&icfg, &ctx, None);
        if spl.features.len() >= 2 {
            let model =
                FeatureExpr::var(spl.features[0]).implies(FeatureExpr::var(spl.features[1]));
            assert_matches_ide(&icfg, &ctx, Some(&model));
        }
    }
}

/// Method reachability agrees with the IDE solution's start-point
/// reachability constraints.
#[test]
fn reachable_methods_match_ide_start_points() {
    let ex = fig1();
    let icfg = ProgramIcfg::new(&ex.program);
    let ctx = BddConstraintContext::new(&ex.table);
    let analysis = ReachingDefs::new();
    let ide = LiftedSolution::solve(&analysis, &icfg, &ctx, None, ModelMode::Ignore);
    let dl = solve_reaching_defs(&icfg, &ctx, None, &EvalOptions::default()).unwrap();
    let reached: FastMap<_, _> = dl.reachable_methods().into_iter().collect();
    for m in icfg.methods() {
        let ide_c = ide.reachability_of(icfg.start_point_of(m));
        match reached.get(&m) {
            Some(c) => assert_eq!(*c, &ide_c, "method {m:?}"),
            None => assert!(ide_c.is_false(), "method {m:?} missing from MReach"),
        }
    }
}

// ---------------------------------------------------------------------
// Determinism and the dump format.
// ---------------------------------------------------------------------

fn dump_of(jobs: usize) -> String {
    let ex = fig1();
    let icfg = ProgramIcfg::new(&ex.program);
    let ctx = BddConstraintContext::new(&ex.table);
    let sol = solve_reaching_defs(&icfg, &ctx, None, &EvalOptions { jobs }).unwrap();
    DumpDoc::from_solution(&sol, &ctx, &ex.table).render()
}

#[test]
fn dump_bytes_are_jobs_invariant() {
    let one = dump_of(1);
    assert_eq!(one, dump_of(2), "--jobs 2 changed the output bytes");
    assert_eq!(one, dump_of(5), "--jobs 5 changed the output bytes");
    assert!(one.starts_with(DUMP_HEADER));
}

#[test]
fn dump_round_trips() {
    let ex = fig1();
    let icfg = ProgramIcfg::new(&ex.program);
    let ctx = BddConstraintContext::new(&ex.table);
    let sol = solve_reaching_defs(&icfg, &ctx, None, &EvalOptions::default()).unwrap();
    let doc = DumpDoc::from_solution(&sol, &ctx, &ex.table);
    let text = doc.render();
    let parsed = parse_dump(&text).expect("rendered dump parses");
    assert_eq!(parsed, doc);
    assert_eq!(
        parsed.render(),
        text,
        "reserialization must be byte-identical"
    );
}

#[test]
fn dump_parse_errors_carry_line_numbers() {
    assert!(parse_dump("").is_err());
    let err = parse_dump("bogus\n").unwrap_err();
    assert_eq!(err.line, 1);
    let err = parse_dump(&format!("{DUMP_HEADER}\nnope\n")).unwrap_err();
    assert_eq!(err.line, 2);
    // Tuple before any relation declaration.
    let err = parse_dump(&format!("{DUMP_HEADER}\nfeatures A\ne(1, 2)\n")).unwrap_err();
    assert_eq!(err.line, 3);
    // Arity mismatch.
    let err = parse_dump(&format!("{DUMP_HEADER}\nfeatures A\nrelation e/2\ne(1)\n")).unwrap_err();
    assert_eq!(err.line, 4);
    // Constraint over an undeclared feature.
    let err = parse_dump(&format!(
        "{DUMP_HEADER}\nfeatures A\nrelation e/1\ne(1) @ Z\n"
    ))
    .unwrap_err();
    assert_eq!(err.line, 4);
    // Bad cell.
    let err = parse_dump(&format!("{DUMP_HEADER}\nfeatures A\nrelation e/1\ne(x)\n")).unwrap_err();
    assert_eq!(err.line, 4);
}
