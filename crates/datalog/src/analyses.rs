//! The two declarative analyses: lifted reaching definitions and
//! call-graph / statement reachability.
//!
//! Both are Datalog transcriptions of the IFDS *tabulation* the IDE
//! solver runs — path edges `PE(d1, s, d2)` ("fact `d2` holds at `s`
//! when the enclosing method was entered with fact `d1`"), summary
//! edges `SE(c, d, r, d')` over call sites, entry values `VE(m, d1)`
//! and final values `Val(s, d2)`. Transcribing the tabulation (rather
//! than naive exploded-supergraph reachability) matters: reachability
//! over the exploded graph would follow *unrealizable* call/return
//! paths and weaken the computed constraints. With the tabulation, the
//! per-fact constraints equal the IDE lifting's exactly (DESIGN.md §13
//! gives the argument), which is what the bit-for-bit cross-check in
//! the fuzz harness relies on.
//!
//! The extensional database mirrors `spllift_core::LiftedProblem`'s
//! Figure-4 edge lifting: for every statement with annotation `a`, the
//! original flow applies under `en = ⟦a⟧ (∧ model)` and the identity
//! flow under `dis = ⟦¬a⟧ (∧ model)` along the disabled-edge
//! successors of [`spllift_core::LiftedIcfg`].

use crate::engine::{
    evaluate, neg, pos, Atom, Database, DatalogError, DatalogProgram, EvalOptions, EvalStats,
    RelId, Term,
};
use spllift_analyses::{arg_bindings, result_local, returned_local, DefFact};
use spllift_bdd::Bdd;
use spllift_core::LiftedIcfg;
use spllift_features::{BddConstraintContext, ConstraintContext, FeatureExpr};
use spllift_hash::FastMap;
use spllift_ifds::Icfg;
use spllift_ir::{LocalId, MethodId, ProgramIcfg, StmtKind, StmtRef};

/// Encodes a statement reference into one tuple column.
pub fn encode_stmt(s: StmtRef) -> u64 {
    ((s.method.0 as u64) << 32) | s.index as u64
}

/// Inverse of [`encode_stmt`].
pub fn decode_stmt(x: u64) -> StmtRef {
    StmtRef {
        method: MethodId((x >> 32) as u32),
        index: x as u32,
    }
}

/// Fact tag column: the tautology fact.
const ZERO: u64 = 0;
/// Fact tag column: a definition fact.
const DEF: u64 = 1;

/// Encodes a [`DefFact`] into its three tuple columns
/// `(tag, site, var)`.
pub fn encode_fact(fact: &DefFact) -> [u64; 3] {
    match fact {
        DefFact::Zero => [ZERO, 0, 0],
        DefFact::Def { site, var } => [DEF, encode_stmt(*site), var.0 as u64],
    }
}

/// Inverse of [`encode_fact`].
pub fn decode_fact(cols: &[u64]) -> DefFact {
    if cols[0] == ZERO {
        DefFact::Zero
    } else {
        DefFact::Def {
            site: decode_stmt(cols[1]),
            var: LocalId(cols[2] as u32),
        }
    }
}

/// Handles to every relation of the combined rule program.
#[allow(missing_docs)] // field names are the relation names below
pub struct Relations {
    // Extensional (stratum 0), extracted from the annotated ICFG:
    /// `act(s, s2)`: the original flow function applies on `s → s2`,
    /// under the statement's enabled constraint.
    pub act: RelId,
    /// `idn(s, s2)`: the identity flow applies on `s → s2`, under the
    /// statement's disabled constraint (Figure 4's dashed edges).
    pub idn: RelId,
    /// `defs(s, v)`: `s` defines local `v` (kills and regenerates it).
    /// Used positively to gen and *negatively* to kill-check.
    pub defs: RelId,
    /// `callstmt(c, m)`: `c` calls body-carrying method `m`, under the
    /// call's enabled constraint.
    pub callstmt: RelId,
    /// `bind(c, m, a, f)`: actual `a` binds to formal `f` for the call
    /// `c` targeting `m`.
    pub bind: RelId,
    /// `startpt(m, sp)`: `sp` is the unique start point of `m`.
    pub startpt: RelId,
    /// `exitstmt(m, e)`: `e` is an exit (return) statement of `m`.
    pub exitstmt: RelId,
    /// `exiten(e)`: the exit `e` is enabled (its `en` constraint).
    pub exiten: RelId,
    /// `retbind(e, v)`: exit `e` returns local `v`.
    pub retbind: RelId,
    /// `resl(c, r)`: call `c` stores its result into local `r`.
    pub resl: RelId,
    /// `retsite(c, r)`: `r` is a return site of call `c`.
    pub retsite: RelId,
    /// `inm(s, m)`: statement `s` belongs to method `m`.
    pub inm: RelId,
    // Intensional — reaching definitions (the IFDS tabulation):
    /// `PE(d1, s, d2)`: path edge (3 fact columns each side).
    pub pe: RelId,
    /// `SE(c, d2, r, d5)`: summary edge over call `c`.
    pub se: RelId,
    /// `VE(m, d1)`: phase-2 entry value of method `m` for entry fact `d1`.
    pub ve: RelId,
    /// `Val(s, d2)`: final lifted result — fact `d2` holds at `s`.
    pub val: RelId,
    // Intensional — reachability (Zero-fact projection):
    /// `ZPE(s)`: `s` reachable from its method entry.
    pub zpe: RelId,
    /// `ZSE(c, r)`: the callee of `c` can return to `r`.
    pub zse: RelId,
    /// `ZVE(m)`: method `m` is entered.
    pub zve: RelId,
    /// `ZVal(s)`: statement reachability — equals the IDE solution's
    /// `reachability_of`.
    pub zval: RelId,
    /// `MReach(m)`: method `m` is reachable (its start point executes).
    pub mreach: RelId,
}

impl Relations {
    /// Per-relation column kinds, indexed by [`RelId`] order — drives
    /// the human-readable dump rendering (`m:i` for statement columns).
    pub fn column_kinds(&self, program: &DatalogProgram) -> Vec<Vec<crate::dump::ColKind>> {
        use crate::dump::ColKind::{Raw, Stmt};
        let mut kinds: Vec<Vec<crate::dump::ColKind>> = (0..program.relation_count())
            .map(|r| vec![Raw; program.arity(RelId(r))])
            .collect();
        let fact = [Raw, Stmt, Raw];
        let mut set = |rel: RelId, cols: Vec<crate::dump::ColKind>| kinds[rel.0] = cols;
        set(self.act, vec![Stmt, Stmt]);
        set(self.idn, vec![Stmt, Stmt]);
        set(self.defs, vec![Stmt, Raw]);
        set(self.callstmt, vec![Stmt, Raw]);
        set(self.bind, vec![Stmt, Raw, Raw, Raw]);
        set(self.startpt, vec![Raw, Stmt]);
        set(self.exitstmt, vec![Raw, Stmt]);
        set(self.exiten, vec![Stmt]);
        set(self.retbind, vec![Stmt, Raw]);
        set(self.resl, vec![Stmt, Raw]);
        set(self.retsite, vec![Stmt, Stmt]);
        set(self.inm, vec![Stmt, Raw]);
        set(
            self.pe,
            fact.iter()
                .chain([Stmt].iter())
                .chain(fact.iter())
                .copied()
                .collect(),
        );
        set(
            self.se,
            [Stmt]
                .iter()
                .chain(fact.iter())
                .chain([Stmt].iter())
                .chain(fact.iter())
                .copied()
                .collect(),
        );
        set(self.ve, [Raw].iter().chain(fact.iter()).copied().collect());
        set(
            self.val,
            [Stmt].iter().chain(fact.iter()).copied().collect(),
        );
        set(self.zpe, vec![Stmt]);
        set(self.zse, vec![Stmt, Stmt]);
        set(self.zve, vec![Raw]);
        set(self.zval, vec![Stmt]);
        set(self.mreach, vec![Raw]);
        kinds
    }
}

/// Declares the relations and rules of the combined program.
fn build_program() -> (DatalogProgram, Relations) {
    let mut p = DatalogProgram::new();
    let rels = Relations {
        act: p.relation("act", 2),
        idn: p.relation("idn", 2),
        defs: p.relation("defs", 2),
        callstmt: p.relation("callstmt", 2),
        bind: p.relation("bind", 4),
        startpt: p.relation("startpt", 2),
        exitstmt: p.relation("exitstmt", 2),
        exiten: p.relation("exiten", 1),
        retbind: p.relation("retbind", 2),
        resl: p.relation("resl", 2),
        retsite: p.relation("retsite", 2),
        inm: p.relation("inm", 2),
        pe: p.relation("PE", 7),
        se: p.relation("SE", 8),
        ve: p.relation("VE", 4),
        val: p.relation("Val", 4),
        zpe: p.relation("ZPE", 1),
        zse: p.relation("ZSE", 2),
        zve: p.relation("ZVE", 1),
        zval: p.relation("ZVal", 1),
        mreach: p.relation("MReach", 1),
    };
    let v = Term::Var;
    let k = Term::Const;
    let h = |rel: RelId, terms: Vec<Term>| Atom::new(rel, terms);

    // -- Reaching definitions: Phase-1 tabulation ---------------------
    // Intra-procedural original flow on Def facts: pass unless the
    // statement redefines the tracked local (lifted stratified
    // negation over the `defs` EDB — the kill check).
    p.rule(
        "pe-pass-def",
        h(rels.pe, vec![v(0), v(1), v(2), v(6), k(DEF), v(4), v(5)]),
        vec![
            pos(rels.pe, vec![v(0), v(1), v(2), v(3), k(DEF), v(4), v(5)]),
            pos(rels.act, vec![v(3), v(6)]),
            neg(rels.defs, vec![v(3), v(5)]),
        ],
    );
    // Original flow preserves the tautology fact.
    p.rule(
        "pe-pass-zero",
        h(rels.pe, vec![v(0), v(1), v(2), v(4), k(ZERO), k(0), k(0)]),
        vec![
            pos(rels.pe, vec![v(0), v(1), v(2), v(3), k(ZERO), k(0), k(0)]),
            pos(rels.act, vec![v(3), v(4)]),
        ],
    );
    // A defining statement generates its Def fact from Zero. The site
    // column of the new fact is the defining statement itself (v3).
    p.rule(
        "pe-gen",
        h(rels.pe, vec![v(0), v(1), v(2), v(4), k(DEF), v(3), v(5)]),
        vec![
            pos(rels.pe, vec![v(0), v(1), v(2), v(3), k(ZERO), k(0), k(0)]),
            pos(rels.act, vec![v(3), v(4)]),
            pos(rels.defs, vec![v(3), v(5)]),
        ],
    );
    // Identity flow along disabled edges passes every fact.
    p.rule(
        "pe-identity",
        h(rels.pe, vec![v(0), v(1), v(2), v(7), v(4), v(5), v(6)]),
        vec![
            pos(rels.pe, vec![v(0), v(1), v(2), v(3), v(4), v(5), v(6)]),
            pos(rels.idn, vec![v(3), v(7)]),
        ],
    );
    // Calls seed the callee's identity path edges (any caller context).
    p.rule(
        "pe-call-zero",
        h(
            rels.pe,
            vec![k(ZERO), k(0), k(0), v(5), k(ZERO), k(0), k(0)],
        ),
        vec![
            pos(rels.pe, vec![v(0), v(1), v(2), v(3), k(ZERO), k(0), k(0)]),
            pos(rels.callstmt, vec![v(3), v(4)]),
            pos(rels.startpt, vec![v(4), v(5)]),
        ],
    );
    p.rule(
        "pe-call-def",
        h(rels.pe, vec![k(DEF), v(4), v(7), v(8), k(DEF), v(4), v(7)]),
        vec![
            pos(rels.pe, vec![v(0), v(1), v(2), v(3), k(DEF), v(4), v(5)]),
            pos(rels.callstmt, vec![v(3), v(6)]),
            pos(rels.bind, vec![v(3), v(6), v(5), v(7)]),
            pos(rels.startpt, vec![v(6), v(8)]),
        ],
    );
    // Summary edges: what a completed callee does to the caller's fact.
    p.rule(
        "se-zero",
        h(
            rels.se,
            vec![v(0), k(ZERO), k(0), k(0), v(3), k(ZERO), k(0), k(0)],
        ),
        vec![
            pos(rels.callstmt, vec![v(0), v(1)]),
            pos(rels.exitstmt, vec![v(1), v(2)]),
            pos(
                rels.pe,
                vec![k(ZERO), k(0), k(0), v(2), k(ZERO), k(0), k(0)],
            ),
            pos(rels.exiten, vec![v(2)]),
            pos(rels.retsite, vec![v(0), v(3)]),
        ],
    );
    // A Def passed in (actual v2 → formal v3) that reaches the exit as
    // the returned local comes back renamed to the call's result.
    p.rule(
        "se-def",
        h(
            rels.se,
            vec![v(0), k(DEF), v(5), v(2), v(9), k(DEF), v(6), v(8)],
        ),
        vec![
            pos(rels.callstmt, vec![v(0), v(1)]),
            pos(rels.bind, vec![v(0), v(1), v(2), v(3)]),
            pos(rels.exitstmt, vec![v(1), v(4)]),
            pos(rels.pe, vec![k(DEF), v(5), v(3), v(4), k(DEF), v(6), v(7)]),
            pos(rels.retbind, vec![v(4), v(7)]),
            pos(rels.resl, vec![v(0), v(8)]),
            pos(rels.retsite, vec![v(0), v(9)]),
            pos(rels.exiten, vec![v(4)]),
        ],
    );
    // A definition created *inside* the callee (under the Zero entry
    // context) that is returned also surfaces at the caller.
    p.rule(
        "se-zero-def",
        h(
            rels.se,
            vec![v(0), k(ZERO), k(0), k(0), v(6), k(DEF), v(3), v(5)],
        ),
        vec![
            pos(rels.callstmt, vec![v(0), v(1)]),
            pos(rels.exitstmt, vec![v(1), v(2)]),
            pos(rels.pe, vec![k(ZERO), k(0), k(0), v(2), k(DEF), v(3), v(4)]),
            pos(rels.retbind, vec![v(2), v(4)]),
            pos(rels.resl, vec![v(0), v(5)]),
            pos(rels.retsite, vec![v(0), v(6)]),
            pos(rels.exiten, vec![v(2)]),
        ],
    );
    // Applying a summary continues the caller's path edge.
    p.rule(
        "pe-summary",
        h(rels.pe, vec![v(0), v(1), v(2), v(7), v(8), v(9), v(10)]),
        vec![
            pos(rels.pe, vec![v(0), v(1), v(2), v(3), v(4), v(5), v(6)]),
            pos(
                rels.se,
                vec![v(3), v(4), v(5), v(6), v(7), v(8), v(9), v(10)],
            ),
        ],
    );
    // -- Phase 2: entry values and final values -----------------------
    p.rule(
        "ve-zero",
        h(rels.ve, vec![v(1), k(ZERO), k(0), k(0)]),
        vec![
            pos(rels.val, vec![v(0), k(ZERO), k(0), k(0)]),
            pos(rels.callstmt, vec![v(0), v(1)]),
        ],
    );
    p.rule(
        "ve-def",
        h(rels.ve, vec![v(3), k(DEF), v(1), v(4)]),
        vec![
            pos(rels.val, vec![v(0), k(DEF), v(1), v(2)]),
            pos(rels.callstmt, vec![v(0), v(3)]),
            pos(rels.bind, vec![v(0), v(3), v(2), v(4)]),
        ],
    );
    p.rule(
        "val",
        h(rels.val, vec![v(4), v(5), v(6), v(7)]),
        vec![
            pos(rels.ve, vec![v(0), v(1), v(2), v(3)]),
            pos(rels.pe, vec![v(1), v(2), v(3), v(4), v(5), v(6), v(7)]),
            pos(rels.inm, vec![v(4), v(0)]),
        ],
    );

    // -- Reachability: the Zero-fact projection, shared EDB -----------
    p.rule(
        "zpe-act",
        h(rels.zpe, vec![v(1)]),
        vec![pos(rels.zpe, vec![v(0)]), pos(rels.act, vec![v(0), v(1)])],
    );
    p.rule(
        "zpe-idn",
        h(rels.zpe, vec![v(1)]),
        vec![pos(rels.zpe, vec![v(0)]), pos(rels.idn, vec![v(0), v(1)])],
    );
    p.rule(
        "zpe-call",
        h(rels.zpe, vec![v(2)]),
        vec![
            pos(rels.zpe, vec![v(0)]),
            pos(rels.callstmt, vec![v(0), v(1)]),
            pos(rels.startpt, vec![v(1), v(2)]),
        ],
    );
    p.rule(
        "zse",
        h(rels.zse, vec![v(0), v(3)]),
        vec![
            pos(rels.callstmt, vec![v(0), v(1)]),
            pos(rels.exitstmt, vec![v(1), v(2)]),
            pos(rels.zpe, vec![v(2)]),
            pos(rels.exiten, vec![v(2)]),
            pos(rels.retsite, vec![v(0), v(3)]),
        ],
    );
    p.rule(
        "zpe-summary",
        h(rels.zpe, vec![v(1)]),
        vec![pos(rels.zpe, vec![v(0)]), pos(rels.zse, vec![v(0), v(1)])],
    );
    p.rule(
        "zve",
        h(rels.zve, vec![v(1)]),
        vec![
            pos(rels.zval, vec![v(0)]),
            pos(rels.callstmt, vec![v(0), v(1)]),
        ],
    );
    p.rule(
        "zval",
        h(rels.zval, vec![v(1)]),
        vec![
            pos(rels.zve, vec![v(0)]),
            pos(rels.zpe, vec![v(1)]),
            pos(rels.inm, vec![v(1), v(0)]),
        ],
    );
    p.rule(
        "mreach",
        h(rels.mreach, vec![v(0)]),
        vec![
            pos(rels.zval, vec![v(1)]),
            pos(rels.startpt, vec![v(0), v(1)]),
        ],
    );
    (p, rels)
}

/// Extracts the EDB from the annotated ICFG, exactly mirroring the
/// Figure-4 lifting in `spllift_core::LiftedProblem` (ModelMode
/// `OnEdges`: the feature model is conjoined into every edge
/// constraint), and seeds the tabulation at the entry points.
fn seed_database(
    icfg: &ProgramIcfg<'_>,
    ctx: &BddConstraintContext,
    model: Option<&FeatureExpr>,
    program: &DatalogProgram,
    rels: &Relations,
) -> Database {
    let mut db = Database::new(program);
    let ir = icfg.program();
    let lifted = LiftedIcfg::new(icfg);
    let tt = ctx.tt();
    let model_c = model.map(|m| ctx.of_expr(m)).unwrap_or_else(|| ctx.tt());
    for m in icfg.methods() {
        let me = m.0 as u64;
        let sp = encode_stmt(icfg.start_point_of(m));
        db.insert(rels.startpt, vec![me, sp], tt.clone());
        for s in icfg.stmts_of(m) {
            let es = encode_stmt(s);
            db.insert(rels.inm, vec![es, me], tt.clone());
            let a = icfg.annotation_of(s);
            let (en, dis) = if *a == FeatureExpr::True {
                (ctx.tt(), ctx.ff())
            } else {
                (ctx.of_expr(a), ctx.of_expr(&a.clone().not()))
            };
            let en = en.and(&model_c);
            let dis = dis.and(&model_c);
            if icfg.is_call(s) {
                // Call-to-return edges run the original flow (which
                // kills/generates the result local) when enabled and
                // the identity when disabled.
                for r in icfg.return_sites_of(s) {
                    let er = encode_stmt(r);
                    db.insert(rels.act, vec![es, er], en.clone());
                    db.insert(rels.idn, vec![es, er], dis.clone());
                    db.insert(rels.retsite, vec![es, er], tt.clone());
                }
                for callee in icfg.callees_of(s) {
                    db.insert(rels.callstmt, vec![es, callee.0 as u64], en.clone());
                    for (actual, formal) in arg_bindings(ir, s, callee) {
                        db.insert(
                            rels.bind,
                            vec![es, callee.0 as u64, actual.0 as u64, formal.0 as u64],
                            tt.clone(),
                        );
                    }
                }
                if let Some(r) = result_local(ir, s) {
                    db.insert(rels.resl, vec![es, r.0 as u64], tt.clone());
                    db.insert(rels.defs, vec![es, r.0 as u64], tt.clone());
                }
                continue;
            }
            let kind = &ir.stmt(s).kind;
            match kind {
                StmtKind::Return { .. } => {
                    // An enabled exit leaves via the return edge; only
                    // the disabled fall-through is a normal edge.
                    for succ in lifted.successors_of(s) {
                        db.insert(rels.idn, vec![es, encode_stmt(succ)], dis.clone());
                    }
                    db.insert(rels.exitstmt, vec![me, es], tt.clone());
                    db.insert(rels.exiten, vec![es], en.clone());
                    if let Some(r) = returned_local(ir, s) {
                        db.insert(rels.retbind, vec![es, r.0 as u64], tt.clone());
                    }
                }
                StmtKind::Goto { .. } => {
                    let target = icfg.branch_target_of(s).expect("goto has a target");
                    let ft = icfg.fall_through_of(s);
                    for succ in lifted.successors_of(s) {
                        if succ == target {
                            db.insert(rels.act, vec![es, encode_stmt(succ)], en.clone());
                        }
                        if Some(succ) == ft {
                            db.insert(rels.idn, vec![es, encode_stmt(succ)], dis.clone());
                        }
                    }
                }
                StmtKind::If { .. } => {
                    let ft = icfg.fall_through_of(s);
                    for succ in lifted.successors_of(s) {
                        db.insert(rels.act, vec![es, encode_stmt(succ)], en.clone());
                        if Some(succ) == ft {
                            db.insert(rels.idn, vec![es, encode_stmt(succ)], dis.clone());
                        }
                    }
                }
                _ => {
                    for succ in lifted.successors_of(s) {
                        let er = encode_stmt(succ);
                        db.insert(rels.act, vec![es, er], en.clone());
                        db.insert(rels.idn, vec![es, er], dis.clone());
                    }
                    if let Some(d) = kind.def() {
                        db.insert(rels.defs, vec![es, d.0 as u64], tt.clone());
                    }
                }
            }
        }
    }
    // Tabulation seeds: the identity path edge at every entry point
    // (Phase 1) and the feature model as the entry value (Phase 2).
    for m0 in icfg.entry_points() {
        let sp = encode_stmt(icfg.start_point_of(m0));
        db.insert(rels.pe, vec![ZERO, 0, 0, sp, ZERO, 0, 0], tt.clone());
        db.insert(rels.ve, vec![m0.0 as u64, ZERO, 0, 0], model_c.clone());
        db.insert(rels.zpe, vec![sp], tt.clone());
        db.insert(rels.zve, vec![m0.0 as u64], model_c.clone());
    }
    db
}

/// A completed Datalog solve: the program, its relation handles, the
/// fixpoint database, and evaluation counters.
pub struct DatalogSolution {
    program: DatalogProgram,
    rels: Relations,
    db: Database,
    stats: EvalStats,
}

/// Runs the combined reaching-definitions + reachability program on
/// `icfg` with the feature `model` conjoined on edges (the IDE
/// lifting's `ModelMode::OnEdges`), sharded over `opts.jobs` workers.
pub fn solve_reaching_defs(
    icfg: &ProgramIcfg<'_>,
    ctx: &BddConstraintContext,
    model: Option<&FeatureExpr>,
    opts: &EvalOptions,
) -> Result<DatalogSolution, DatalogError> {
    let (program, rels) = build_program();
    let mut db = seed_database(icfg, ctx, model, &program, &rels);
    let stats = evaluate(&program, &mut db, ctx, opts)?;
    Ok(DatalogSolution {
        program,
        rels,
        db,
        stats,
    })
}

impl DatalogSolution {
    /// The rule program.
    pub fn program(&self) -> &DatalogProgram {
        &self.program
    }

    /// Relation handles into [`DatalogSolution::database`].
    pub fn relations(&self) -> &Relations {
        &self.rels
    }

    /// The fixpoint database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Evaluation counters.
    pub fn stats(&self) -> &EvalStats {
        &self.stats
    }

    /// All reaching-definition results: `(stmt, fact, constraint)` in
    /// derivation order.
    pub fn all_reaching(&self) -> impl Iterator<Item = (StmtRef, DefFact, &Bdd)> {
        self.db
            .tuples(self.rels.val)
            .map(|(cols, c)| (decode_stmt(cols[0]), decode_fact(&cols[1..4]), c))
    }

    /// Reaching-definition facts at `s`, sorted by fact.
    pub fn reaching_at(&self, s: StmtRef) -> Vec<(DefFact, Bdd)> {
        let es = encode_stmt(s);
        let mut out: Vec<(DefFact, Bdd)> = self
            .db
            .tuples(self.rels.val)
            .filter(|(cols, _)| cols[0] == es)
            .map(|(cols, c)| (decode_fact(&cols[1..4]), c.clone()))
            .collect();
        out.sort_by(|(a, _), (b, _)| a.cmp(b));
        out
    }

    /// Reaching-definition results grouped by statement (one database
    /// pass; for per-statement comparisons over whole programs).
    pub fn reaching_by_stmt(&self) -> FastMap<StmtRef, Vec<(DefFact, Bdd)>> {
        let mut map: FastMap<StmtRef, Vec<(DefFact, Bdd)>> = FastMap::default();
        for (s, fact, c) in self.all_reaching() {
            map.entry(s).or_default().push((fact, c.clone()));
        }
        for facts in map.values_mut() {
            facts.sort_by(|(a, _), (b, _)| a.cmp(b));
        }
        map
    }

    /// The constraint under which `fact` holds at `s`, if derivable.
    pub fn reaching_constraint(&self, s: StmtRef, fact: &DefFact) -> Option<&Bdd> {
        let f = encode_fact(fact);
        let tuple = vec![encode_stmt(s), f[0], f[1], f[2]];
        self.db.constraint_of(self.rels.val, &tuple)
    }

    /// The constraint under which `s` is reachable, if at all — the
    /// declarative counterpart of the IDE solution's `reachability_of`.
    pub fn reachability_of(&self, s: StmtRef) -> Option<&Bdd> {
        self.db.constraint_of(self.rels.zval, &[encode_stmt(s)])
    }

    /// Reachable methods with their constraints, sorted by method id.
    pub fn reachable_methods(&self) -> Vec<(MethodId, &Bdd)> {
        let mut out: Vec<(MethodId, &Bdd)> = self
            .db
            .tuples(self.rels.mreach)
            .map(|(cols, c)| (MethodId(cols[0] as u32), c))
            .collect();
        out.sort_by_key(|(m, _)| *m);
        out
    }
}
