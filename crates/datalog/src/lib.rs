//! A lifted Datalog engine: the reproduction's second, independent
//! analysis backend.
//!
//! SPLLIFT's core move — pair every dataflow fact with a feature
//! constraint so one lifted run replaces exponentially many
//! per-configuration runs — is not specific to IFDS/IDE.
//! Shahin–Chechik–Salay (*Lifting Datalog-Based Analyses to Software
//! Product Lines*, PAPERS.md) lift semi-naive Datalog evaluation with
//! exactly the same annotated-fact shape. This crate implements that
//! engine in-tree and uses it to express two analyses declaratively
//! against the `spllift-ir` program representation:
//!
//! * **lifted reaching definitions** ([`solve_reaching_defs`]) — a
//!   Datalog transcription of the IFDS *tabulation* (path edges,
//!   summary edges, entry values), whose per-fact [`spllift_bdd::Bdd`]
//!   constraints are *semantically identical* to the IDE lifting's, so
//!   the two backends cross-check bit-for-bit via
//!   [`spllift_bdd::Bdd::semantic_digest`],
//! * **call-graph / statement reachability** — the Zero-fact projection
//!   of the same tabulation: under which configurations is a statement
//!   reachable, and which methods are live.
//!
//! See `DESIGN.md` §13 for the engine architecture, the lifted
//! semi-naive evaluation rules, and the soundness argument relating the
//! Datalog fixpoint to the IDE solver's phased computation.

#![warn(missing_docs)]
mod analyses;
mod dump;
mod engine;

pub use analyses::{
    decode_fact, decode_stmt, encode_fact, encode_stmt, solve_reaching_defs, DatalogSolution,
    Relations,
};
pub use dump::{
    parse_dump, ColKind, DumpDoc, DumpParseError, DumpRelation, DumpValue, DUMP_HEADER,
};
pub use engine::{
    evaluate, neg, pos, Atom, Database, DatalogError, DatalogProgram, EvalOptions, EvalStats,
    Literal, RelId, Rule, Term, Tuple,
};

#[cfg(test)]
mod tests;
