//! The lifted semi-naive Datalog engine.
//!
//! Following Shahin–Chechik–Salay (*Lifting Datalog-Based Analyses to
//! Software Product Lines*), every tuple carries a feature constraint —
//! a [`Bdd`] over the product line's features — recording under which
//! configurations the tuple is derivable:
//!
//! * a rule body **joins** tuples by conjoining (AND-ing) their
//!   constraints; a body whose conjunction is unsatisfiable derives
//!   nothing (the tuple never materializes),
//! * **inserting** a derived tuple disjoins (OR-s) its constraint with
//!   the constraint already stored for that tuple; if the stored BDD is
//!   unchanged (the canonical hash-consed node is identical) the
//!   derivation was *subsumed* and does not re-enter the delta,
//! * a **negated** literal over a lower stratum contributes the
//!   *negation* of the stored constraint (or `true` if the tuple is
//!   absent) — the lifted counterpart of stratified negation.
//!
//! Evaluation is stratum-by-stratum semi-naive: round 0 of a stratum
//! evaluates every rule naively against the seeded database; each later
//! round rewrites one positive in-stratum body literal to the previous
//! round's delta (tuples whose constraint changed, carried with their
//! *full* updated constraint — sound because all constraint operators in
//! a stratum are monotone). Rule-evaluation tasks are sharded over
//! [`map_shards`] and their derivations merged **in task order**, so the
//! database's tuple insertion order — and hence every rendered output —
//! is byte-identical for every `jobs` value.
//!
//! The engine polls the BDD manager's node/op budget once per round
//! (the store itself only latches exhaustion, it never panics) and
//! surfaces exhaustion as [`DatalogError::BudgetExceeded`].

use spllift_bdd::Bdd;
use spllift_features::{map_shards, BddConstraintContext, ConstraintContext};
use spllift_hash::{FastMap, FastSet};
use std::fmt;

/// A ground tuple: one `u64` per column. Statement- and method-valued
/// columns use the encodings in [`crate::analyses`].
pub type Tuple = Vec<u64>;

/// Handle to a declared relation (index into the program's declarations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(pub usize);

/// One term of an atom: a rule variable (dense index) or a constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Term {
    /// A rule variable, identified by a dense per-rule index.
    Var(usize),
    /// A constant column value.
    Const(u64),
}

/// A relation applied to terms, e.g. `PE(d1, s, d2)`.
#[derive(Debug, Clone)]
pub struct Atom {
    /// The relation.
    pub relation: RelId,
    /// One term per column.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Builds an atom.
    pub fn new(relation: RelId, terms: Vec<Term>) -> Self {
        Atom { relation, terms }
    }
}

/// A possibly negated atom in a rule body.
#[derive(Debug, Clone)]
pub struct Literal {
    /// The atom.
    pub atom: Atom,
    /// `true` for `!R(..)` — lifted stratified negation.
    pub negated: bool,
}

/// A positive body literal.
pub fn pos(relation: RelId, terms: Vec<Term>) -> Literal {
    Literal {
        atom: Atom::new(relation, terms),
        negated: false,
    }
}

/// A negated body literal (must be stratified below its rule's head).
pub fn neg(relation: RelId, terms: Vec<Term>) -> Literal {
    Literal {
        atom: Atom::new(relation, terms),
        negated: true,
    }
}

/// One rule: `head :- body`.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Diagnostic name (shows up in errors).
    pub name: String,
    /// The derived atom.
    pub head: Atom,
    /// Body literals, joined left to right (negations evaluated last).
    pub body: Vec<Literal>,
}

struct RelationDecl {
    name: String,
    arity: usize,
}

/// A Datalog program: relation declarations plus rules.
///
/// Relations derived by no rule are extensional (EDB) and sit in
/// stratum 0; negation may only refer to strictly lower strata.
#[derive(Default)]
pub struct DatalogProgram {
    relations: Vec<RelationDecl>,
    rules: Vec<Rule>,
}

impl DatalogProgram {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a relation with `arity` columns.
    pub fn relation(&mut self, name: impl Into<String>, arity: usize) -> RelId {
        self.relations.push(RelationDecl {
            name: name.into(),
            arity,
        });
        RelId(self.relations.len() - 1)
    }

    /// Adds a rule. Structural problems (arity mismatches, unbound head
    /// or negated variables) are reported by [`evaluate`], not here.
    pub fn rule(&mut self, name: impl Into<String>, head: Atom, body: Vec<Literal>) {
        self.rules.push(Rule {
            name: name.into(),
            head,
            body,
        });
    }

    /// Number of declared relations.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// The declared name of `rel`.
    pub fn relation_name(&self, rel: RelId) -> &str {
        &self.relations[rel.0].name
    }

    /// The declared arity of `rel`.
    pub fn arity(&self, rel: RelId) -> usize {
        self.relations[rel.0].arity
    }

    /// The rules, in insertion order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Checks arities and rule safety (every head / negated-literal
    /// variable must be bound by a positive body literal; every rule
    /// needs at least one positive literal).
    fn validate(&self) -> Result<(), DatalogError> {
        let check_atom = |rule: &Rule, atom: &Atom| -> Result<(), DatalogError> {
            let expected = self.relations[atom.relation.0].arity;
            if atom.terms.len() != expected {
                return Err(DatalogError::ArityMismatch {
                    rule: rule.name.clone(),
                    relation: self.relations[atom.relation.0].name.clone(),
                    expected,
                    found: atom.terms.len(),
                });
            }
            Ok(())
        };
        for rule in &self.rules {
            check_atom(rule, &rule.head)?;
            let mut bound: FastSet<usize> = FastSet::default();
            let mut positives = 0usize;
            for lit in &rule.body {
                check_atom(rule, &lit.atom)?;
                if !lit.negated {
                    positives += 1;
                    for t in &lit.atom.terms {
                        if let Term::Var(v) = t {
                            bound.insert(*v);
                        }
                    }
                }
            }
            if positives == 0 {
                return Err(DatalogError::NoPositiveLiteral {
                    rule: rule.name.clone(),
                });
            }
            let unbound = |terms: &[Term]| {
                terms.iter().find_map(|t| match t {
                    Term::Var(v) if !bound.contains(v) => Some(*v),
                    _ => None,
                })
            };
            if let Some(v) = unbound(&rule.head.terms) {
                return Err(DatalogError::UnboundVariable {
                    rule: rule.name.clone(),
                    var: v,
                });
            }
            for lit in &rule.body {
                if lit.negated {
                    if let Some(v) = unbound(&lit.atom.terms) {
                        return Err(DatalogError::UnboundVariable {
                            rule: rule.name.clone(),
                            var: v,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Assigns each relation a stratum: positive dependencies stay in
    /// the same stratum, negated dependencies force a strictly higher
    /// one. A cycle through negation has no finite assignment.
    fn stratify(&self) -> Result<Vec<usize>, DatalogError> {
        let n = self.relations.len();
        let mut stratum = vec![0usize; n];
        loop {
            let mut changed = false;
            for rule in &self.rules {
                let h = rule.head.relation.0;
                for lit in &rule.body {
                    let b = stratum[lit.atom.relation.0];
                    let need = if lit.negated { b + 1 } else { b };
                    if stratum[h] < need {
                        if need > n {
                            return Err(DatalogError::Unstratifiable {
                                relation: self.relations[h].name.clone(),
                            });
                        }
                        stratum[h] = need;
                        changed = true;
                    }
                }
            }
            if !changed {
                return Ok(stratum);
            }
        }
    }
}

/// Structured evaluation failure. The engine never panics on bad
/// programs or exhausted budgets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatalogError {
    /// A relation depends on itself through negation.
    Unstratifiable {
        /// The relation on the offending cycle.
        relation: String,
    },
    /// An atom's term count disagrees with the relation declaration.
    ArityMismatch {
        /// Rule name.
        rule: String,
        /// Relation name.
        relation: String,
        /// Declared arity.
        expected: usize,
        /// Terms in the atom.
        found: usize,
    },
    /// A head or negated-literal variable is not bound by any positive
    /// body literal.
    UnboundVariable {
        /// Rule name.
        rule: String,
        /// The unbound variable index.
        var: usize,
    },
    /// A rule has no positive body literal (facts are seeded via
    /// [`Database::insert`], not written as rules).
    NoPositiveLiteral {
        /// Rule name.
        rule: String,
    },
    /// The BDD manager's armed node/op budget was exhausted.
    BudgetExceeded {
        /// Human-readable description of the exhausted resource.
        detail: String,
    },
}

impl fmt::Display for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatalogError::Unstratifiable { relation } => {
                write!(f, "relation {relation} depends on itself through negation")
            }
            DatalogError::ArityMismatch {
                rule,
                relation,
                expected,
                found,
            } => write!(
                f,
                "rule {rule}: relation {relation} has arity {expected}, atom has {found} terms"
            ),
            DatalogError::UnboundVariable { rule, var } => write!(
                f,
                "rule {rule}: variable v{var} is not bound by a positive body literal"
            ),
            DatalogError::NoPositiveLiteral { rule } => {
                write!(f, "rule {rule} has no positive body literal")
            }
            DatalogError::BudgetExceeded { detail } => {
                write!(f, "constraint budget exceeded: {detail}")
            }
        }
    }
}

impl std::error::Error for DatalogError {}

/// One relation's contents: tuples in insertion order, each paired with
/// its feature constraint.
#[derive(Default)]
struct RelationData {
    tuples: Vec<(Tuple, Bdd)>,
    index: FastMap<Tuple, usize>,
}

impl RelationData {
    /// ORs `c` into the stored constraint for `tuple`. Returns `true`
    /// iff the stored constraint changed (canonical-equality
    /// subsumption: re-deriving under an entailed constraint is a
    /// no-op). Tuples with an unsatisfiable constraint never
    /// materialize.
    fn insert(&mut self, tuple: Tuple, c: Bdd) -> bool {
        if c.is_false() {
            return false;
        }
        if let Some(&i) = self.index.get(&tuple) {
            let old = &self.tuples[i].1;
            let joined = old.or(&c);
            if joined == *old {
                return false;
            }
            self.tuples[i].1 = joined;
            true
        } else {
            self.index.insert(tuple.clone(), self.tuples.len());
            self.tuples.push((tuple, c));
            true
        }
    }
}

/// The fact store: one [`Tuple`]→[`Bdd`] map per declared relation,
/// with deterministic (insertion-order) iteration.
pub struct Database {
    relations: Vec<RelationData>,
}

impl Database {
    /// An empty database shaped for `program`'s relations.
    pub fn new(program: &DatalogProgram) -> Self {
        Database {
            relations: (0..program.relation_count())
                .map(|_| RelationData::default())
                .collect(),
        }
    }

    /// Seeds or derives a fact; ORs into an existing constraint with
    /// subsumption. Returns `true` iff the stored constraint changed.
    pub fn insert(&mut self, rel: RelId, tuple: Tuple, c: Bdd) -> bool {
        self.relations[rel.0].insert(tuple, c)
    }

    /// Number of tuples currently in `rel`.
    pub fn len(&self, rel: RelId) -> usize {
        self.relations[rel.0].tuples.len()
    }

    /// `true` iff `rel` holds no tuple.
    pub fn is_empty(&self, rel: RelId) -> bool {
        self.relations[rel.0].tuples.is_empty()
    }

    /// The tuples of `rel` with their constraints, in insertion order.
    pub fn tuples(&self, rel: RelId) -> impl Iterator<Item = (&[u64], &Bdd)> {
        self.relations[rel.0]
            .tuples
            .iter()
            .map(|(t, c)| (t.as_slice(), c))
    }

    /// The constraint stored for `tuple` in `rel`, if present.
    pub fn constraint_of(&self, rel: RelId, tuple: &[u64]) -> Option<&Bdd> {
        let r = &self.relations[rel.0];
        r.index.get(tuple).map(|&i| &r.tuples[i].1)
    }

    /// Total tuple count across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.iter().map(|r| r.tuples.len()).sum()
    }
}

/// Evaluation knobs.
#[derive(Debug, Clone)]
pub struct EvalOptions {
    /// Worker threads for rule-evaluation tasks (sharded over
    /// [`map_shards`]; output is byte-identical for every value).
    pub jobs: usize,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions { jobs: 1 }
    }
}

/// Counters of one evaluation.
#[derive(Debug, Clone, Default)]
pub struct EvalStats {
    /// Strata evaluated (including empty ones skipped).
    pub strata: usize,
    /// Semi-naive rounds run across all strata.
    pub rounds: usize,
    /// Tuple derivations produced (before subsumption).
    pub derivations: u64,
    /// Tuples stored across all relations after the fixpoint.
    pub tuples: usize,
}

/// A rule-evaluation task: rule index plus the body position rewritten
/// to the delta (`None` = naive round-0 evaluation).
type Task = (usize, Option<usize>);

/// The join plan of one task: positive literals in evaluation order
/// (delta literal first), then negated literals.
struct Plan {
    positives: Vec<usize>,
    negatives: Vec<usize>,
    nvars: usize,
}

fn plan_for(rule: &Rule, dpos: Option<usize>) -> Plan {
    let mut positives = Vec::new();
    if let Some(d) = dpos {
        positives.push(d);
    }
    for (i, lit) in rule.body.iter().enumerate() {
        if !lit.negated && Some(i) != dpos {
            positives.push(i);
        }
    }
    let negatives = (0..rule.body.len())
        .filter(|&i| rule.body[i].negated)
        .collect();
    let nvars = rule
        .head
        .terms
        .iter()
        .chain(rule.body.iter().flat_map(|l| l.atom.terms.iter()))
        .filter_map(|t| match t {
            Term::Var(v) => Some(*v + 1),
            Term::Const(_) => None,
        })
        .max()
        .unwrap_or(0);
    Plan {
        positives,
        negatives,
        nvars,
    }
}

/// Which columns of the literal at `pos` are bound (constant, or a
/// variable bound by an earlier positive literal of the plan)?
fn bound_cols(rule: &Rule, plan: &Plan, step: usize) -> Vec<usize> {
    let mut bound: FastSet<usize> = FastSet::default();
    for &p in &plan.positives[..step] {
        for t in &rule.body[p].atom.terms {
            if let Term::Var(v) = t {
                bound.insert(*v);
            }
        }
    }
    let lit = &rule.body[plan.positives[step]];
    (0..lit.atom.terms.len())
        .filter(|&i| match lit.atom.terms[i] {
            Term::Const(_) => true,
            Term::Var(v) => bound.contains(&v),
        })
        .collect()
}

type JoinIndex = FastMap<Vec<u64>, Vec<usize>>;

/// Hash indexes over the round-start database snapshot, keyed by
/// (relation, bound-column set). Shared read-only across shards.
struct Indexes {
    by_sig: FastMap<(usize, Vec<usize>), JoinIndex>,
}

fn build_indexes(program: &DatalogProgram, db: &Database, tasks: &[Task]) -> Indexes {
    let mut by_sig: FastMap<(usize, Vec<usize>), JoinIndex> = FastMap::default();
    for &(rule_idx, dpos) in tasks {
        let rule = &program.rules[rule_idx];
        let plan = plan_for(rule, dpos);
        // Step 0 iterates its source exhaustively; later steps use an
        // index unless fully bound (direct lookup) or fully unbound
        // (scan).
        for step in 1..plan.positives.len() {
            let lit = &rule.body[plan.positives[step]];
            let cols = bound_cols(rule, &plan, step);
            if cols.is_empty() || cols.len() == lit.atom.terms.len() {
                continue;
            }
            let sig = (lit.atom.relation.0, cols);
            if by_sig.contains_key(&sig) {
                continue;
            }
            let mut index: JoinIndex = FastMap::default();
            for (i, (tuple, _)) in db.relations[sig.0].tuples.iter().enumerate() {
                let key: Vec<u64> = sig.1.iter().map(|&c| tuple[c]).collect();
                index.entry(key).or_default().push(i);
            }
            by_sig.insert(sig, index);
        }
    }
    Indexes { by_sig }
}

/// Evaluates one task against the round-start snapshot, appending
/// derivations (head relation, tuple, constraint) in deterministic
/// order.
#[allow(clippy::too_many_arguments)]
fn eval_task(
    program: &DatalogProgram,
    db: &Database,
    indexes: &Indexes,
    delta: &[Vec<(Tuple, Bdd)>],
    rule_idx: usize,
    dpos: Option<usize>,
    out: &mut Vec<(RelId, Tuple, Bdd)>,
) {
    let rule = &program.rules[rule_idx];
    let plan = plan_for(rule, dpos);
    let mut bindings: Vec<Option<u64>> = vec![None; plan.nvars];

    fn unify(terms: &[Term], tuple: &[u64], bindings: &mut [Option<u64>]) -> Option<Vec<usize>> {
        let mut newly = Vec::new();
        for (t, &v) in terms.iter().zip(tuple) {
            match *t {
                Term::Const(c) => {
                    if c != v {
                        for &u in &newly {
                            bindings[u] = None;
                        }
                        return None;
                    }
                }
                Term::Var(x) => match bindings[x] {
                    Some(b) if b == v => {}
                    Some(_) => {
                        for &u in &newly {
                            bindings[u] = None;
                        }
                        return None;
                    }
                    None => {
                        bindings[x] = Some(v);
                        newly.push(x);
                    }
                },
            }
        }
        Some(newly)
    }

    #[allow(clippy::too_many_arguments)]
    fn descend(
        db: &Database,
        indexes: &Indexes,
        delta: &[Vec<(Tuple, Bdd)>],
        rule: &Rule,
        plan: &Plan,
        use_delta: bool,
        step: usize,
        acc: Option<&Bdd>,
        bindings: &mut Vec<Option<u64>>,
        out: &mut Vec<(RelId, Tuple, Bdd)>,
    ) {
        if step == plan.positives.len() {
            // All positives matched: apply negations, then the head.
            let mut c = acc.expect("positive join yields a constraint").clone();
            for &n in &plan.negatives {
                let atom = &rule.body[n].atom;
                let tuple: Tuple = atom
                    .terms
                    .iter()
                    .map(|t| match *t {
                        Term::Const(k) => k,
                        Term::Var(v) => bindings[v].expect("validated: negated vars bound"),
                    })
                    .collect();
                if let Some(nc) = db.constraint_of(atom.relation, &tuple) {
                    c = c.and(&nc.not());
                    if c.is_false() {
                        return;
                    }
                }
            }
            let head: Tuple = rule
                .head
                .terms
                .iter()
                .map(|t| match *t {
                    Term::Const(k) => k,
                    Term::Var(v) => bindings[v].expect("validated: head vars bound"),
                })
                .collect();
            out.push((rule.head.relation, head, c));
            return;
        }
        let pos = plan.positives[step];
        let atom = &rule.body[pos].atom;
        // Gather this step's candidate rows first (they borrow the
        // database immutably), then unify/recurse with the mutable
        // binding environment. Step 0 scans the delta (semi-naive) or
        // the full relation; later steps use a direct lookup when fully
        // bound, a prebuilt index when partially bound, a scan otherwise.
        let candidates: Vec<(&[u64], &Bdd)> = if step == 0 && use_delta {
            delta[atom.relation.0]
                .iter()
                .map(|(t, c)| (t.as_slice(), c))
                .collect()
        } else {
            let rel = &db.relations[atom.relation.0];
            if step == 0 {
                rel.tuples.iter().map(|(t, c)| (t.as_slice(), c)).collect()
            } else {
                let cols: Vec<usize> = (0..atom.terms.len())
                    .filter(|&i| match atom.terms[i] {
                        Term::Const(_) => true,
                        Term::Var(v) => bindings[v].is_some(),
                    })
                    .collect();
                if cols.len() == atom.terms.len() {
                    let key: Tuple = atom
                        .terms
                        .iter()
                        .map(|t| match *t {
                            Term::Const(k) => k,
                            Term::Var(v) => bindings[v].expect("bound"),
                        })
                        .collect();
                    rel.index
                        .get(&key)
                        .map(|&i| {
                            let (tuple, tc) = &rel.tuples[i];
                            vec![(tuple.as_slice(), tc)]
                        })
                        .unwrap_or_default()
                } else if cols.is_empty() {
                    rel.tuples.iter().map(|(t, c)| (t.as_slice(), c)).collect()
                } else {
                    let key: Vec<u64> = cols
                        .iter()
                        .map(|&i| match atom.terms[i] {
                            Term::Const(k) => k,
                            Term::Var(v) => bindings[v].expect("bound"),
                        })
                        .collect();
                    let sig = (atom.relation.0, cols);
                    let index = indexes
                        .by_sig
                        .get(&sig)
                        .expect("index prebuilt for every partially bound step");
                    index
                        .get(&key)
                        .map(|rows| {
                            rows.iter()
                                .map(|&i| {
                                    let (tuple, tc) = &rel.tuples[i];
                                    (tuple.as_slice(), tc)
                                })
                                .collect()
                        })
                        .unwrap_or_default()
                }
            }
        };
        for (tuple, tc) in candidates {
            let Some(newly) = unify(&atom.terms, tuple, bindings) else {
                continue;
            };
            let joined = match acc {
                None => tc.clone(),
                Some(a) => a.and(tc),
            };
            if !joined.is_false() {
                descend(
                    db,
                    indexes,
                    delta,
                    rule,
                    plan,
                    use_delta,
                    step + 1,
                    Some(&joined),
                    bindings,
                    out,
                );
            }
            for u in newly {
                bindings[u] = None;
            }
        }
    }

    descend(
        db,
        indexes,
        delta,
        rule,
        &plan,
        dpos.is_some(),
        0,
        None,
        &mut bindings,
        out,
    );
}

/// Runs `program` to its stratified fixpoint over `db` (which carries
/// the seeded EDB facts and any IDB seeds), sharding rule evaluation
/// over `opts.jobs` workers. Deterministic: the database's final tuple
/// order is identical for every `jobs` value.
pub fn evaluate(
    program: &DatalogProgram,
    db: &mut Database,
    ctx: &BddConstraintContext,
    opts: &EvalOptions,
) -> Result<EvalStats, DatalogError> {
    program.validate()?;
    let strata = program.stratify()?;
    let strata = &strata;
    let nrels = program.relation_count();
    let max_stratum = strata.iter().copied().max().unwrap_or(0);
    let mut stats = EvalStats {
        strata: max_stratum + 1,
        ..EvalStats::default()
    };
    for s in 0..=max_stratum {
        let rule_ids: Vec<usize> = (0..program.rules.len())
            .filter(|&r| strata[program.rules[r].head.relation.0] == s)
            .collect();
        if rule_ids.is_empty() {
            continue; // e.g. stratum 0 when every EDB relation is seeded
        }
        let mut delta: Vec<Vec<(Tuple, Bdd)>> = vec![Vec::new(); nrels];
        let mut round = 0usize;
        loop {
            ctx.budget_status()
                .map_err(|detail| DatalogError::BudgetExceeded { detail })?;
            let tasks: Vec<Task> = if round == 0 {
                rule_ids.iter().map(|&r| (r, None)).collect()
            } else {
                let delta = &delta;
                rule_ids
                    .iter()
                    .flat_map(|&r| {
                        let rule = &program.rules[r];
                        (0..rule.body.len()).filter_map(move |i| {
                            let lit = &rule.body[i];
                            (!lit.negated
                                && strata[lit.atom.relation.0] == s
                                && !delta[lit.atom.relation.0].is_empty())
                            .then_some((r, Some(i)))
                        })
                    })
                    .collect()
            };
            if tasks.is_empty() {
                break;
            }
            let indexes = build_indexes(program, db, &tasks);
            let (per_task, _shard_stats, _jobs) =
                map_shards(&tasks, opts.jobs, |_, chunk: &[Task]| {
                    let mut out = Vec::new();
                    for &(rule_idx, dpos) in chunk {
                        eval_task(program, db, &indexes, &delta, rule_idx, dpos, &mut out);
                    }
                    out
                });
            stats.rounds += 1;
            let mut changed: Vec<Vec<Tuple>> = vec![Vec::new(); nrels];
            let mut seen: FastSet<(usize, Tuple)> = FastSet::default();
            let mut any = false;
            for derivations in per_task {
                for (rel, tuple, c) in derivations {
                    stats.derivations += 1;
                    if db.insert(rel, tuple.clone(), c) && seen.insert((rel.0, tuple.clone())) {
                        changed[rel.0].push(tuple);
                        any = true;
                    }
                }
            }
            if !any {
                break;
            }
            // The next delta carries every changed tuple once, with its
            // full post-round constraint.
            delta = vec![Vec::new(); nrels];
            for (r, tuples) in changed.into_iter().enumerate() {
                for t in tuples {
                    let c = db
                        .constraint_of(RelId(r), &t)
                        .expect("changed tuple is stored")
                        .clone();
                    delta[r].push((t, c));
                }
            }
            round += 1;
        }
    }
    stats.tuples = db.total_tuples();
    Ok(stats)
}
