//! Textual rule/tuple dump format with a round-trip parser.
//!
//! The format is line-oriented in the style of `spllift_ir::text`'s
//! `.repro` programs: a versioned header, one `features` line naming
//! every feature (in [`spllift_features::FeatureId`] order), then one
//! `relation name/arity` section per relation with its tuples:
//!
//! ```text
//! # spllift datalog dump v1
//! features F G
//! relation act/2
//! act(0:0, 0:1)
//! act(0:1, 0:2) @ F
//! relation defs/2
//! defs(0:1, 3)
//! ```
//!
//! A tuple's feature constraint follows `@` (omitted when it is the
//! tautology). Cells are self-describing: statement columns render as
//! `method:index` and parse back by the embedded `:`; every other
//! column is a bare integer. [`parse_dump`] is the exact inverse of
//! [`DumpDoc::render`] — reserialization is byte-identical, which the
//! crate tests assert.

use std::fmt;

use crate::analyses::DatalogSolution;
use spllift_features::{BddConstraintContext, FeatureExpr, FeatureTable};

/// First line of every dump.
pub const DUMP_HEADER: &str = "# spllift datalog dump v1";

/// How a relation column renders in the dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColKind {
    /// A bare integer (method ids, local ids, fact tags).
    Raw,
    /// An encoded statement, rendered `method:index`.
    Stmt,
}

/// One parsed/rendered tuple cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DumpValue {
    /// A bare integer column.
    Raw(u64),
    /// A statement column.
    Stmt {
        /// Method id of the statement.
        method: u32,
        /// Index of the statement within the method.
        index: u32,
    },
}

impl fmt::Display for DumpValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DumpValue::Raw(x) => write!(f, "{x}"),
            DumpValue::Stmt { method, index } => write!(f, "{method}:{index}"),
        }
    }
}

/// One relation section of a dump: declared name/arity and its tuples
/// with their feature constraints, in database insertion order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DumpRelation {
    /// Relation name.
    pub name: String,
    /// Number of columns.
    pub arity: usize,
    /// Tuples with their constraints (tautology = unconstrained).
    pub tuples: Vec<(Vec<DumpValue>, FeatureExpr)>,
}

/// A complete dump document: the feature universe plus every relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DumpDoc {
    /// Feature names, in [`spllift_features::FeatureId`] order.
    pub features: Vec<String>,
    /// Relation sections, in declaration order.
    pub relations: Vec<DumpRelation>,
}

/// Error from [`parse_dump`], with a 1-based line number.
#[derive(Debug)]
pub struct DumpParseError {
    /// 1-based line the error was detected on (0 = end of input).
    pub line: usize,
    msg: String,
}

impl fmt::Display for DumpParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dump line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for DumpParseError {}

fn err(line: usize, msg: impl Into<String>) -> DumpParseError {
    DumpParseError {
        line,
        msg: msg.into(),
    }
}

impl DumpDoc {
    /// Extracts a dump from a completed solve. Relations appear in
    /// declaration order and tuples in database insertion order, so the
    /// rendered bytes are identical for any `--jobs` setting.
    pub fn from_solution(
        sol: &DatalogSolution,
        ctx: &BddConstraintContext,
        table: &FeatureTable,
    ) -> DumpDoc {
        let program = sol.program();
        let kinds = sol.relations().column_kinds(program);
        let relations = (0..program.relation_count())
            .map(|r| {
                let rel = crate::engine::RelId(r);
                let tuples = sol
                    .database()
                    .tuples(rel)
                    .map(|(cols, c)| {
                        let values = cols
                            .iter()
                            .zip(&kinds[r])
                            .map(|(&x, kind)| match kind {
                                ColKind::Raw => DumpValue::Raw(x),
                                ColKind::Stmt => DumpValue::Stmt {
                                    method: (x >> 32) as u32,
                                    index: x as u32,
                                },
                            })
                            .collect();
                        (values, ctx.to_expr(c))
                    })
                    .collect();
                DumpRelation {
                    name: program.relation_name(rel).to_string(),
                    arity: program.arity(rel),
                    tuples,
                }
            })
            .collect();
        DumpDoc {
            features: table.iter().map(|(_, name)| name.to_string()).collect(),
            relations,
        }
    }

    /// Serializes the document; [`parse_dump`] is the exact inverse.
    pub fn render(&self) -> String {
        let mut table = FeatureTable::new();
        for name in &self.features {
            table.intern(name);
        }
        let mut out = String::new();
        out.push_str(DUMP_HEADER);
        out.push('\n');
        out.push_str("features");
        for name in &self.features {
            out.push(' ');
            out.push_str(name);
        }
        out.push('\n');
        for rel in &self.relations {
            out.push_str(&format!("relation {}/{}\n", rel.name, rel.arity));
            for (values, expr) in &rel.tuples {
                out.push_str(&rel.name);
                out.push('(');
                for (j, value) in values.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&value.to_string());
                }
                out.push(')');
                if *expr != FeatureExpr::True {
                    out.push_str(&format!(" @ {}", expr.display(&table)));
                }
                out.push('\n');
            }
        }
        out
    }
}

fn parse_value(token: &str, line: usize) -> Result<DumpValue, DumpParseError> {
    if let Some((m, i)) = token.split_once(':') {
        let method = m
            .parse::<u32>()
            .map_err(|_| err(line, format!("bad statement cell `{token}`")))?;
        let index = i
            .parse::<u32>()
            .map_err(|_| err(line, format!("bad statement cell `{token}`")))?;
        Ok(DumpValue::Stmt { method, index })
    } else {
        let x = token
            .parse::<u64>()
            .map_err(|_| err(line, format!("bad integer cell `{token}`")))?;
        Ok(DumpValue::Raw(x))
    }
}

/// Parses a dump rendered by [`DumpDoc::render`].
pub fn parse_dump(input: &str) -> Result<DumpDoc, DumpParseError> {
    let mut lines = input.lines().enumerate().map(|(i, l)| (i + 1, l));
    let (line, first) = lines
        .next()
        .ok_or_else(|| err(0, "empty input, expected header"))?;
    if first.trim_end() != DUMP_HEADER {
        return Err(err(line, format!("expected header `{DUMP_HEADER}`")));
    }
    let (line, feats) = lines
        .next()
        .ok_or_else(|| err(0, "missing `features` line"))?;
    let mut words = feats.split_whitespace();
    if words.next() != Some("features") {
        return Err(err(line, "expected `features` line"));
    }
    let features: Vec<String> = words.map(str::to_string).collect();
    let mut table = FeatureTable::new();
    for name in &features {
        table.intern(name);
    }

    let mut relations: Vec<DumpRelation> = Vec::new();
    for (line, raw) in lines {
        let text = raw.trim_end();
        if text.is_empty() {
            continue;
        }
        if let Some(decl) = text.strip_prefix("relation ") {
            let (name, arity) = decl
                .split_once('/')
                .ok_or_else(|| err(line, "expected `relation name/arity`"))?;
            let arity = arity
                .parse::<usize>()
                .map_err(|_| err(line, format!("bad arity `{arity}`")))?;
            relations.push(DumpRelation {
                name: name.to_string(),
                arity,
                tuples: Vec::new(),
            });
            continue;
        }
        let rel = relations
            .last_mut()
            .ok_or_else(|| err(line, "tuple before any `relation` declaration"))?;
        let rest = text
            .strip_prefix(rel.name.as_str())
            .and_then(|r| r.strip_prefix('('))
            .ok_or_else(|| err(line, format!("expected a `{}(...)` tuple", rel.name)))?;
        let (inside, after) = rest
            .split_once(')')
            .ok_or_else(|| err(line, "unterminated tuple, missing `)`"))?;
        let mut values = Vec::new();
        if !inside.trim().is_empty() {
            for token in inside.split(',') {
                values.push(parse_value(token.trim(), line)?);
            }
        }
        if values.len() != rel.arity {
            return Err(err(
                line,
                format!(
                    "arity mismatch: {} has {} columns, tuple has {}",
                    rel.name,
                    rel.arity,
                    values.len()
                ),
            ));
        }
        let expr = if after.is_empty() {
            FeatureExpr::True
        } else if let Some(expr_text) = after.strip_prefix(" @ ") {
            let before = table.len();
            let expr = FeatureExpr::parse(expr_text, &mut table)
                .map_err(|e| err(line, format!("bad constraint: {e}")))?;
            if table.len() != before {
                return Err(err(
                    line,
                    "constraint mentions a feature missing from the `features` line",
                ));
            }
            expr
        } else {
            return Err(err(
                line,
                "expected ` @ constraint` or end of line after `)`",
            ));
        };
        rel.tuples.push((values, expr));
    }
    Ok(DumpDoc {
        features,
        relations,
    })
}
