//! Concurrency tests for the shared BDD store: hash-consing uniqueness
//! under racing interning, op-cache race benignity, exactly-once budget
//! latching, and consistency of `stats`/meter snapshots taken while
//! other threads mutate the store.
//!
//! These run on whatever hardware CI has (including one core — the
//! scheduler still preempts between the `yield_now` calls), so they
//! assert *invariants*, never timing.

use crate::{Bdd, BddBudget, BddError, BddManager, BudgetResource};
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;

/// Builds the same parity-ish formula over `vars`; every thread racing
/// this construction must intern the identical diagram.
fn build_formula(vars: &[Bdd]) -> Bdd {
    let mut acc = vars[0].clone();
    for (i, v) in vars.iter().enumerate().skip(1) {
        acc = if i % 3 == 0 {
            acc.xor(v)
        } else if i % 3 == 1 {
            acc.and(&v.not())
        } else {
            acc.or(v)
        };
    }
    acc
}

#[test]
fn racing_threads_intern_one_node() {
    let mgr = BddManager::new();
    let vars: Vec<Bdd> = (0..24).map(|i| mgr.var(format!("V{i}"))).collect();
    let results: Vec<Bdd> = thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let mgr = mgr.clone();
                let vars = vars.clone();
                s.spawn(move || {
                    thread::yield_now();
                    let f = build_formula(&vars);
                    // Re-derive pieces to hammer the unique table from
                    // several orders at once.
                    let g = build_formula(&vars);
                    assert_eq!(f, g);
                    drop(mgr);
                    f
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // Hash-consing: every thread got the *same* node, so handle equality
    // (id comparison) holds pairwise, and the node count equals what one
    // sequential construction produces.
    for w in results.windows(2) {
        assert_eq!(w[0], w[1], "racing threads interned distinct nodes");
    }
    let seq = BddManager::new();
    let seq_vars: Vec<Bdd> = (0..24).map(|i| seq.var(format!("V{i}"))).collect();
    let seq_f = build_formula(&seq_vars);
    assert_eq!(results[0].to_cube_string(), seq_f.to_cube_string());
    assert_eq!(results[0].node_count(), seq_f.node_count());
}

#[test]
fn op_cache_races_are_benign() {
    // Threads interleave cache probes and inserts for the same and
    // overlapping (f, g, h) triples; a lost insert only costs a
    // recomputation, never a wrong result. Verify every thread's result
    // against an eval truth table.
    let mgr = BddManager::new();
    let vars: Vec<Bdd> = (0..10).map(|i| mgr.var(format!("V{i}"))).collect();
    thread::scope(|s| {
        for t in 0..8usize {
            let vars = vars.clone();
            s.spawn(move || {
                for round in 0..20 {
                    let a = &vars[(t + round) % vars.len()];
                    let b = &vars[(t * 3 + round) % vars.len()];
                    let c = &vars[round % vars.len()];
                    let f = a.xor(b).ite(&b.not(), &c.or(a));
                    thread::yield_now();
                    for bits in 0u32..(1 << 3) {
                        let assign = |v: crate::VarId| {
                            let idx = vars.iter().position(|x| x == &vars[v.0 as usize]);
                            (bits >> (idx.unwrap() % 3)) & 1 == 1
                        };
                        let av = assign(a.support()[0]);
                        let bv = assign(b.support()[0]);
                        let cv = assign(c.support()[0]);
                        let expect = if av ^ bv { !bv } else { cv || av };
                        assert_eq!(f.eval(assign), expect);
                    }
                }
            });
        }
    });
}

#[test]
fn exhaustion_latches_exactly_once_across_threads() {
    let mgr = BddManager::new();
    for i in 0..8 {
        mgr.var(format!("V{i}"));
    }
    mgr.set_budget(BddBudget {
        max_nodes: None,
        max_ops: Some(50),
    });
    let go = AtomicBool::new(false);
    thread::scope(|s| {
        for _ in 0..8 {
            let mgr = mgr.clone();
            let go = &go;
            s.spawn(move || {
                while !go.load(Ordering::Acquire) {
                    thread::yield_now();
                }
                // Each thread tries to blow the op budget simultaneously.
                mgr.charge_ops(40);
                mgr.charge_ops(40);
            });
        }
        go.store(true, Ordering::Release);
    });
    match mgr.budget_status() {
        Err(BddError::BudgetExceeded {
            resource: BudgetResource::Ops,
            limit: 50,
            used,
        }) => assert!(used > 50, "latched usage must exceed the limit: {used}"),
        other => panic!("expected an ops budget trip, got {other:?}"),
    }
    assert_eq!(
        mgr.exhaustion_latches(),
        1,
        "eight racing threads must latch exhaustion exactly once"
    );

    // Re-arming resets the latch; a second racing exhaustion latches
    // exactly once more.
    mgr.set_budget(BddBudget {
        max_nodes: None,
        max_ops: Some(10),
    });
    assert!(mgr.budget_status().is_ok());
    thread::scope(|s| {
        for _ in 0..4 {
            let mgr = mgr.clone();
            s.spawn(move || mgr.charge_ops(100));
        }
    });
    assert!(mgr.budget_status().is_err());
    assert_eq!(mgr.exhaustion_latches(), 2);
}

#[test]
fn node_budget_latches_once_under_racing_construction() {
    let mgr = BddManager::new();
    let vars: Vec<Bdd> = (0..20).map(|i| mgr.var(format!("V{i}"))).collect();
    mgr.set_budget(BddBudget {
        max_nodes: Some(12),
        max_ops: None,
    });
    thread::scope(|s| {
        for t in 0..6usize {
            let vars = vars.clone();
            s.spawn(move || {
                // Distinct formulas per thread so the unique table keeps
                // growing until the node budget trips.
                let mut acc = vars[t].clone();
                for v in &vars[t + 1..] {
                    acc = acc.xor(v);
                    thread::yield_now();
                }
            });
        }
    });
    match mgr.budget_status() {
        Err(BddError::BudgetExceeded {
            resource: BudgetResource::Nodes,
            limit: 12,
            ..
        }) => {}
        other => panic!("expected a node budget trip, got {other:?}"),
    }
    assert_eq!(mgr.exhaustion_latches(), 1);
}

#[test]
fn stats_snapshots_are_consistent_under_concurrent_growth() {
    // Regression (ISSUE 7 satellite): the governance read path takes
    // `stats()` / `nodes_since_arm()` / `ops_used()` snapshots while a
    // solve runs on other threads. Those reads must never tear: node
    // counts are monotone non-decreasing between snapshots, and the
    // since-arm meters never underflow even when a snapshot straddles
    // store growth.
    let mgr = BddManager::new();
    let vars: Vec<Bdd> = (0..16).map(|i| mgr.var(format!("V{i}"))).collect();
    mgr.set_budget(BddBudget::UNLIMITED);
    let done = AtomicBool::new(false);
    thread::scope(|s| {
        let writer = {
            let vars = vars.clone();
            let done = &done;
            s.spawn(move || {
                let mut acc = vars[0].clone();
                for round in 0..6 {
                    for v in &vars[1..] {
                        acc = if round % 2 == 0 {
                            acc.xor(v)
                        } else {
                            acc.iff(v)
                        };
                        thread::yield_now();
                    }
                }
                done.store(true, Ordering::Release);
                acc.node_count()
            })
        };
        let mgr2 = mgr.clone();
        let done = &done;
        let reader = s.spawn(move || {
            let mut last_nodes = 0usize;
            let mut snapshots = 0u32;
            while !done.load(Ordering::Acquire) {
                let st = mgr2.stats();
                assert!(
                    st.nodes >= last_nodes,
                    "node count went backwards: {} -> {}",
                    last_nodes,
                    st.nodes
                );
                assert!(st.nodes >= 2, "terminals must always be counted");
                // Meters are saturating: no underflow panic, no wrapped
                // astronomically-large reading.
                assert!(mgr2.nodes_since_arm() <= st.nodes as u64);
                let _ = mgr2.ops_used();
                last_nodes = st.nodes;
                snapshots += 1;
                thread::yield_now();
            }
            snapshots
        });
        let final_nodes = writer.join().unwrap();
        let snapshots = reader.join().unwrap();
        assert!(final_nodes > 0);
        assert!(
            snapshots > 0,
            "reader must have observed at least one snapshot"
        );
    });
    assert!(mgr.budget_status().is_ok());
}

#[test]
fn handles_are_send_and_usable_after_thread_hop() {
    // A Bdd built on one thread is usable (eval, rendering, further ops)
    // on another — the publication edge is the thread join.
    let mgr = BddManager::new();
    let a = mgr.var("A");
    let b = mgr.var("B");
    let f = thread::scope(|s| {
        let (a, b) = (a.clone(), b.clone());
        s.spawn(move || a.and(&b.not())).join().unwrap()
    });
    assert_eq!(f.to_cube_string(), "(A & !B)");
    assert_eq!(f, a.and(&b.not()));
}
