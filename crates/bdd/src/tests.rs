use crate::{Bdd, BddManager, VarId};

fn three_vars() -> (BddManager, Bdd, Bdd, Bdd) {
    let mgr = BddManager::new();
    let a = mgr.var("A");
    let b = mgr.var("B");
    let c = mgr.var("C");
    (mgr, a, b, c)
}

#[test]
fn constants() {
    let mgr = BddManager::new();
    assert!(mgr.top().is_true());
    assert!(mgr.bottom().is_false());
    assert_ne!(mgr.top(), mgr.bottom());
    assert_eq!(mgr.top().not(), mgr.bottom());
}

#[test]
fn variable_identities() {
    let (mgr, a, _, _) = three_vars();
    assert_eq!(a.and(&a), a);
    assert_eq!(a.or(&a), a);
    assert_eq!(a.and(&a.not()), mgr.bottom());
    assert_eq!(a.or(&a.not()), mgr.top());
    assert_eq!(a.not().not(), a);
    assert_eq!(a.xor(&a), mgr.bottom());
}

#[test]
fn commutativity_and_associativity() {
    let (_, a, b, c) = three_vars();
    assert_eq!(a.and(&b), b.and(&a));
    assert_eq!(a.or(&b), b.or(&a));
    assert_eq!(a.and(&b).and(&c), a.and(&b.and(&c)));
    assert_eq!(a.or(&b).or(&c), a.or(&b.or(&c)));
}

#[test]
fn de_morgan() {
    let (_, a, b, _) = three_vars();
    assert_eq!(a.and(&b).not(), a.not().or(&b.not()));
    assert_eq!(a.or(&b).not(), a.not().and(&b.not()));
}

#[test]
fn distributivity() {
    let (_, a, b, c) = three_vars();
    assert_eq!(a.and(&b.or(&c)), a.and(&b).or(&a.and(&c)));
    assert_eq!(a.or(&b.and(&c)), a.or(&b).and(&a.or(&c)));
}

#[test]
fn implication_and_iff() {
    let (mgr, a, b, _) = three_vars();
    assert_eq!(a.implies(&b), a.not().or(&b));
    assert_eq!(a.iff(&b), a.xor(&b).not());
    assert_eq!(a.implies(&a), mgr.top());
}

#[test]
fn ite_matches_definition() {
    let (_, a, b, c) = three_vars();
    let ite = a.ite(&b, &c);
    let manual = a.and(&b).or(&a.not().and(&c));
    assert_eq!(ite, manual);
}

#[test]
fn restrict_cofactors() {
    let mgr = BddManager::new();
    let av = mgr.new_var("A");
    let bv = mgr.new_var("B");
    let a = mgr.var_bdd(av);
    let b = mgr.var_bdd(bv);
    let f = a.and(&b);
    assert_eq!(f.restrict(av, true), b);
    assert!(f.restrict(av, false).is_false());
    assert_eq!(f.restrict(bv, true), a);
}

#[test]
fn sat_count_basic() {
    let (mgr, a, b, c) = three_vars();
    assert_eq!(mgr.top().sat_count(), 8);
    assert_eq!(mgr.bottom().sat_count(), 0);
    assert_eq!(a.sat_count(), 4);
    assert_eq!(a.and(&b).sat_count(), 2);
    assert_eq!(a.and(&b).and(&c).sat_count(), 1);
    assert_eq!(a.or(&b).sat_count(), 6);
}

#[test]
fn sat_count_skipped_levels() {
    let mgr = BddManager::new();
    let _a = mgr.var("A");
    let b = mgr.var("B");
    let _c = mgr.var("C");
    let d = mgr.var("D");
    // B ∧ D over 4 vars: 4 assignments.
    assert_eq!(b.and(&d).sat_count(), 4);
}

#[test]
fn one_sat_satisfies() {
    let (_, a, b, c) = three_vars();
    let f = a.not().and(&b).and(&c.not());
    let sat = f.one_sat().expect("satisfiable");
    let assignment: std::collections::HashMap<VarId, bool> = sat.into_iter().collect();
    assert!(f.eval(|v| *assignment.get(&v).unwrap_or(&false)));
    assert!(a.and(&a.not()).one_sat().is_none());
}

#[test]
fn eval_agrees_with_truth_table() {
    let (_, a, b, c) = three_vars();
    let f = a.xor(&b).or(&c.and(&a));
    for bits in 0u8..8 {
        let asg = move |v: VarId| bits & (1 << v.0) != 0;
        let (va, vb, vc) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0);
        let expected = (va ^ vb) || (vc && va);
        assert_eq!(f.eval(asg), expected, "bits {bits:03b}");
    }
}

#[test]
fn support_reports_dependencies() {
    let mgr = BddManager::new();
    let av = mgr.new_var("A");
    let bv = mgr.new_var("B");
    let cv = mgr.new_var("C");
    let a = mgr.var_bdd(av);
    let c = mgr.var_bdd(cv);
    let f = a.and(&c);
    assert_eq!(f.support(), vec![av, cv]);
    assert!(!f.support().contains(&bv));
    assert!(mgr.top().support().is_empty());
}

#[test]
fn hash_consing_dedupes() {
    let (_, a, b, _) = three_vars();
    let f1 = a.and(&b).or(&a.not().and(&b));
    // f1 ≡ b; reduction must collapse to the literal node.
    assert_eq!(f1, b);
    assert_eq!(f1.node_count(), 1);
}

#[test]
fn cube_string_rendering() {
    let mgr = BddManager::new();
    let f = mgr.var("F");
    let g = mgr.var("G");
    let h = mgr.var("H");
    let c = f.not().and(&g).and(&h.not());
    assert_eq!(c.to_cube_string(), "(!F & G & !H)");
    assert_eq!(mgr.top().to_cube_string(), "true");
    assert_eq!(mgr.bottom().to_cube_string(), "false");
}

#[test]
fn dot_output_mentions_vars() {
    let (_, a, b, _) = three_vars();
    let dot = a.and(&b).to_dot();
    assert!(dot.contains("digraph"));
    assert!(dot.contains("\"A\""));
    assert!(dot.contains("\"B\""));
}

#[test]
fn node_count_of_parity_is_linear() {
    let mgr = BddManager::new();
    let vars: Vec<_> = (0..10).map(|i| mgr.var(format!("x{i}"))).collect();
    let parity = vars.iter().fold(mgr.bottom(), |acc, v| acc.xor(v));
    // Parity has exactly 2n-1 nodes in a reduced OBDD... with shared
    // complement structure it is 2n-1 for this representation.
    assert_eq!(parity.node_count(), 2 * 10 - 1);
    assert_eq!(parity.sat_count(), 512);
}

mod properties {
    use super::*;
    use spllift_rng::SplitMix64;

    /// A tiny recursive formula AST evaluated both directly and via BDDs.
    #[derive(Debug, Clone)]
    enum Formula {
        Var(u8),
        Not(Box<Formula>),
        And(Box<Formula>, Box<Formula>),
        Or(Box<Formula>, Box<Formula>),
        Xor(Box<Formula>, Box<Formula>),
    }

    /// Seeded random formulas over 5 variables, depth-bounded like the
    /// old proptest strategy (`prop_recursive(5, ..)`).
    fn random_formula(rng: &mut SplitMix64, depth: usize) -> Formula {
        if depth == 0 || rng.gen_bool(0.25) {
            return Formula::Var(rng.gen_range(0..5u8));
        }
        match rng.gen_range(0..4u32) {
            0 => Formula::Not(Box::new(random_formula(rng, depth - 1))),
            1 => Formula::And(
                Box::new(random_formula(rng, depth - 1)),
                Box::new(random_formula(rng, depth - 1)),
            ),
            2 => Formula::Or(
                Box::new(random_formula(rng, depth - 1)),
                Box::new(random_formula(rng, depth - 1)),
            ),
            _ => Formula::Xor(
                Box::new(random_formula(rng, depth - 1)),
                Box::new(random_formula(rng, depth - 1)),
            ),
        }
    }

    fn to_bdd(f: &Formula, vars: &[Bdd]) -> Bdd {
        match f {
            Formula::Var(i) => vars[*i as usize].clone(),
            Formula::Not(a) => to_bdd(a, vars).not(),
            Formula::And(a, b) => to_bdd(a, vars).and(&to_bdd(b, vars)),
            Formula::Or(a, b) => to_bdd(a, vars).or(&to_bdd(b, vars)),
            Formula::Xor(a, b) => to_bdd(a, vars).xor(&to_bdd(b, vars)),
        }
    }

    fn eval(f: &Formula, bits: u8) -> bool {
        match f {
            Formula::Var(i) => bits & (1 << i) != 0,
            Formula::Not(a) => !eval(a, bits),
            Formula::And(a, b) => eval(a, bits) && eval(b, bits),
            Formula::Or(a, b) => eval(a, bits) || eval(b, bits),
            Formula::Xor(a, b) => eval(a, bits) ^ eval(b, bits),
        }
    }

    /// BDD construction is semantics-preserving w.r.t. a truth table.
    #[test]
    fn bdd_matches_truth_table() {
        let mut rng = SplitMix64::seed_from_u64(0xBDD_0001);
        for _ in 0..256 {
            let f = random_formula(&mut rng, 5);
            let mgr = BddManager::new();
            let vars: Vec<_> = (0..5).map(|i| mgr.var(format!("x{i}"))).collect();
            let bdd = to_bdd(&f, &vars);
            let mut count = 0u128;
            for bits in 0u8..32 {
                let expected = eval(&f, bits);
                assert_eq!(
                    bdd.eval(|v| bits & (1 << v.0) != 0),
                    expected,
                    "formula {f:?} at assignment {bits:#07b}"
                );
                if expected {
                    count += 1;
                }
            }
            assert_eq!(bdd.sat_count(), count, "formula {f:?}");
        }
    }

    /// Canonicity: semantically equal formulas get the same node.
    #[test]
    fn canonical_forms() {
        let mut rng = SplitMix64::seed_from_u64(0xBDD_0002);
        for _ in 0..256 {
            let f = random_formula(&mut rng, 5);
            let mgr = BddManager::new();
            let vars: Vec<_> = (0..5).map(|i| mgr.var(format!("x{i}"))).collect();
            let bdd = to_bdd(&f, &vars);
            // Double negation and or-with-self must be handle-identical.
            assert_eq!(bdd.not().not(), bdd.clone());
            assert_eq!(bdd.or(&bdd), bdd.clone());
            assert_eq!(bdd.and(&mgr.top()), bdd.clone());
            assert_eq!(bdd.or(&mgr.bottom()), bdd.clone());
            // Shannon expansion on variable 0 reconstructs the function.
            let v0 = crate::VarId(0);
            let x0 = vars[0].clone();
            let expanded = x0
                .and(&bdd.restrict(v0, true))
                .or(&x0.not().and(&bdd.restrict(v0, false)));
            assert_eq!(expanded, bdd, "Shannon expansion of {f:?}");
        }
    }

    /// `one_sat` returns a genuine model whenever one exists.
    #[test]
    fn one_sat_is_model() {
        let mut rng = SplitMix64::seed_from_u64(0xBDD_0003);
        for _ in 0..256 {
            let f = random_formula(&mut rng, 5);
            let mgr = BddManager::new();
            let vars: Vec<_> = (0..5).map(|i| mgr.var(format!("x{i}"))).collect();
            let bdd = to_bdd(&f, &vars);
            match bdd.one_sat() {
                None => assert!(bdd.is_false(), "no model for satisfiable {f:?}"),
                Some(model) => {
                    let m: std::collections::HashMap<VarId, bool> = model.into_iter().collect();
                    assert!(
                        bdd.eval(|v| *m.get(&v).unwrap_or(&false)),
                        "one_sat returned a non-model for {f:?}"
                    );
                }
            }
        }
    }
}

mod quantification {
    use super::*;

    #[test]
    fn exists_projects_away_variable() {
        let mgr = BddManager::new();
        let av = mgr.new_var("A");
        let bv = mgr.new_var("B");
        let a = mgr.var_bdd(av);
        let b = mgr.var_bdd(bv);
        // ∃A. (A ∧ B) = B ; ∃A. (A ∨ B) = true.
        assert_eq!(a.and(&b).exists(av), b);
        assert!(a.or(&b).exists(av).is_true());
        // Quantifying a variable not in the support is the identity.
        assert_eq!(b.exists(av), b);
        let _ = bv;
    }

    #[test]
    fn forall_is_dual_of_exists() {
        let mgr = BddManager::new();
        let av = mgr.new_var("A");
        let bv = mgr.new_var("B");
        let a = mgr.var_bdd(av);
        let b = mgr.var_bdd(bv);
        // ∀A. (A ∨ B) = B ; ∀A. (A ∧ B) = false.
        assert_eq!(a.or(&b).forall(av), b);
        assert!(a.and(&b).forall(av).is_false());
        // ¬∃A.¬f == ∀A.f
        let f = a.xor(&b);
        assert_eq!(f.not().exists(av).not(), f.forall(av));
        let _ = bv;
    }

    #[test]
    fn exists_many_projects_model_onto_subset() {
        // Model over {R, F, U}: R ∧ (F → R) ∧ (U → R). Projecting U away
        // and restricting R=true leaves "true" over F (any F valid).
        let mgr = BddManager::new();
        let rv = mgr.new_var("R");
        let fv = mgr.new_var("F");
        let uv = mgr.new_var("U");
        let r = mgr.var_bdd(rv);
        let f = mgr.var_bdd(fv);
        let u = mgr.var_bdd(uv);
        let model = r.and(&f.implies(&r)).and(&u.implies(&r));
        let projected = model.exists_many(&[uv]).restrict(rv, true);
        assert!(projected.is_true());
        assert!(projected.support().is_empty());
        let _ = fv;
    }

    #[test]
    fn entailment() {
        let mgr = BddManager::new();
        let a = mgr.var("A");
        let b = mgr.var("B");
        assert!(a.and(&b).entails(&a));
        assert!(!a.entails(&a.and(&b)));
        assert!(mgr.bottom().entails(&a));
        assert!(a.entails(&mgr.top()));
    }
}

/// Regression tests for the hot-path perf overhaul: commutative op-cache
/// normalization, the `restrict` memo, iterative deep-diagram traversal,
/// and the always-on `sat_count_over` precondition.
mod perf_overhaul {
    use super::*;

    #[test]
    fn commutative_ops_share_one_cache_slot() {
        // `a ∧ b` then `b ∧ a` must not add new `ite` cache entries:
        // operands are sorted by node id before the cache probe.
        let (mgr, a, b, _) = three_vars();
        let _ = a.and(&b);
        let after_first = mgr.stats().cache_entries;
        let _ = b.and(&a);
        assert_eq!(mgr.stats().cache_entries, after_first, "and not shared");

        let _ = a.or(&b);
        let after_or = mgr.stats().cache_entries;
        let _ = b.or(&a);
        assert_eq!(mgr.stats().cache_entries, after_or, "or not shared");

        let _ = a.xor(&b);
        let after_xor = mgr.stats().cache_entries;
        let _ = b.xor(&a);
        assert_eq!(mgr.stats().cache_entries, after_xor, "xor not shared");

        let _ = a.iff(&b);
        let after_iff = mgr.stats().cache_entries;
        let _ = b.iff(&a);
        assert_eq!(mgr.stats().cache_entries, after_iff, "iff not shared");
    }

    #[test]
    #[should_panic(expected = "sat_count_over")]
    fn sat_count_over_rejects_out_of_range_support() {
        // Pre-fix this was a `debug_assert!`, so `--release` binaries
        // silently returned a wrong model count; the check is now an
        // always-on `assert!`, so this test passes under `cargo test`
        // in *both* profiles.
        let mgr = BddManager::new();
        let _a = mgr.var("A");
        let b = mgr.var("B"); // VarId(1): outside `nvars = 1`.
        let _ = b.sat_count_over(1);
    }

    #[test]
    fn sat_count_over_in_range_still_counts() {
        let mgr = BddManager::new();
        let a = mgr.var("A");
        let _b = mgr.var("B");
        // Over just {A}: one model. (Over both vars it would be 2.)
        assert_eq!(a.sat_count_over(1), 1);
    }

    /// x₀ ∧ x₁ ∧ … ∧ xₙ₋₁ built bottom-up (highest variable first), so
    /// each `and` only recurses O(1) deep while the *resulting* diagram
    /// is a chain of depth n.
    fn deep_chain(mgr: &BddManager, n: u32) -> (Bdd, Vec<VarId>) {
        let vars: Vec<VarId> = (0..n).map(|i| mgr.new_var(format!("v{i}"))).collect();
        let mut chain = mgr.top();
        for &v in vars.iter().rev() {
            chain = mgr.var_bdd(v).and(&chain);
        }
        (chain, vars)
    }

    #[test]
    fn deep_chain_not_does_not_overflow_stack() {
        // ~100k-variable chain: the recursive `Store::not` blew the
        // call stack here (8 MiB default / ~100 bytes per frame).
        let mgr = BddManager::new();
        let (chain, _) = deep_chain(&mgr, 100_000);
        let neg = chain.not();
        assert!(!neg.is_false());
        assert_eq!(neg.not(), chain, "negation must be an involution");
    }

    #[test]
    fn deep_chain_restrict_does_not_overflow_stack() {
        let mgr = BddManager::new();
        let n = 100_000;
        let (chain, vars) = deep_chain(&mgr, n);
        // Fixing the *bottom* variable true walks the whole chain.
        let r = chain.restrict(vars[(n - 1) as usize], true);
        // The result is the same conjunction without its last literal.
        assert_eq!(r.support().len() as u32, n - 1);
        // Fixing it false kills the conjunction entirely.
        assert!(chain.restrict(vars[(n - 1) as usize], false).is_false());
    }

    #[test]
    fn restrict_memo_handles_exponential_path_counts() {
        // Parity of n variables: O(n) nodes but 2ⁿ⁻¹ root-to-sink
        // paths. The unmemoized `restrict` re-walked one subtree per
        // *path*, so n = 48 took ~2⁴⁷ steps (would hang for hours);
        // with the memo it is O(n).
        let mgr = BddManager::new();
        let n = 48u32;
        let vars: Vec<VarId> = (0..n).map(|i| mgr.new_var(format!("p{i}"))).collect();
        let mut parity = mgr.bottom();
        for &v in &vars {
            parity = parity.xor(&mgr.var_bdd(v));
        }
        let r = parity.restrict(vars[(n - 1) as usize], true);
        // Fixing the last variable to true flips the parity of the rest.
        let rest_parity = vars[..(n - 1) as usize]
            .iter()
            .fold(mgr.bottom(), |acc, &v| acc.xor(&mgr.var_bdd(v)));
        assert_eq!(r, rest_parity.not());
    }

    #[test]
    fn restrict_is_memoized_across_calls() {
        // Second identical restrict must do no fresh node construction:
        // node count in the manager is unchanged and the result is
        // handle-identical.
        let (mgr, a, b, c) = three_vars();
        let f = a.iff(&b).or(&b.iff(&c));
        let first = f.restrict(VarId(1), true);
        let nodes_after_first = mgr.stats().nodes;
        let second = f.restrict(VarId(1), true);
        assert_eq!(first, second);
        assert_eq!(mgr.stats().nodes, nodes_after_first);
    }
}

mod budget {
    use crate::{BddBudget, BddError, BddManager, BudgetResource};

    /// Builds a parity-style formula big enough to exceed small budgets.
    fn big_formula(mgr: &BddManager, nvars: usize) -> crate::Bdd {
        let vars: Vec<_> = (0..nvars).map(|i| mgr.var(format!("v{i}"))).collect();
        vars.iter()
            .fold(mgr.bottom(), |acc, v| acc.xor(v))
            .or(&vars[0].and(&vars[nvars - 1]))
    }

    #[test]
    fn node_budget_trips_and_reports() {
        let mgr = BddManager::new();
        mgr.set_budget(BddBudget {
            max_nodes: Some(8),
            max_ops: None,
        });
        let _ = big_formula(&mgr, 16);
        match mgr.budget_status() {
            Err(BddError::BudgetExceeded {
                resource: BudgetResource::Nodes,
                limit: 8,
                used,
            }) => assert!(used > 8),
            other => panic!("expected node-budget exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn op_budget_trips_and_reports() {
        let mgr = BddManager::new();
        mgr.set_budget(BddBudget {
            max_nodes: None,
            max_ops: Some(4),
        });
        let _ = big_formula(&mgr, 16);
        match mgr.budget_status() {
            Err(BddError::BudgetExceeded {
                resource: BudgetResource::Ops,
                ..
            }) => {}
            other => panic!("expected op-budget exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn charge_ops_is_a_deterministic_fault_hook() {
        let mgr = BddManager::new();
        mgr.set_budget(BddBudget {
            max_nodes: None,
            max_ops: Some(100),
        });
        mgr.charge_ops(1_000);
        assert!(mgr.budget_status().is_err());
        assert!(mgr.ops_used() > 100);
    }

    #[test]
    fn exhaustion_does_not_pollute_caches() {
        // Compute a reference answer on an unbudgeted manager, then
        // exhaust a second manager mid-formula, re-arm it, and check that
        // the same computation now yields the correct (reference) truth
        // table — i.e. no garbage survived in unique/op caches.
        let clean = BddManager::new();
        let reference = big_formula(&clean, 10);

        let mgr = BddManager::new();
        mgr.set_budget(BddBudget {
            max_nodes: Some(4),
            max_ops: None,
        });
        let _ = big_formula(&mgr, 10);
        assert!(mgr.budget_status().is_err());

        mgr.clear_budget();
        assert!(mgr.budget_status().is_ok());
        let vars: Vec<_> = (0..10).map(|i| mgr.var_bdd(crate::VarId(i))).collect();
        let redo = vars
            .iter()
            .fold(mgr.bottom(), |acc, v| acc.xor(v))
            .or(&vars[0].and(&vars[9]));
        // Compare truth tables over all 1024 assignments.
        for bits in 0u32..1024 {
            let assign = |v: crate::VarId| bits >> v.0 & 1 == 1;
            assert_eq!(redo.eval(assign), reference.eval(assign), "bits={bits}");
        }
    }

    #[test]
    fn rearming_resets_the_meters() {
        let mgr = BddManager::new();
        mgr.set_budget(BddBudget {
            max_nodes: Some(4),
            max_ops: None,
        });
        let _ = big_formula(&mgr, 12);
        assert!(mgr.budget_status().is_err());
        mgr.set_budget(BddBudget {
            max_nodes: Some(1 << 20),
            max_ops: Some(1 << 20),
        });
        assert!(mgr.budget_status().is_ok());
        assert_eq!(mgr.ops_used(), 0);
        assert_eq!(mgr.nodes_since_arm(), 0);
        let f = big_formula(&mgr, 12);
        assert!(mgr.budget_status().is_ok());
        assert!(!f.is_false());
    }
}

#[test]
fn semantic_digest_is_function_of_the_function() {
    let (mgr, a, b, c) = three_vars();
    // Equal functions, built along different op paths, digest equally.
    let f1 = a.and(&b).or(&c);
    let f2 = c.or(&b.and(&a));
    assert_eq!(f1.semantic_digest(), f2.semantic_digest());
    // Different functions digest differently.
    assert_ne!(f1.semantic_digest(), a.or(&b).semantic_digest());
    assert_ne!(a.semantic_digest(), b.semantic_digest());
    // Branch asymmetry: x and !x must differ.
    assert_ne!(a.semantic_digest(), a.not().semantic_digest());
    // Terminals are distinct constants.
    assert_ne!(mgr.top().semantic_digest(), mgr.bottom().semantic_digest());
}

#[test]
fn semantic_digest_is_independent_of_build_order_across_managers() {
    // Two fresh managers, same variable order, different construction
    // order (hence different node ids): digests must agree.
    let m1 = BddManager::new();
    let (a1, b1, c1) = (m1.var("A"), m1.var("B"), m1.var("C"));
    let junk = c1.xor(&b1); // shift node ids in m1
    let f1 = a1.implies(&b1).and(&c1);
    let m2 = BddManager::new();
    let (a2, b2, c2) = (m2.var("A"), m2.var("B"), m2.var("C"));
    let f2 = a2.implies(&b2).and(&c2);
    assert_eq!(f1.semantic_digest(), f2.semantic_digest());
    drop(junk);
}

#[test]
fn semantic_digest_survives_deep_chains() {
    // Linear in diagram size and iterative: a ~60k-deep conjunction
    // chain must neither overflow the stack nor take superlinear time.
    // Built bottom-up (highest variable first) so each `and` recurses
    // O(1) deep while the resulting diagram is a ~60k-deep chain.
    let mgr = BddManager::new();
    let vars: Vec<VarId> = (0..60_000).map(|i| mgr.new_var(format!("x{i}"))).collect();
    let mut f = mgr.top();
    for &v in vars.iter().rev() {
        f = mgr.var_bdd(v).and(&f);
    }
    let d1 = f.semantic_digest();
    assert_eq!(d1, f.semantic_digest());
    assert_ne!(d1, mgr.top().semantic_digest());
}
