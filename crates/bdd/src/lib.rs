//! A reduced ordered binary decision diagram (ROBDD) engine.
//!
//! This crate is the SPLLIFT reproduction's stand-in for JavaBDD/BuDDy: a
//! from-scratch BDD package with hash-consed nodes and memoized operations.
//! The paper relies on exactly four Boolean operations being fast —
//! conjunction, disjunction, negation, and the constant-time `is_false`
//! check on reduced diagrams — all of which this crate provides.
//!
//! All operations memoize through an `ite` op-cache keyed by node id.
//! Commutative operations (`and`, `or`, `xor`, `iff`) sort their two
//! operands by node id before the cache probe, so `f ∧ g` and `g ∧ f`
//! share a single cache slot — the SPLLIFT solver joins the same
//! constraint pairs from both directions constantly, and without the
//! normalization every symmetric pair would be computed twice.
//!
//! The store is **thread-safe**: managers clone cheaply (`Arc`), handles
//! are `Send + Sync`, and the unique table and op caches are sharded
//! behind fine-grained locks so the parallel Phase-1 worklist and the
//! server's shared per-program BDD space can build formulas
//! concurrently. See `manager` module docs and DESIGN.md §12.
//!
//! # Example
//!
//! ```
//! use spllift_bdd::BddManager;
//!
//! let mgr = BddManager::new();
//! let f = mgr.var("F");
//! let g = mgr.var("G");
//! // ¬F ∧ G
//! let c = f.not().and(&g);
//! assert!(!c.is_false());
//! // (¬F ∧ G) ∧ F ≡ false — contradiction detection is constant time.
//! assert!(c.and(&f).is_false());
//! ```

#![warn(missing_docs)]
mod manager;

pub use manager::{Bdd, BddBudget, BddError, BddManager, BddStats, BudgetResource, VarId};

#[cfg(test)]
mod concurrency_tests;
#[cfg(test)]
mod tests;
