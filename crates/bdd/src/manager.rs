//! The BDD node store, hash-consing unique table, and operation caches.
//!
//! The store is **thread-safe and shared by cloning**: [`BddManager`]
//! wraps an `Arc`-held [`SharedStore`] whose unique table and operation
//! caches are sharded behind fine-grained mutexes (wasmtime-style), and
//! whose node arena supports lock-free reads. Handles ([`Bdd`]) are
//! `Send + Sync`; any number of threads may build and combine formulas
//! on the same manager concurrently, and hash-consing guarantees they
//! agree on node identity — racing threads interning the same
//! `(var, low, high)` triple observe one node.
//!
//! The concurrency design (sharding, lock ordering, the determinism
//! argument for the parallel solver built on top) is documented in
//! DESIGN.md §12. The short version:
//!
//! * Nodes hash to one of [`SHARDS`] shards. Each shard owns a mutex
//!   over its slice of the unique table plus an append-only chunked
//!   arena; node ids encode `(shard, index)`, so [`node lookups`]
//!   (`SharedStore::node`) never take a lock.
//! * Op caches (`ite`/`not`/`restrict`) are sharded the same way. No
//!   lock is ever held across a recursive call or while another shard
//!   lock is taken, so the lock graph is trivially acyclic.
//! * Budget meters are atomics; exhaustion latches **exactly once**
//!   per arming through a small mutex-protected slot, and every
//!   operation short-circuits from then on without touching the memo
//!   caches (partial results computed after exhaustion are garbage).
//!
//! At a single thread the operation order, op charging, and budget
//! semantics are byte-for-byte those of the previous thread-confined
//! (`Rc<RefCell>`) store, which the committed server/chaos goldens pin.

use spllift_hash::{FastMap, FastSet, FxHasher64};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Index of a Boolean variable inside a [`BddManager`].
///
/// Variables are ordered by creation order; that order is the (fixed) BDD
/// variable order. The paper (§5) explicitly picks one ordering and leaves
/// optimization of the ordering to future work; we do the same.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Internal node index. `0` is the `false` terminal, `1` is `true`;
/// every other id encodes `(arena index << SHARD_BITS | shard) + 2`.
type NodeId = u32;

const FALSE_ID: NodeId = 0;
const TRUE_ID: NodeId = 1;
/// Pseudo-level of the terminals: below every real variable.
const TERMINAL_VAR: u32 = u32::MAX;

/// log2 of the shard count.
const SHARD_BITS: u32 = 4;
/// Number of unique-table/op-cache shards. A power of two; 16 keeps
/// contention low for the solver's worker-thread counts (≤ 8 by
/// default) while the per-manager footprint stays small — fuzzing
/// creates thousands of short-lived managers.
const SHARDS: usize = 1 << SHARD_BITS;

/// Shard an interior node id belongs to, and its index in that shard's
/// arena.
#[inline]
fn decode(id: NodeId) -> (usize, usize) {
    debug_assert!(id >= 2);
    let raw = id - 2;
    (
        (raw & (SHARDS as u32 - 1)) as usize,
        (raw >> SHARD_BITS) as usize,
    )
}

#[inline]
fn encode(shard: usize, index: usize) -> NodeId {
    let raw = ((index as u64) << SHARD_BITS) | shard as u64;
    let id = raw + 2;
    assert!(id <= u32::MAX as u64, "BDD store overflow in shard {shard}");
    id as NodeId
}

/// Shard selector: a full [`FxHasher64`] pass (its finalizer has full
/// avalanche), taking the **top** bits so the shard choice stays
/// independent of the bucket index the `FastMap` inside the shard
/// derives from the low bits of the same hash function.
#[inline]
fn shard_of<T: Hash>(key: &T) -> usize {
    let mut h = FxHasher64::default();
    key.hash(&mut h);
    (h.finish() >> (64 - SHARD_BITS)) as usize
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: u32,
    low: NodeId,
    high: NodeId,
}

/// Counters describing the size of a manager, for diagnostics and benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BddStats {
    /// Number of allocated nodes (including the two terminals).
    pub nodes: usize,
    /// Number of declared variables.
    pub vars: usize,
    /// Number of entries in the ternary `ite` cache.
    pub cache_entries: usize,
}

/// Which budgeted resource ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetResource {
    /// Nodes allocated since the budget was armed.
    Nodes,
    /// Memoized operation steps charged since the budget was armed.
    Ops,
}

impl fmt::Display for BudgetResource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetResource::Nodes => f.write_str("nodes"),
            BudgetResource::Ops => f.write_str("ops"),
        }
    }
}

/// Structured error returned when a [`BddBudget`] is exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BddError {
    /// A resource budget was exceeded; the manager is *exhausted* until
    /// the budget is re-armed or cleared, and every operation
    /// short-circuits (returning arbitrary but valid handles) without
    /// touching the memo caches.
    BudgetExceeded {
        /// The resource that ran out.
        resource: BudgetResource,
        /// The configured limit.
        limit: u64,
        /// The usage at the moment the limit was crossed.
        used: u64,
    },
}

impl fmt::Display for BddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BddError::BudgetExceeded {
                resource,
                limit,
                used,
            } => write!(f, "bdd {resource} budget exceeded: {used} > {limit}"),
        }
    }
}

impl std::error::Error for BddError {}

/// Resource limits for a [`BddManager`], metered from the moment the
/// budget is armed with [`BddManager::set_budget`].
///
/// `None` means unlimited for that resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BddBudget {
    /// Maximum nodes allocated after arming.
    pub max_nodes: Option<u64>,
    /// Maximum operation steps charged after arming.
    pub max_ops: Option<u64>,
}

impl BddBudget {
    /// A budget with no limits (metering still runs).
    pub const UNLIMITED: BddBudget = BddBudget {
        max_nodes: None,
        max_ops: None,
    };
}

/// Maximum chunks per arena shard; geometric chunk sizes
/// (`64 << chunk`), so 26 chunks cover far more than the `u32` id
/// space can address anyway.
const MAX_CHUNKS: usize = 26;
/// log2 of the first (smallest) chunk's length.
const FIRST_CHUNK_BITS: u32 = 6;

/// `(chunk, slot, chunk_len)` of arena index `i`.
#[inline]
fn chunk_of(i: usize) -> (usize, usize, usize) {
    let adj = (i >> FIRST_CHUNK_BITS) + 1;
    let k = (usize::BITS - 1 - adj.leading_zeros()) as usize;
    let start = ((1usize << k) - 1) << FIRST_CHUNK_BITS;
    (k, i - start, 1usize << (FIRST_CHUNK_BITS as usize + k))
}

/// One shard's append-only node storage: a table of geometrically
/// growing chunks. Writes happen only under the owning shard's unique
/// -table mutex; reads take no lock at all.
///
/// # Safety argument (lock-free reads)
///
/// A slot is written exactly once, *before* its node id is published:
/// the writer holds the shard mutex, writes the slot, stores `len` with
/// `Release`, inserts the id into the unique table, and releases the
/// mutex. A reader can only name the slot through a published id, which
/// it obtained via a happens-before edge with the publication (the
/// shard mutex, a thread spawn/join, a channel send, or another lock) —
/// so the non-atomic slot read cannot race the write. Chunk pointers
/// are published with `Release` and loaded with `Acquire` for the same
/// reason.
struct Arena {
    chunks: [AtomicPtr<Node>; MAX_CHUNKS],
    /// Number of initialized slots. Only the lock-holding writer
    /// advances it; `Release` so readers that learned an index through
    /// any acquire-path see the slot initialized.
    len: AtomicUsize,
}

impl Arena {
    fn new() -> Arena {
        Arena {
            chunks: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
            len: AtomicUsize::new(0),
        }
    }

    /// Appends a node; caller must hold the owning shard's mutex.
    fn push(&self, node: Node) -> usize {
        let i = self.len.load(Ordering::Relaxed);
        let (k, slot, cap) = chunk_of(i);
        let mut ptr = self.chunks[k].load(Ordering::Acquire);
        if ptr.is_null() {
            let chunk = vec![
                Node {
                    var: TERMINAL_VAR,
                    low: FALSE_ID,
                    high: FALSE_ID,
                };
                cap
            ]
            .into_boxed_slice();
            ptr = Box::into_raw(chunk).cast::<Node>();
            self.chunks[k].store(ptr, Ordering::Release);
        }
        // SAFETY: `slot < cap` by construction; this thread is the only
        // writer (shard mutex held) and the slot is unpublished.
        unsafe { ptr.add(slot).write(node) };
        self.len.store(i + 1, Ordering::Release);
        i
    }

    /// Lock-free read of an initialized slot (see the safety argument
    /// on [`Arena`]).
    #[inline]
    fn get(&self, i: usize) -> Node {
        let (k, slot, _) = chunk_of(i);
        let ptr = self.chunks[k].load(Ordering::Acquire);
        debug_assert!(!ptr.is_null() && i < self.len.load(Ordering::Acquire));
        // SAFETY: the id naming `i` was published after the slot write
        // (happens-before via the publication edge), and slots are
        // written exactly once.
        unsafe { *ptr.add(slot) }
    }
}

impl Drop for Arena {
    fn drop(&mut self) {
        for (k, chunk) in self.chunks.iter().enumerate() {
            let ptr = chunk.load(Ordering::Acquire);
            if !ptr.is_null() {
                let cap = 1usize << (FIRST_CHUNK_BITS as usize + k);
                // SAFETY: the pointer came from `Box::into_raw` of a
                // boxed slice of exactly `cap` nodes, and `drop` has
                // exclusive access.
                unsafe { drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(ptr, cap))) };
            }
        }
    }
}

/// The shared, thread-safe store behind every clone of a [`BddManager`].
struct SharedStore {
    /// Sharded hash-consing table: `(var, low, high) → id`. Each shard's
    /// mutex also guards its `arenas` entry for writing.
    unique: [Mutex<FastMap<Node, NodeId>>; SHARDS],
    /// Per-shard node storage; reads are lock-free.
    arenas: [Arena; SHARDS],
    ite_cache: [Mutex<FastMap<(NodeId, NodeId, NodeId), NodeId>>; SHARDS],
    not_cache: [Mutex<FastMap<NodeId, NodeId>>; SHARDS],
    restrict_cache: [Mutex<FastMap<(NodeId, u32, bool), NodeId>>; SHARDS],
    var_names: RwLock<Vec<String>>,
    /// Total allocated nodes, terminals included (monotone while a
    /// budget is armed; only `set_budget` resets the baseline).
    node_count: AtomicU64,
    /// `u64::MAX` when un-budgeted, so the hot-path checks stay a single
    /// integer compare.
    max_nodes: AtomicU64,
    max_ops: AtomicU64,
    /// Node count when the budget was last armed; the node budget meters
    /// growth, not absolute store size.
    baseline_nodes: AtomicU64,
    ops: AtomicU64,
    /// Fast-path exhaustion flag. `true` implies `exhausted` holds the
    /// latched error (the flag is set *after* the error, both inside
    /// the `exhausted` critical section).
    exhausted_flag: AtomicBool,
    /// Once set, every operation short-circuits without caching: partial
    /// results computed after exhaustion are garbage and must never be
    /// memoized where a later (re-budgeted) solve could read them.
    /// Latched at most once per arming (see [`SharedStore::latch`]).
    exhausted: Mutex<Option<BddError>>,
    /// How many times exhaustion latched since the store was created —
    /// diagnostics for the exactly-once contract under concurrency.
    latches: AtomicU64,
}

impl SharedStore {
    fn new() -> Self {
        SharedStore {
            unique: std::array::from_fn(|_| Mutex::new(FastMap::default())),
            arenas: std::array::from_fn(|_| Arena::new()),
            ite_cache: std::array::from_fn(|_| Mutex::new(FastMap::default())),
            not_cache: std::array::from_fn(|_| Mutex::new(FastMap::default())),
            restrict_cache: std::array::from_fn(|_| Mutex::new(FastMap::default())),
            var_names: RwLock::new(Vec::new()),
            node_count: AtomicU64::new(2),
            max_nodes: AtomicU64::new(u64::MAX),
            max_ops: AtomicU64::new(u64::MAX),
            baseline_nodes: AtomicU64::new(2),
            ops: AtomicU64::new(0),
            exhausted_flag: AtomicBool::new(false),
            exhausted: Mutex::new(None),
            latches: AtomicU64::new(0),
        }
    }

    #[inline]
    fn is_exhausted(&self) -> bool {
        self.exhausted_flag.load(Ordering::Acquire)
    }

    /// Records `err` as the budget-exhaustion cause — once. Racing
    /// threads that cross a limit simultaneously all call this, but
    /// only the first store wins; the rest observe the flag and
    /// short-circuit. Never called with a shard lock held.
    fn latch(&self, err: BddError) {
        let mut slot = self.exhausted.lock().expect("exhaustion lock");
        if slot.is_none() {
            *slot = Some(err);
            self.latches.fetch_add(1, Ordering::Relaxed);
            self.exhausted_flag.store(true, Ordering::Release);
        }
    }

    /// Charges one operation step; returns `true` if the store is (now)
    /// exhausted and the caller must short-circuit without caching.
    #[inline]
    fn charge_op(&self) -> bool {
        if self.is_exhausted() {
            return true;
        }
        let used = self.ops.fetch_add(1, Ordering::Relaxed) + 1;
        let limit = self.max_ops.load(Ordering::Relaxed);
        if used > limit {
            self.latch(BddError::BudgetExceeded {
                resource: BudgetResource::Ops,
                limit,
                used,
            });
            return true;
        }
        false
    }

    fn mk(&self, var: u32, low: NodeId, high: NodeId) -> NodeId {
        if low == high {
            return low;
        }
        let node = Node { var, low, high };
        let shard = shard_of(&node);
        let mut map = self.unique[shard].lock().expect("unique shard lock");
        if let Some(&id) = map.get(&node) {
            return id;
        }
        let grown = self
            .node_count
            .load(Ordering::Relaxed)
            .saturating_sub(self.baseline_nodes.load(Ordering::Relaxed));
        let limit = self.max_nodes.load(Ordering::Relaxed);
        if grown >= limit {
            drop(map);
            self.latch(BddError::BudgetExceeded {
                resource: BudgetResource::Nodes,
                limit,
                used: grown + 1,
            });
            return low;
        }
        let id = encode(shard, self.arenas[shard].push(node));
        map.insert(node, id);
        self.node_count.fetch_add(1, Ordering::Release);
        id
    }

    /// Lock-free node read; terminals are materialized, not stored.
    #[inline]
    fn node(&self, id: NodeId) -> Node {
        if id < 2 {
            return Node {
                var: TERMINAL_VAR,
                low: id,
                high: id,
            };
        }
        let (shard, index) = decode(id);
        self.arenas[shard].get(index)
    }

    /// Cofactor of `f` w.r.t. the decision variable `var`.
    fn cofactor(&self, f: NodeId, var: u32, value: bool) -> NodeId {
        let n = self.node(f);
        if n.var == var {
            if value {
                n.high
            } else {
                n.low
            }
        } else {
            f
        }
    }

    fn ite(&self, f: NodeId, g: NodeId, h: NodeId) -> NodeId {
        // Terminal cases.
        if f == TRUE_ID {
            return g;
        }
        if f == FALSE_ID {
            return h;
        }
        if g == h {
            return g;
        }
        if g == TRUE_ID && h == FALSE_ID {
            return f;
        }
        let key = (f, g, h);
        let cache = &self.ite_cache[shard_of(&key)];
        if let Some(&r) = cache.lock().expect("ite cache lock").get(&key) {
            return r;
        }
        if self.charge_op() {
            return FALSE_ID;
        }
        let v = self.node(f).var.min(self.node(g).var).min(self.node(h).var);
        debug_assert_ne!(v, TERMINAL_VAR);
        let (f0, f1) = (self.cofactor(f, v, false), self.cofactor(f, v, true));
        let (g0, g1) = (self.cofactor(g, v, false), self.cofactor(g, v, true));
        let (h0, h1) = (self.cofactor(h, v, false), self.cofactor(h, v, true));
        let low = self.ite(f0, g0, h0);
        let high = self.ite(f1, g1, h1);
        if self.is_exhausted() {
            // The sub-results are garbage; do not intern or memoize them.
            return FALSE_ID;
        }
        let r = self.mk(v, low, high);
        if self.is_exhausted() {
            return FALSE_ID;
        }
        cache.lock().expect("ite cache lock").insert(key, r);
        r
    }

    /// Commutative conjunction: operands are sorted by node id so the
    /// symmetric query shares one `ite_cache` slot (`a.and(b)` and
    /// `b.and(a)` hit the same `(f, g, 0)` triple).
    fn and(&self, f: NodeId, g: NodeId) -> NodeId {
        let (f, g) = (f.min(g), f.max(g));
        self.ite(f, g, FALSE_ID)
    }

    /// Commutative disjunction; see [`SharedStore::and`] for the operand
    /// sort.
    fn or(&self, f: NodeId, g: NodeId) -> NodeId {
        let (f, g) = (f.min(g), f.max(g));
        self.ite(f, TRUE_ID, g)
    }

    /// Commutative exclusive-or; see [`SharedStore::and`].
    fn xor(&self, f: NodeId, g: NodeId) -> NodeId {
        let (f, g) = (f.min(g), f.max(g));
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Commutative biconditional; see [`SharedStore::and`].
    fn iff(&self, f: NodeId, g: NodeId) -> NodeId {
        let (f, g) = (f.min(g), f.max(g));
        let ng = self.not(g);
        self.ite(f, g, ng)
    }

    fn not_cached(&self, id: NodeId) -> Option<NodeId> {
        match id {
            FALSE_ID => Some(TRUE_ID),
            TRUE_ID => Some(FALSE_ID),
            _ => self.not_cache[shard_of(&id)]
                .lock()
                .expect("not cache lock")
                .get(&id)
                .copied(),
        }
    }

    /// Negation, fully memoized both ways (`¬f → r` and `¬r → f`).
    ///
    /// Iterative (explicit work stack): a chain-shaped diagram is as
    /// deep as the variable count, and the recursive form blew the call
    /// stack around ~100k variables.
    fn not(&self, f: NodeId) -> NodeId {
        if let Some(r) = self.not_cached(f) {
            return r;
        }
        let mut stack = vec![f];
        while let Some(&id) = stack.last() {
            if self.charge_op() {
                return f;
            }
            if self.not_cached(id).is_some() {
                stack.pop();
                continue;
            }
            let n = self.node(id);
            match (self.not_cached(n.low), self.not_cached(n.high)) {
                (Some(low), Some(high)) => {
                    let r = self.mk(n.var, low, high);
                    if self.is_exhausted() {
                        return f;
                    }
                    self.not_cache[shard_of(&id)]
                        .lock()
                        .expect("not cache lock")
                        .insert(id, r);
                    self.not_cache[shard_of(&r)]
                        .lock()
                        .expect("not cache lock")
                        .insert(r, id);
                    stack.pop();
                }
                (low, high) => {
                    if low.is_none() {
                        stack.push(n.low);
                    }
                    if high.is_none() {
                        stack.push(n.high);
                    }
                }
            }
        }
        self.not_cached(f).expect("negation computed for the root")
    }

    fn restrict_cached(&self, id: NodeId, var: u32, value: bool) -> Option<NodeId> {
        let n = self.node(id);
        if n.var == TERMINAL_VAR || n.var > var {
            return Some(id);
        }
        if n.var == var {
            return Some(if value { n.high } else { n.low });
        }
        let key = (id, var, value);
        self.restrict_cache[shard_of(&key)]
            .lock()
            .expect("restrict cache lock")
            .get(&key)
            .copied()
    }

    /// Cofactor of `f` with `var` fixed to `value`, memoized in
    /// `restrict_cache`.
    ///
    /// Without the memo, a shared sub-DAG was re-walked once per *path*
    /// from the root — exponential on dense diagrams (e.g. parity).
    /// Iterative for the same deep-chain reason as [`SharedStore::not`].
    fn restrict(&self, f: NodeId, var: u32, value: bool) -> NodeId {
        if let Some(r) = self.restrict_cached(f, var, value) {
            return r;
        }
        let mut stack = vec![f];
        while let Some(&id) = stack.last() {
            if self.charge_op() {
                return f;
            }
            if self.restrict_cached(id, var, value).is_some() {
                stack.pop();
                continue;
            }
            let n = self.node(id);
            match (
                self.restrict_cached(n.low, var, value),
                self.restrict_cached(n.high, var, value),
            ) {
                (Some(low), Some(high)) => {
                    let r = self.mk(n.var, low, high);
                    if self.is_exhausted() {
                        return f;
                    }
                    let key = (id, var, value);
                    self.restrict_cache[shard_of(&key)]
                        .lock()
                        .expect("restrict cache lock")
                        .insert(key, r);
                    stack.pop();
                }
                (low, high) => {
                    if low.is_none() {
                        stack.push(n.low);
                    }
                    if high.is_none() {
                        stack.push(n.high);
                    }
                }
            }
        }
        self.restrict_cached(f, var, value)
            .expect("restriction computed for the root")
    }

    /// Number of satisfying assignments over the first `nvars` variables.
    fn sat_count(&self, f: NodeId, nvars: u32) -> u128 {
        fn go(
            store: &SharedStore,
            f: NodeId,
            nvars: u32,
            memo: &mut FastMap<NodeId, u128>,
        ) -> u128 {
            if f == FALSE_ID {
                return 0;
            }
            if f == TRUE_ID {
                return 1;
            }
            if let Some(&c) = memo.get(&f) {
                return c;
            }
            let n = store.node(f);
            let skip = |child: NodeId| -> u32 {
                let cvar = store.node(child).var;
                let next = if cvar == TERMINAL_VAR { nvars } else { cvar };
                next - n.var - 1
            };
            let lo = go(store, n.low, nvars, memo) << skip(n.low);
            let hi = go(store, n.high, nvars, memo) << skip(n.high);
            let c = lo + hi;
            memo.insert(f, c);
            c
        }
        if f == FALSE_ID {
            return 0;
        }
        let mut memo = FastMap::default();
        let top = self.node(f).var;
        let leading = if top == TERMINAL_VAR { nvars } else { top };
        go(self, f, nvars, &mut memo) << leading
    }

    fn one_sat(&self, f: NodeId) -> Option<Vec<(u32, bool)>> {
        if f == FALSE_ID {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = f;
        while cur != TRUE_ID {
            let n = self.node(cur);
            if n.low != FALSE_ID {
                path.push((n.var, false));
                cur = n.low;
            } else {
                path.push((n.var, true));
                cur = n.high;
            }
        }
        Some(path)
    }

    fn eval(&self, f: NodeId, assignment: &dyn Fn(u32) -> bool) -> bool {
        let mut cur = f;
        loop {
            match cur {
                FALSE_ID => return false,
                TRUE_ID => return true,
                _ => {
                    let n = self.node(cur);
                    cur = if assignment(n.var) { n.high } else { n.low };
                }
            }
        }
    }

    fn support(&self, f: NodeId) -> Vec<u32> {
        let mut seen = FastSet::default();
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![f];
        while let Some(id) = stack.pop() {
            if id == FALSE_ID || id == TRUE_ID || !seen.insert(id) {
                continue;
            }
            let n = self.node(id);
            vars.insert(n.var);
            stack.push(n.low);
            stack.push(n.high);
        }
        vars.into_iter().collect()
    }
}

/// A shared, thread-safe BDD node store.
///
/// Cloning a manager is cheap (it is reference-counted); all [`Bdd`] handles
/// created from clones of the same manager are interoperable, across
/// threads as well — the manager is `Send + Sync`. Handles from
/// *different* managers must not be mixed.
///
/// # Example
///
/// ```
/// use spllift_bdd::BddManager;
/// let mgr = BddManager::new();
/// let a = mgr.var("A");
/// let b = mgr.var("B");
/// assert_eq!(a.or(&b), b.or(&a));
/// ```
#[derive(Clone)]
pub struct BddManager {
    store: Arc<SharedStore>,
}

impl fmt::Debug for BddManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        f.debug_struct("BddManager")
            .field("vars", &stats.vars)
            .field("nodes", &stats.nodes)
            .finish()
    }
}

impl Default for BddManager {
    fn default() -> Self {
        Self::new()
    }
}

impl BddManager {
    /// Creates an empty manager with no variables.
    pub fn new() -> Self {
        BddManager {
            store: Arc::new(SharedStore::new()),
        }
    }

    /// Declares a fresh variable named `name` and returns it as a formula.
    ///
    /// The variable is appended at the bottom of the current variable order.
    pub fn var(&self, name: impl Into<String>) -> Bdd {
        let id = self.new_var(name);
        self.var_bdd(id)
    }

    /// Declares a fresh variable and returns its [`VarId`].
    pub fn new_var(&self, name: impl Into<String>) -> VarId {
        let mut names = self.store.var_names.write().expect("var_names lock");
        let idx = names.len() as u32;
        names.push(name.into());
        VarId(idx)
    }

    /// Returns the formula for an already-declared variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` was not declared by this manager.
    pub fn var_bdd(&self, var: VarId) -> Bdd {
        {
            let names = self.store.var_names.read().expect("var_names lock");
            assert!(
                (var.0 as usize) < names.len(),
                "variable {var} not declared in this manager"
            );
        }
        let id = self.store.mk(var.0, FALSE_ID, TRUE_ID);
        self.wrap(id)
    }

    /// The number of declared variables.
    pub fn num_vars(&self) -> usize {
        self.store.var_names.read().expect("var_names lock").len()
    }

    /// The name a variable was declared with.
    pub fn var_name(&self, var: VarId) -> String {
        self.store.var_names.read().expect("var_names lock")[var.0 as usize].clone()
    }

    /// The constant `true` formula.
    pub fn top(&self) -> Bdd {
        self.wrap(TRUE_ID)
    }

    /// The constant `false` formula.
    pub fn bottom(&self) -> Bdd {
        self.wrap(FALSE_ID)
    }

    /// Current size counters.
    ///
    /// Under concurrency the three counters are each read atomically
    /// (`nodes` with `Acquire`, the cache tally shard-by-shard under
    /// each shard's lock), so every reported number was true at some
    /// point during the call and `nodes` is monotone across snapshots
    /// while no re-arm intervenes — the consistency contract the
    /// governance read path relies on.
    pub fn stats(&self) -> BddStats {
        let s = &self.store;
        BddStats {
            nodes: s.node_count.load(Ordering::Acquire) as usize,
            vars: s.var_names.read().expect("var_names lock").len(),
            cache_entries: s
                .ite_cache
                .iter()
                .map(|m| m.lock().expect("ite cache lock").len())
                .sum(),
        }
    }

    /// Arms (or re-arms) a resource budget: resets the op meter, takes the
    /// current node count as the baseline for the node budget, and clears
    /// any previous exhaustion.
    ///
    /// While a budget is exceeded the manager is *exhausted*: operations
    /// return arbitrary but valid handles, never touch the memo caches,
    /// and [`BddManager::budget_status`] reports the structured error.
    /// Results produced while exhausted are meaningless and must be
    /// discarded by the caller.
    ///
    /// Arming is not synchronized against in-flight operations: callers
    /// arm *before* starting a (possibly multi-threaded) solve and
    /// disarm after it, exactly like the governed ladder does.
    pub fn set_budget(&self, budget: BddBudget) {
        let s = &self.store;
        let mut slot = s.exhausted.lock().expect("exhaustion lock");
        s.max_nodes
            .store(budget.max_nodes.unwrap_or(u64::MAX), Ordering::SeqCst);
        s.max_ops
            .store(budget.max_ops.unwrap_or(u64::MAX), Ordering::SeqCst);
        s.baseline_nodes
            .store(s.node_count.load(Ordering::SeqCst), Ordering::SeqCst);
        s.ops.store(0, Ordering::SeqCst);
        *slot = None;
        s.exhausted_flag.store(false, Ordering::SeqCst);
    }

    /// Removes any budget and clears exhaustion; operations run unbounded
    /// again (e.g. for rendering results after a successful solve).
    pub fn clear_budget(&self) {
        self.set_budget(BddBudget::UNLIMITED);
    }

    /// `Ok(())` if no budget has been exceeded since the last arm,
    /// otherwise the structured error describing which resource ran out.
    ///
    /// Reads the latched error under its mutex, so a status observed
    /// `Err` can never revert to `Ok` (or change its cause) until the
    /// budget is re-armed, no matter how many threads raced the latch.
    pub fn budget_status(&self) -> Result<(), BddError> {
        match *self.store.exhausted.lock().expect("exhaustion lock") {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Charges `n` operation steps against the op budget without doing any
    /// work. This is the deterministic fault-injection hook: a chaos
    /// harness can burn the budget down to force `BudgetExceeded` at an
    /// exact, reproducible point.
    pub fn charge_ops(&self, n: u64) {
        let s = &self.store;
        if s.is_exhausted() {
            return;
        }
        // Saturating add via CAS: the chaos hook charges `u64::MAX`, and
        // a wrapping `fetch_add` would cycle the meter back under budget.
        let mut cur = s.ops.load(Ordering::Relaxed);
        let used = loop {
            let next = cur.saturating_add(n);
            match s
                .ops
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break next,
                Err(seen) => cur = seen,
            }
        };
        let limit = s.max_ops.load(Ordering::Relaxed);
        if used > limit {
            s.latch(BddError::BudgetExceeded {
                resource: BudgetResource::Ops,
                limit,
                used,
            });
        }
    }

    /// Operation steps charged since the budget was last armed.
    pub fn ops_used(&self) -> u64 {
        self.store.ops.load(Ordering::Acquire)
    }

    /// Nodes allocated since the budget was last armed.
    ///
    /// Baseline is read before the live count, and the subtraction
    /// saturates, so a concurrent re-arm can shrink the answer but
    /// never underflow it.
    pub fn nodes_since_arm(&self) -> u64 {
        let baseline = self.store.baseline_nodes.load(Ordering::Acquire);
        self.store
            .node_count
            .load(Ordering::Acquire)
            .saturating_sub(baseline)
    }

    /// How many times budget exhaustion has latched over the lifetime of
    /// this store — at most once per arming, no matter how many threads
    /// race the limit. Diagnostic for the concurrency tests.
    #[cfg(test)]
    pub(crate) fn exhaustion_latches(&self) -> u64 {
        self.store.latches.load(Ordering::SeqCst)
    }

    fn wrap(&self, id: NodeId) -> Bdd {
        Bdd {
            mgr: self.clone(),
            id,
        }
    }

    fn same_store(&self, other: &BddManager) -> bool {
        Arc::ptr_eq(&self.store, &other.store)
    }
}

// `SharedStore` is `Send + Sync` by composition (mutexes, atomics, and
// `AtomicPtr`-published write-once arena chunks); pin that here so an
// accidental `Rc`/`Cell` regression fails to compile.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SharedStore>();
    assert_send_sync::<BddManager>();
    assert_send_sync::<Bdd>();
};

/// A Boolean formula, represented as a handle into a [`BddManager`].
///
/// Because diagrams are reduced and hash-consed, semantic equality of
/// formulas coincides with handle equality ([`PartialEq`] is O(1)), and
/// [`Bdd::is_false`] / [`Bdd::is_true`] are constant-time — the property the
/// paper exploits for early termination (§4.2). Handles are
/// `Send + Sync`; threads sharing a manager agree on node identity.
#[derive(Clone)]
pub struct Bdd {
    mgr: BddManager,
    id: NodeId,
}

impl PartialEq for Bdd {
    fn eq(&self, other: &Self) -> bool {
        debug_assert!(
            self.mgr.same_store(&other.mgr),
            "comparing BDDs from different managers"
        );
        self.id == other.id
    }
}

impl Eq for Bdd {}

impl std::hash::Hash for Bdd {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl fmt::Debug for Bdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bdd({})", self.to_cube_string())
    }
}

impl fmt::Display for Bdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_cube_string())
    }
}

macro_rules! binary_op {
    ($(#[$doc:meta])* $name:ident, |$s:ident, $f:ident, $g:ident| $body:expr) => {
        $(#[$doc])*
        #[must_use]
        pub fn $name(&self, other: &Bdd) -> Bdd {
            debug_assert!(
                self.mgr.same_store(&other.mgr),
                "combining BDDs from different managers"
            );
            let id = {
                let $s = &*self.mgr.store;
                let $f = self.id;
                let $g = other.id;
                $body
            };
            self.mgr.wrap(id)
        }
    };
}

impl Bdd {
    /// The manager this formula belongs to.
    pub fn manager(&self) -> &BddManager {
        &self.mgr
    }

    /// `true` iff this formula is the constant `false`. Constant time.
    pub fn is_false(&self) -> bool {
        self.id == FALSE_ID
    }

    /// `true` iff this formula is the constant `true`. Constant time.
    pub fn is_true(&self) -> bool {
        self.id == TRUE_ID
    }

    binary_op!(
        /// Conjunction `self ∧ other`.
        ///
        /// Commutative calls are normalized (operands sorted by node
        /// id), so `a.and(b)` and `b.and(a)` share one op-cache slot.
        and, |s, f, g| s.and(f, g)
    );
    binary_op!(
        /// Disjunction `self ∨ other`. Commutatively normalized like
        /// [`Bdd::and`].
        or, |s, f, g| s.or(f, g)
    );
    binary_op!(
        /// Exclusive or `self ⊕ other`. Commutatively normalized like
        /// [`Bdd::and`].
        xor, |s, f, g| s.xor(f, g)
    );
    binary_op!(
        /// Implication `self → other`.
        implies, |s, f, g| s.ite(f, g, TRUE_ID)
    );
    binary_op!(
        /// Biconditional `self ↔ other`. Commutatively normalized like
        /// [`Bdd::and`].
        iff, |s, f, g| s.iff(f, g)
    );

    /// Negation `¬self`.
    #[must_use]
    pub fn not(&self) -> Bdd {
        let id = self.mgr.store.not(self.id);
        self.mgr.wrap(id)
    }

    /// If-then-else `if self then t else e`.
    #[must_use]
    pub fn ite(&self, t: &Bdd, e: &Bdd) -> Bdd {
        debug_assert!(self.mgr.same_store(&t.mgr) && self.mgr.same_store(&e.mgr));
        let id = self.mgr.store.ite(self.id, t.id, e.id);
        self.mgr.wrap(id)
    }

    /// The cofactor of this formula with `var` fixed to `value`.
    #[must_use]
    pub fn restrict(&self, var: VarId, value: bool) -> Bdd {
        let id = self.mgr.store.restrict(self.id, var.0, value);
        self.mgr.wrap(id)
    }

    /// Existential quantification `∃var. self`.
    #[must_use]
    pub fn exists(&self, var: VarId) -> Bdd {
        let lo = self.restrict(var, false);
        let hi = self.restrict(var, true);
        lo.or(&hi)
    }

    /// Universal quantification `∀var. self`.
    #[must_use]
    pub fn forall(&self, var: VarId) -> Bdd {
        let lo = self.restrict(var, false);
        let hi = self.restrict(var, true);
        lo.and(&hi)
    }

    /// Existentially quantifies every variable in `vars` (projection onto
    /// the remaining variables) — e.g. projecting a feature-model
    /// constraint onto the reachable features.
    #[must_use]
    pub fn exists_many(&self, vars: &[VarId]) -> Bdd {
        vars.iter().fold(self.clone(), |acc, &v| acc.exists(v))
    }

    /// `true` iff `self → other` is a tautology (semantic entailment).
    pub fn entails(&self, other: &Bdd) -> bool {
        self.implies(other).is_true()
    }

    /// Number of satisfying assignments over the manager's full variable set.
    ///
    /// # Panics
    ///
    /// Panics if more than 127 variables are declared (the count is held in
    /// a `u128`).
    pub fn sat_count(&self) -> u128 {
        let nvars = self.mgr.num_vars() as u32;
        assert!(nvars <= 127, "sat_count supports at most 127 variables");
        self.mgr.store.sat_count(self.id, nvars)
    }

    /// Number of satisfying assignments counting only the first
    /// `nvars` variables of the order (the rest must not occur in `self`).
    ///
    /// The support probe and the count walk the same immutable diagram
    /// (nodes are append-only), so the two reads are mutually consistent
    /// even while other threads grow the store.
    ///
    /// # Panics
    ///
    /// Panics if the formula depends on a variable `≥ nvars`. This is
    /// checked in release builds too: a `debug_assert!` here once let
    /// release binaries silently return a wrong model count (the
    /// skip-count arithmetic underflows for out-of-range variables).
    pub fn sat_count_over(&self, nvars: u32) -> u128 {
        assert!(
            self.support().iter().all(|v| v.0 < nvars),
            "sat_count_over({nvars}) on a formula with support {:?}",
            self.support()
        );
        self.mgr.store.sat_count(self.id, nvars)
    }

    /// One satisfying partial assignment, or `None` if unsatisfiable.
    ///
    /// Variables not mentioned may take either value.
    pub fn one_sat(&self) -> Option<Vec<(VarId, bool)>> {
        self.mgr
            .store
            .one_sat(self.id)
            .map(|v| v.into_iter().map(|(i, b)| (VarId(i), b)).collect())
    }

    /// Evaluates the formula under a total assignment.
    pub fn eval(&self, assignment: impl Fn(VarId) -> bool) -> bool {
        self.mgr.store.eval(self.id, &|v| assignment(VarId(v)))
    }

    /// The set of variables this formula depends on, in order.
    pub fn support(&self) -> Vec<VarId> {
        self.mgr
            .store
            .support(self.id)
            .into_iter()
            .map(VarId)
            .collect()
    }

    /// Number of internal nodes of this diagram (terminals excluded).
    pub fn node_count(&self) -> usize {
        let s = &self.mgr.store;
        let mut seen = FastSet::default();
        let mut stack = vec![self.id];
        let mut count = 0usize;
        while let Some(id) = stack.pop() {
            if id == FALSE_ID || id == TRUE_ID || !seen.insert(id) {
                continue;
            }
            count += 1;
            let n = s.node(id);
            stack.push(n.low);
            stack.push(n.high);
        }
        count
    }

    /// A 64-bit digest of the Boolean function this diagram denotes.
    ///
    /// The digest is computed bottom-up over the *structure* of the
    /// reduced diagram — `mix(var, digest(low), digest(high))` with
    /// fixed constants for the terminals — so it depends only on the
    /// function and the variable order, never on node ids, allocation
    /// order, or how many threads built the diagram. Because diagrams
    /// are reduced and hash-consed, equal functions have equal digests
    /// by construction, and (modulo 64-bit collisions) unequal
    /// functions differ.
    ///
    /// Cost is **linear in the diagram size** (memoized, iterative —
    /// safe on ~100k-deep chains). This is the digest the benchmark
    /// emitters hash solutions with: the older cube-string rendering
    /// ([`Bdd::to_cube_string`]) is exponential in the diagram size and
    /// skewed `BENCH_solver.json` wall times by orders of magnitude on
    /// subjects with rich feature models (BerkeleyDB-class).
    pub fn semantic_digest(&self) -> u64 {
        const FALSE_DIGEST: u64 = 0x9e37_79b9_7f4a_7c15;
        const TRUE_DIGEST: u64 = 0xd1b5_4a32_d192_ed03;
        fn mix(var: u32, lo: u64, hi: u64) -> u64 {
            // SplitMix64-style finalizer over an asymmetric combination
            // (lo and hi enter with different rotations/multipliers, so
            // swapped branches change the digest).
            let mut z = (var as u64 + 1).wrapping_mul(0xff51_afd7_ed55_8ccd)
                ^ lo.rotate_left(17).wrapping_mul(0xc4ce_b9fe_1a85_ec53)
                ^ hi.rotate_left(43).wrapping_mul(0x2545_f491_4f6c_dd1d);
            z ^= z >> 30;
            z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z ^= z >> 27;
            z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        let s = &*self.mgr.store;
        let mut memo: FastMap<NodeId, u64> = FastMap::default();
        memo.insert(FALSE_ID, FALSE_DIGEST);
        memo.insert(TRUE_ID, TRUE_DIGEST);
        let mut stack = vec![self.id];
        while let Some(&top) = stack.last() {
            if memo.contains_key(&top) {
                stack.pop();
                continue;
            }
            let n = s.node(top);
            match (memo.get(&n.low).copied(), memo.get(&n.high).copied()) {
                (Some(lo), Some(hi)) => {
                    memo.insert(top, mix(n.var, lo, hi));
                    stack.pop();
                }
                (lo, hi) => {
                    if lo.is_none() {
                        stack.push(n.low);
                    }
                    if hi.is_none() {
                        stack.push(n.high);
                    }
                }
            }
        }
        memo[&self.id]
    }

    /// Renders the formula as a sum of cubes (disjunction of conjunctions of
    /// literals), e.g. `(!F & G & !H)`. `true`/`false` for the constants.
    ///
    /// Intended for small constraint formulas (feature constraints); the
    /// output size can be exponential in the diagram size.
    ///
    /// The rendering walks the diagram in variable order, so it depends
    /// only on the Boolean function — not on node ids or on how many
    /// threads built the diagram. This is what makes solve outputs
    /// byte-identical across `--threads` settings.
    pub fn to_cube_string(&self) -> String {
        if self.is_true() {
            return "true".into();
        }
        if self.is_false() {
            return "false".into();
        }
        let s = &*self.mgr.store;
        let names = s.var_names.read().expect("var_names lock");
        let mut cubes: Vec<String> = Vec::new();
        let mut path: Vec<(u32, bool)> = Vec::new();
        fn go(
            s: &SharedStore,
            names: &[String],
            id: NodeId,
            path: &mut Vec<(u32, bool)>,
            cubes: &mut Vec<String>,
        ) {
            if id == FALSE_ID {
                return;
            }
            if id == TRUE_ID {
                let lits: Vec<String> = path
                    .iter()
                    .map(|&(v, b)| {
                        let name = &names[v as usize];
                        if b {
                            name.clone()
                        } else {
                            format!("!{name}")
                        }
                    })
                    .collect();
                if lits.is_empty() {
                    cubes.push("true".into());
                } else {
                    cubes.push(format!("({})", lits.join(" & ")));
                }
                return;
            }
            let n = s.node(id);
            path.push((n.var, false));
            go(s, names, n.low, path, cubes);
            path.pop();
            path.push((n.var, true));
            go(s, names, n.high, path, cubes);
            path.pop();
        }
        go(s, &names, self.id, &mut path, &mut cubes);
        cubes.join(" | ")
    }

    /// Renders this diagram in Graphviz DOT format.
    ///
    /// Node labels use raw node ids, which depend on allocation order —
    /// stable for a fixed single-threaded build sequence, but **not**
    /// part of the cross-thread determinism contract (unlike
    /// [`Bdd::to_cube_string`]).
    pub fn to_dot(&self) -> String {
        let s = &*self.mgr.store;
        let names = s.var_names.read().expect("var_names lock");
        let mut out = String::from("digraph bdd {\n  rankdir=TB;\n");
        out.push_str("  f [shape=box,label=\"0\"];\n  t [shape=box,label=\"1\"];\n");
        let mut seen = FastSet::default();
        let mut stack = vec![self.id];
        let node_name = |id: NodeId| -> String {
            match id {
                FALSE_ID => "f".into(),
                TRUE_ID => "t".into(),
                _ => format!("n{id}"),
            }
        };
        while let Some(id) = stack.pop() {
            if id == FALSE_ID || id == TRUE_ID || !seen.insert(id) {
                continue;
            }
            let n = s.node(id);
            out.push_str(&format!("  n{id} [label=\"{}\"];\n", names[n.var as usize]));
            out.push_str(&format!(
                "  n{id} -> {} [style=dashed];\n",
                node_name(n.low)
            ));
            out.push_str(&format!("  n{id} -> {};\n", node_name(n.high)));
            stack.push(n.low);
            stack.push(n.high);
        }
        out.push_str("}\n");
        out
    }
}
