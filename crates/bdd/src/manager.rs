//! The BDD node store, hash-consing unique table, and operation caches.
//!
//! A manager is shared by cloning: [`BddManager`] wraps its state in
//! `Rc<RefCell<…>>`, which makes it deliberately **`!Send` and
//! `!Sync`** — every constraint handle is meaningful only relative to
//! its manager's unique table, so letting handles cross threads would
//! turn node identity (what hash-consing buys) into a data race. The
//! compiler enforces the thread-confinement rule stated in DESIGN.md
//! §6: parallel drivers give each worker its own manager, and the
//! analysis server pins each session's manager to one executor shard
//! thread (DESIGN.md §9). Anything that must cross threads — cached
//! solutions, protocol responses — is *rendered* first (constraint
//! strings and manager-free expression trees), never shipped as live
//! node handles.

use spllift_hash::{FastMap, FastSet};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Index of a Boolean variable inside a [`BddManager`].
///
/// Variables are ordered by creation order; that order is the (fixed) BDD
/// variable order. The paper (§5) explicitly picks one ordering and leaves
/// optimization of the ordering to future work; we do the same.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Internal node index. `0` is the `false` terminal, `1` is `true`.
type NodeId = u32;

const FALSE_ID: NodeId = 0;
const TRUE_ID: NodeId = 1;
/// Pseudo-level of the terminals: below every real variable.
const TERMINAL_VAR: u32 = u32::MAX;

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: u32,
    low: NodeId,
    high: NodeId,
}

/// Counters describing the size of a manager, for diagnostics and benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BddStats {
    /// Number of allocated nodes (including the two terminals).
    pub nodes: usize,
    /// Number of declared variables.
    pub vars: usize,
    /// Number of entries in the ternary `ite` cache.
    pub cache_entries: usize,
}

/// Which budgeted resource ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetResource {
    /// Nodes allocated since the budget was armed.
    Nodes,
    /// Memoized operation steps charged since the budget was armed.
    Ops,
}

impl fmt::Display for BudgetResource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetResource::Nodes => f.write_str("nodes"),
            BudgetResource::Ops => f.write_str("ops"),
        }
    }
}

/// Structured error returned when a [`BddBudget`] is exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BddError {
    /// A resource budget was exceeded; the manager is *exhausted* until
    /// the budget is re-armed or cleared, and every operation
    /// short-circuits (returning arbitrary but valid handles) without
    /// touching the memo caches.
    BudgetExceeded {
        /// The resource that ran out.
        resource: BudgetResource,
        /// The configured limit.
        limit: u64,
        /// The usage at the moment the limit was crossed.
        used: u64,
    },
}

impl fmt::Display for BddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BddError::BudgetExceeded {
                resource,
                limit,
                used,
            } => write!(f, "bdd {resource} budget exceeded: {used} > {limit}"),
        }
    }
}

impl std::error::Error for BddError {}

/// Resource limits for a [`BddManager`], metered from the moment the
/// budget is armed with [`BddManager::set_budget`].
///
/// `None` means unlimited for that resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BddBudget {
    /// Maximum nodes allocated after arming.
    pub max_nodes: Option<u64>,
    /// Maximum operation steps charged after arming.
    pub max_ops: Option<u64>,
}

impl BddBudget {
    /// A budget with no limits (metering still runs).
    pub const UNLIMITED: BddBudget = BddBudget {
        max_nodes: None,
        max_ops: None,
    };
}

struct Store {
    nodes: Vec<Node>,
    unique: FastMap<Node, NodeId>,
    ite_cache: FastMap<(NodeId, NodeId, NodeId), NodeId>,
    not_cache: FastMap<NodeId, NodeId>,
    restrict_cache: FastMap<(NodeId, u32, bool), NodeId>,
    var_names: Vec<String>,
    /// `u64::MAX` when un-budgeted, so the hot-path checks stay a single
    /// integer compare.
    max_nodes: u64,
    max_ops: u64,
    /// Node count when the budget was last armed; the node budget meters
    /// growth, not absolute store size.
    baseline_nodes: u64,
    ops: u64,
    /// Once set, every operation short-circuits without caching: partial
    /// results computed after exhaustion are garbage and must never be
    /// memoized where a later (re-budgeted) solve could read them.
    exhausted: Option<BddError>,
}

impl Store {
    fn new() -> Self {
        let terminals = vec![
            Node {
                var: TERMINAL_VAR,
                low: FALSE_ID,
                high: FALSE_ID,
            },
            Node {
                var: TERMINAL_VAR,
                low: TRUE_ID,
                high: TRUE_ID,
            },
        ];
        Store {
            nodes: terminals,
            unique: FastMap::default(),
            ite_cache: FastMap::default(),
            not_cache: FastMap::default(),
            restrict_cache: FastMap::default(),
            var_names: Vec::new(),
            max_nodes: u64::MAX,
            max_ops: u64::MAX,
            baseline_nodes: 2,
            ops: 0,
            exhausted: None,
        }
    }

    /// Charges one operation step; returns `true` if the store is (now)
    /// exhausted and the caller must short-circuit without caching.
    #[inline]
    fn charge_op(&mut self) -> bool {
        if self.exhausted.is_some() {
            return true;
        }
        self.ops += 1;
        if self.ops > self.max_ops {
            self.exhausted = Some(BddError::BudgetExceeded {
                resource: BudgetResource::Ops,
                limit: self.max_ops,
                used: self.ops,
            });
            return true;
        }
        false
    }

    fn mk(&mut self, var: u32, low: NodeId, high: NodeId) -> NodeId {
        if low == high {
            return low;
        }
        let node = Node { var, low, high };
        if let Some(&id) = self.unique.get(&node) {
            return id;
        }
        let grown = (self.nodes.len() as u64).saturating_sub(self.baseline_nodes);
        if grown >= self.max_nodes {
            if self.exhausted.is_none() {
                self.exhausted = Some(BddError::BudgetExceeded {
                    resource: BudgetResource::Nodes,
                    limit: self.max_nodes,
                    used: grown + 1,
                });
            }
            return low;
        }
        let id = self.nodes.len() as NodeId;
        self.nodes.push(node);
        self.unique.insert(node, id);
        id
    }

    fn node(&self, id: NodeId) -> Node {
        self.nodes[id as usize]
    }

    /// Cofactor of `f` w.r.t. the decision variable `var`.
    fn cofactor(&self, f: NodeId, var: u32, value: bool) -> NodeId {
        let n = self.node(f);
        if n.var == var {
            if value {
                n.high
            } else {
                n.low
            }
        } else {
            f
        }
    }

    fn ite(&mut self, f: NodeId, g: NodeId, h: NodeId) -> NodeId {
        // Terminal cases.
        if f == TRUE_ID {
            return g;
        }
        if f == FALSE_ID {
            return h;
        }
        if g == h {
            return g;
        }
        if g == TRUE_ID && h == FALSE_ID {
            return f;
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            return r;
        }
        if self.charge_op() {
            return FALSE_ID;
        }
        let v = self.node(f).var.min(self.node(g).var).min(self.node(h).var);
        debug_assert_ne!(v, TERMINAL_VAR);
        let (f0, f1) = (self.cofactor(f, v, false), self.cofactor(f, v, true));
        let (g0, g1) = (self.cofactor(g, v, false), self.cofactor(g, v, true));
        let (h0, h1) = (self.cofactor(h, v, false), self.cofactor(h, v, true));
        let low = self.ite(f0, g0, h0);
        let high = self.ite(f1, g1, h1);
        if self.exhausted.is_some() {
            // The sub-results are garbage; do not intern or memoize them.
            return FALSE_ID;
        }
        let r = self.mk(v, low, high);
        if self.exhausted.is_some() {
            return FALSE_ID;
        }
        self.ite_cache.insert((f, g, h), r);
        r
    }

    /// Commutative conjunction: operands are sorted by node id so the
    /// symmetric query shares one `ite_cache` slot (`a.and(b)` and
    /// `b.and(a)` hit the same `(f, g, 0)` triple).
    fn and(&mut self, f: NodeId, g: NodeId) -> NodeId {
        let (f, g) = (f.min(g), f.max(g));
        self.ite(f, g, FALSE_ID)
    }

    /// Commutative disjunction; see [`Store::and`] for the operand sort.
    fn or(&mut self, f: NodeId, g: NodeId) -> NodeId {
        let (f, g) = (f.min(g), f.max(g));
        self.ite(f, TRUE_ID, g)
    }

    /// Commutative exclusive-or; see [`Store::and`] for the operand sort.
    fn xor(&mut self, f: NodeId, g: NodeId) -> NodeId {
        let (f, g) = (f.min(g), f.max(g));
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Commutative biconditional; see [`Store::and`] for the operand sort.
    fn iff(&mut self, f: NodeId, g: NodeId) -> NodeId {
        let (f, g) = (f.min(g), f.max(g));
        let ng = self.not(g);
        self.ite(f, g, ng)
    }

    /// Negation, fully memoized both ways (`¬f → r` and `¬r → f`).
    ///
    /// Iterative (explicit work stack): a chain-shaped diagram is as
    /// deep as the variable count, and the recursive form blew the call
    /// stack around ~100k variables.
    fn not(&mut self, f: NodeId) -> NodeId {
        fn resolved(store: &Store, id: NodeId) -> Option<NodeId> {
            match id {
                FALSE_ID => Some(TRUE_ID),
                TRUE_ID => Some(FALSE_ID),
                _ => store.not_cache.get(&id).copied(),
            }
        }
        if let Some(r) = resolved(self, f) {
            return r;
        }
        let mut stack = vec![f];
        while let Some(&id) = stack.last() {
            if self.charge_op() {
                return f;
            }
            if resolved(self, id).is_some() {
                stack.pop();
                continue;
            }
            let n = self.node(id);
            match (resolved(self, n.low), resolved(self, n.high)) {
                (Some(low), Some(high)) => {
                    let r = self.mk(n.var, low, high);
                    if self.exhausted.is_some() {
                        return f;
                    }
                    self.not_cache.insert(id, r);
                    self.not_cache.insert(r, id);
                    stack.pop();
                }
                (low, high) => {
                    if low.is_none() {
                        stack.push(n.low);
                    }
                    if high.is_none() {
                        stack.push(n.high);
                    }
                }
            }
        }
        resolved(self, f).expect("negation computed for the root")
    }

    /// Cofactor of `f` with `var` fixed to `value`, memoized in
    /// `restrict_cache`.
    ///
    /// Without the memo, a shared sub-DAG was re-walked once per *path*
    /// from the root — exponential on dense diagrams (e.g. parity).
    /// Iterative for the same deep-chain reason as [`Store::not`].
    fn restrict(&mut self, f: NodeId, var: u32, value: bool) -> NodeId {
        fn resolved(store: &Store, id: NodeId, var: u32, value: bool) -> Option<NodeId> {
            let n = store.node(id);
            if n.var == TERMINAL_VAR || n.var > var {
                return Some(id);
            }
            if n.var == var {
                return Some(if value { n.high } else { n.low });
            }
            store.restrict_cache.get(&(id, var, value)).copied()
        }
        if let Some(r) = resolved(self, f, var, value) {
            return r;
        }
        let mut stack = vec![f];
        while let Some(&id) = stack.last() {
            if self.charge_op() {
                return f;
            }
            if resolved(self, id, var, value).is_some() {
                stack.pop();
                continue;
            }
            let n = self.node(id);
            match (
                resolved(self, n.low, var, value),
                resolved(self, n.high, var, value),
            ) {
                (Some(low), Some(high)) => {
                    let r = self.mk(n.var, low, high);
                    if self.exhausted.is_some() {
                        return f;
                    }
                    self.restrict_cache.insert((id, var, value), r);
                    stack.pop();
                }
                (low, high) => {
                    if low.is_none() {
                        stack.push(n.low);
                    }
                    if high.is_none() {
                        stack.push(n.high);
                    }
                }
            }
        }
        resolved(self, f, var, value).expect("restriction computed for the root")
    }

    /// Number of satisfying assignments over the first `nvars` variables.
    fn sat_count(&self, f: NodeId, nvars: u32) -> u128 {
        fn go(store: &Store, f: NodeId, nvars: u32, memo: &mut FastMap<NodeId, u128>) -> u128 {
            if f == FALSE_ID {
                return 0;
            }
            if f == TRUE_ID {
                return 1;
            }
            if let Some(&c) = memo.get(&f) {
                return c;
            }
            let n = store.node(f);
            let skip = |child: NodeId| -> u32 {
                let cvar = store.node(child).var;
                let next = if cvar == TERMINAL_VAR { nvars } else { cvar };
                next - n.var - 1
            };
            let lo = go(store, n.low, nvars, memo) << skip(n.low);
            let hi = go(store, n.high, nvars, memo) << skip(n.high);
            let c = lo + hi;
            memo.insert(f, c);
            c
        }
        if f == FALSE_ID {
            return 0;
        }
        let mut memo = FastMap::default();
        let top = self.node(f).var;
        let leading = if top == TERMINAL_VAR { nvars } else { top };
        go(self, f, nvars, &mut memo) << leading
    }

    fn one_sat(&self, f: NodeId) -> Option<Vec<(u32, bool)>> {
        if f == FALSE_ID {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = f;
        while cur != TRUE_ID {
            let n = self.node(cur);
            if n.low != FALSE_ID {
                path.push((n.var, false));
                cur = n.low;
            } else {
                path.push((n.var, true));
                cur = n.high;
            }
        }
        Some(path)
    }

    fn eval(&self, f: NodeId, assignment: &dyn Fn(u32) -> bool) -> bool {
        let mut cur = f;
        loop {
            match cur {
                FALSE_ID => return false,
                TRUE_ID => return true,
                _ => {
                    let n = self.node(cur);
                    cur = if assignment(n.var) { n.high } else { n.low };
                }
            }
        }
    }

    fn support(&self, f: NodeId) -> Vec<u32> {
        let mut seen = FastSet::default();
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![f];
        while let Some(id) = stack.pop() {
            if id == FALSE_ID || id == TRUE_ID || !seen.insert(id) {
                continue;
            }
            let n = self.node(id);
            vars.insert(n.var);
            stack.push(n.low);
            stack.push(n.high);
        }
        vars.into_iter().collect()
    }
}

/// A shared, single-threaded BDD node store.
///
/// Cloning a manager is cheap (it is reference-counted); all [`Bdd`] handles
/// created from clones of the same manager are interoperable. Handles from
/// *different* managers must not be mixed.
///
/// # Example
///
/// ```
/// use spllift_bdd::BddManager;
/// let mgr = BddManager::new();
/// let a = mgr.var("A");
/// let b = mgr.var("B");
/// assert_eq!(a.or(&b), b.or(&a));
/// ```
#[derive(Clone)]
pub struct BddManager {
    store: Rc<RefCell<Store>>,
}

impl fmt::Debug for BddManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        f.debug_struct("BddManager")
            .field("vars", &stats.vars)
            .field("nodes", &stats.nodes)
            .finish()
    }
}

impl Default for BddManager {
    fn default() -> Self {
        Self::new()
    }
}

impl BddManager {
    /// Creates an empty manager with no variables.
    pub fn new() -> Self {
        BddManager {
            store: Rc::new(RefCell::new(Store::new())),
        }
    }

    /// Declares a fresh variable named `name` and returns it as a formula.
    ///
    /// The variable is appended at the bottom of the current variable order.
    pub fn var(&self, name: impl Into<String>) -> Bdd {
        let id = self.new_var(name);
        self.var_bdd(id)
    }

    /// Declares a fresh variable and returns its [`VarId`].
    pub fn new_var(&self, name: impl Into<String>) -> VarId {
        let mut s = self.store.borrow_mut();
        let idx = s.var_names.len() as u32;
        s.var_names.push(name.into());
        VarId(idx)
    }

    /// Returns the formula for an already-declared variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` was not declared by this manager.
    pub fn var_bdd(&self, var: VarId) -> Bdd {
        let id = {
            let mut s = self.store.borrow_mut();
            assert!(
                (var.0 as usize) < s.var_names.len(),
                "variable {var} not declared in this manager"
            );
            s.mk(var.0, FALSE_ID, TRUE_ID)
        };
        self.wrap(id)
    }

    /// The number of declared variables.
    pub fn num_vars(&self) -> usize {
        self.store.borrow().var_names.len()
    }

    /// The name a variable was declared with.
    pub fn var_name(&self, var: VarId) -> String {
        self.store.borrow().var_names[var.0 as usize].clone()
    }

    /// The constant `true` formula.
    pub fn top(&self) -> Bdd {
        self.wrap(TRUE_ID)
    }

    /// The constant `false` formula.
    pub fn bottom(&self) -> Bdd {
        self.wrap(FALSE_ID)
    }

    /// Current size counters.
    pub fn stats(&self) -> BddStats {
        let s = self.store.borrow();
        BddStats {
            nodes: s.nodes.len(),
            vars: s.var_names.len(),
            cache_entries: s.ite_cache.len(),
        }
    }

    /// Arms (or re-arms) a resource budget: resets the op meter, takes the
    /// current node count as the baseline for the node budget, and clears
    /// any previous exhaustion.
    ///
    /// While a budget is exceeded the manager is *exhausted*: operations
    /// return arbitrary but valid handles, never touch the memo caches,
    /// and [`BddManager::budget_status`] reports the structured error.
    /// Results produced while exhausted are meaningless and must be
    /// discarded by the caller.
    pub fn set_budget(&self, budget: BddBudget) {
        let mut s = self.store.borrow_mut();
        s.max_nodes = budget.max_nodes.unwrap_or(u64::MAX);
        s.max_ops = budget.max_ops.unwrap_or(u64::MAX);
        s.baseline_nodes = s.nodes.len() as u64;
        s.ops = 0;
        s.exhausted = None;
    }

    /// Removes any budget and clears exhaustion; operations run unbounded
    /// again (e.g. for rendering results after a successful solve).
    pub fn clear_budget(&self) {
        self.set_budget(BddBudget::UNLIMITED);
    }

    /// `Ok(())` if no budget has been exceeded since the last arm,
    /// otherwise the structured error describing which resource ran out.
    pub fn budget_status(&self) -> Result<(), BddError> {
        match self.store.borrow().exhausted {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Charges `n` operation steps against the op budget without doing any
    /// work. This is the deterministic fault-injection hook: a chaos
    /// harness can burn the budget down to force `BudgetExceeded` at an
    /// exact, reproducible point.
    pub fn charge_ops(&self, n: u64) {
        let mut s = self.store.borrow_mut();
        if s.exhausted.is_some() {
            return;
        }
        s.ops = s.ops.saturating_add(n);
        if s.ops > s.max_ops {
            s.exhausted = Some(BddError::BudgetExceeded {
                resource: BudgetResource::Ops,
                limit: s.max_ops,
                used: s.ops,
            });
        }
    }

    /// Operation steps charged since the budget was last armed.
    pub fn ops_used(&self) -> u64 {
        self.store.borrow().ops
    }

    /// Nodes allocated since the budget was last armed.
    pub fn nodes_since_arm(&self) -> u64 {
        let s = self.store.borrow();
        (s.nodes.len() as u64).saturating_sub(s.baseline_nodes)
    }

    fn wrap(&self, id: NodeId) -> Bdd {
        Bdd {
            mgr: self.clone(),
            id,
        }
    }

    fn same_store(&self, other: &BddManager) -> bool {
        Rc::ptr_eq(&self.store, &other.store)
    }
}

/// A Boolean formula, represented as a handle into a [`BddManager`].
///
/// Because diagrams are reduced and hash-consed, semantic equality of
/// formulas coincides with handle equality ([`PartialEq`] is O(1)), and
/// [`Bdd::is_false`] / [`Bdd::is_true`] are constant-time — the property the
/// paper exploits for early termination (§4.2).
#[derive(Clone)]
pub struct Bdd {
    mgr: BddManager,
    id: NodeId,
}

impl PartialEq for Bdd {
    fn eq(&self, other: &Self) -> bool {
        debug_assert!(
            self.mgr.same_store(&other.mgr),
            "comparing BDDs from different managers"
        );
        self.id == other.id
    }
}

impl Eq for Bdd {}

impl std::hash::Hash for Bdd {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl fmt::Debug for Bdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bdd({})", self.to_cube_string())
    }
}

impl fmt::Display for Bdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_cube_string())
    }
}

macro_rules! binary_op {
    ($(#[$doc:meta])* $name:ident, |$s:ident, $f:ident, $g:ident| $body:expr) => {
        $(#[$doc])*
        #[must_use]
        pub fn $name(&self, other: &Bdd) -> Bdd {
            debug_assert!(
                self.mgr.same_store(&other.mgr),
                "combining BDDs from different managers"
            );
            let id = {
                let mut $s = self.mgr.store.borrow_mut();
                let $f = self.id;
                let $g = other.id;
                $body
            };
            self.mgr.wrap(id)
        }
    };
}

impl Bdd {
    /// The manager this formula belongs to.
    pub fn manager(&self) -> &BddManager {
        &self.mgr
    }

    /// `true` iff this formula is the constant `false`. Constant time.
    pub fn is_false(&self) -> bool {
        self.id == FALSE_ID
    }

    /// `true` iff this formula is the constant `true`. Constant time.
    pub fn is_true(&self) -> bool {
        self.id == TRUE_ID
    }

    binary_op!(
        /// Conjunction `self ∧ other`.
        ///
        /// Commutative calls are normalized (operands sorted by node
        /// id), so `a.and(b)` and `b.and(a)` share one op-cache slot.
        and, |s, f, g| s.and(f, g)
    );
    binary_op!(
        /// Disjunction `self ∨ other`. Commutatively normalized like
        /// [`Bdd::and`].
        or, |s, f, g| s.or(f, g)
    );
    binary_op!(
        /// Exclusive or `self ⊕ other`. Commutatively normalized like
        /// [`Bdd::and`].
        xor, |s, f, g| s.xor(f, g)
    );
    binary_op!(
        /// Implication `self → other`.
        implies, |s, f, g| s.ite(f, g, TRUE_ID)
    );
    binary_op!(
        /// Biconditional `self ↔ other`. Commutatively normalized like
        /// [`Bdd::and`].
        iff, |s, f, g| s.iff(f, g)
    );

    /// Negation `¬self`.
    #[must_use]
    pub fn not(&self) -> Bdd {
        let id = {
            let mut s = self.mgr.store.borrow_mut();
            s.not(self.id)
        };
        self.mgr.wrap(id)
    }

    /// If-then-else `if self then t else e`.
    #[must_use]
    pub fn ite(&self, t: &Bdd, e: &Bdd) -> Bdd {
        debug_assert!(self.mgr.same_store(&t.mgr) && self.mgr.same_store(&e.mgr));
        let id = {
            let mut s = self.mgr.store.borrow_mut();
            s.ite(self.id, t.id, e.id)
        };
        self.mgr.wrap(id)
    }

    /// The cofactor of this formula with `var` fixed to `value`.
    #[must_use]
    pub fn restrict(&self, var: VarId, value: bool) -> Bdd {
        let id = {
            let mut s = self.mgr.store.borrow_mut();
            s.restrict(self.id, var.0, value)
        };
        self.mgr.wrap(id)
    }

    /// Existential quantification `∃var. self`.
    #[must_use]
    pub fn exists(&self, var: VarId) -> Bdd {
        let lo = self.restrict(var, false);
        let hi = self.restrict(var, true);
        lo.or(&hi)
    }

    /// Universal quantification `∀var. self`.
    #[must_use]
    pub fn forall(&self, var: VarId) -> Bdd {
        let lo = self.restrict(var, false);
        let hi = self.restrict(var, true);
        lo.and(&hi)
    }

    /// Existentially quantifies every variable in `vars` (projection onto
    /// the remaining variables) — e.g. projecting a feature-model
    /// constraint onto the reachable features.
    #[must_use]
    pub fn exists_many(&self, vars: &[VarId]) -> Bdd {
        vars.iter().fold(self.clone(), |acc, &v| acc.exists(v))
    }

    /// `true` iff `self → other` is a tautology (semantic entailment).
    pub fn entails(&self, other: &Bdd) -> bool {
        self.implies(other).is_true()
    }

    /// Number of satisfying assignments over the manager's full variable set.
    ///
    /// # Panics
    ///
    /// Panics if more than 127 variables are declared (the count is held in
    /// a `u128`).
    pub fn sat_count(&self) -> u128 {
        let nvars = self.mgr.num_vars() as u32;
        assert!(nvars <= 127, "sat_count supports at most 127 variables");
        self.mgr.store.borrow().sat_count(self.id, nvars)
    }

    /// Number of satisfying assignments counting only the first
    /// `nvars` variables of the order (the rest must not occur in `self`).
    ///
    /// # Panics
    ///
    /// Panics if the formula depends on a variable `≥ nvars`. This is
    /// checked in release builds too: a `debug_assert!` here once let
    /// release binaries silently return a wrong model count (the
    /// skip-count arithmetic underflows for out-of-range variables).
    pub fn sat_count_over(&self, nvars: u32) -> u128 {
        assert!(
            self.support().iter().all(|v| v.0 < nvars),
            "sat_count_over({nvars}) on a formula with support {:?}",
            self.support()
        );
        self.mgr.store.borrow().sat_count(self.id, nvars)
    }

    /// One satisfying partial assignment, or `None` if unsatisfiable.
    ///
    /// Variables not mentioned may take either value.
    pub fn one_sat(&self) -> Option<Vec<(VarId, bool)>> {
        self.mgr
            .store
            .borrow()
            .one_sat(self.id)
            .map(|v| v.into_iter().map(|(i, b)| (VarId(i), b)).collect())
    }

    /// Evaluates the formula under a total assignment.
    pub fn eval(&self, assignment: impl Fn(VarId) -> bool) -> bool {
        self.mgr
            .store
            .borrow()
            .eval(self.id, &|v| assignment(VarId(v)))
    }

    /// The set of variables this formula depends on, in order.
    pub fn support(&self) -> Vec<VarId> {
        self.mgr
            .store
            .borrow()
            .support(self.id)
            .into_iter()
            .map(VarId)
            .collect()
    }

    /// Number of internal nodes of this diagram (terminals excluded).
    pub fn node_count(&self) -> usize {
        let s = self.mgr.store.borrow();
        let mut seen = FastSet::default();
        let mut stack = vec![self.id];
        let mut count = 0usize;
        while let Some(id) = stack.pop() {
            if id == FALSE_ID || id == TRUE_ID || !seen.insert(id) {
                continue;
            }
            count += 1;
            let n = s.node(id);
            stack.push(n.low);
            stack.push(n.high);
        }
        count
    }

    /// Renders the formula as a sum of cubes (disjunction of conjunctions of
    /// literals), e.g. `(!F & G & !H)`. `true`/`false` for the constants.
    ///
    /// Intended for small constraint formulas (feature constraints); the
    /// output size can be exponential in the diagram size.
    pub fn to_cube_string(&self) -> String {
        if self.is_true() {
            return "true".into();
        }
        if self.is_false() {
            return "false".into();
        }
        let s = self.mgr.store.borrow();
        let mut cubes: Vec<String> = Vec::new();
        let mut path: Vec<(u32, bool)> = Vec::new();
        fn go(s: &Store, id: NodeId, path: &mut Vec<(u32, bool)>, cubes: &mut Vec<String>) {
            if id == FALSE_ID {
                return;
            }
            if id == TRUE_ID {
                let lits: Vec<String> = path
                    .iter()
                    .map(|&(v, b)| {
                        let name = &s.var_names[v as usize];
                        if b {
                            name.clone()
                        } else {
                            format!("!{name}")
                        }
                    })
                    .collect();
                if lits.is_empty() {
                    cubes.push("true".into());
                } else {
                    cubes.push(format!("({})", lits.join(" & ")));
                }
                return;
            }
            let n = s.node(id);
            path.push((n.var, false));
            go(s, n.low, path, cubes);
            path.pop();
            path.push((n.var, true));
            go(s, n.high, path, cubes);
            path.pop();
        }
        go(&s, self.id, &mut path, &mut cubes);
        cubes.join(" | ")
    }

    /// Renders this diagram in Graphviz DOT format.
    pub fn to_dot(&self) -> String {
        let s = self.mgr.store.borrow();
        let mut out = String::from("digraph bdd {\n  rankdir=TB;\n");
        out.push_str("  f [shape=box,label=\"0\"];\n  t [shape=box,label=\"1\"];\n");
        let mut seen = FastSet::default();
        let mut stack = vec![self.id];
        let node_name = |id: NodeId| -> String {
            match id {
                FALSE_ID => "f".into(),
                TRUE_ID => "t".into(),
                _ => format!("n{id}"),
            }
        };
        while let Some(id) = stack.pop() {
            if id == FALSE_ID || id == TRUE_ID || !seen.insert(id) {
                continue;
            }
            let n = s.node(id);
            out.push_str(&format!(
                "  n{id} [label=\"{}\"];\n",
                s.var_names[n.var as usize]
            ));
            out.push_str(&format!(
                "  n{id} -> {} [style=dashed];\n",
                node_name(n.low)
            ));
            out.push_str(&format!("  n{id} -> {};\n", node_name(n.high)));
            stack.push(n.low);
            stack.push(n.high);
        }
        out.push_str("}\n");
        out
    }
}
