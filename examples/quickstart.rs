//! Quickstart: the paper's running example (Figure 1), end to end.
//!
//! Parses the three-feature product line from source, lifts the plain
//! IFDS taint analysis with SPLLIFT, and prints the feature constraint
//! under which the secret reaches `print` — which is `!F && G && !H`,
//! exactly as the paper's introduction promises. Then repeats the run
//! under the feature model `F ⇔ G`, under which the leak is infeasible.
//!
//! Run with: `cargo run --example quickstart`

use spllift::analyses::{TaintAnalysis, TaintFact};
use spllift::features::{BddConstraintContext, FeatureExpr, FeatureTable};
use spllift::frontend::parse_spl;
use spllift::ir::{Callee, ProgramIcfg, StmtKind};
use spllift::lift::{LiftedSolution, ModelMode};

const SOURCE: &str = r#"
class Main {
    static int secret() { return 42; }
    static void print(int v) { }
    static int foo(int p) {
        #ifdef H
        p = 0;
        #endif
        return p;
    }
    static void main() {
        int x = secret();
        int y = 0;
        #ifdef F
        x = 0;
        #endif
        #ifdef G
        y = Main.foo(x);
        #endif
        Main.print(y);
    }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parse the product line (the CIDE step).
    let mut table = FeatureTable::new();
    let program = parse_spl(SOURCE, &mut table)?;

    // 2. Build hierarchy + call graph (the Soot step).
    let icfg = ProgramIcfg::new(&program);

    // 3. Lift the *unchanged* IFDS taint analysis and solve in one pass.
    let ctx = BddConstraintContext::new(&table);
    let analysis = TaintAnalysis::secret_to_print();
    let solution = LiftedSolution::solve(&analysis, &icfg, &ctx, None, ModelMode::Ignore);

    // 4. Ask under which configurations the argument of print() is
    //    tainted.
    let main = program.find_method("Main.main").expect("main exists");
    let print = program.find_method("Main.print").expect("print exists");
    let (call, arg) = program
        .stmts_of(main)
        .find_map(|s| match &program.stmt(s).kind {
            StmtKind::Invoke {
                callee: Callee::Static(m),
                args,
                ..
            } if *m == print => Some((s, args[0].as_local()?)),
            _ => None,
        })
        .expect("print call exists");
    let constraint = solution.constraint_of(call, &TaintFact::Local(arg));
    println!(
        "secret may reach print() iff: {}",
        constraint.to_cube_string()
    );
    // Canonical BDDs make the comparison semantic, independent of how the
    // cube string orders the variables.
    use spllift::features::ConstraintContext as _;
    let expected = ctx.of_expr(&FeatureExpr::parse("!F && G && !H", &mut table)?);
    assert_eq!(constraint, expected);

    // 5. Same question under the feature model F ⇔ G: no valid product
    //    leaks.
    let model = FeatureExpr::parse("(F && G) || (!F && !G)", &mut table)?;
    let with_model =
        LiftedSolution::solve(&analysis, &icfg, &ctx, Some(&model), ModelMode::OnEdges);
    let constraint = with_model.constraint_of(call, &TaintFact::Local(arg));
    println!(
        "under the model F <=> G:     {}",
        constraint.to_cube_string()
    );
    assert!(constraint.is_false());
    Ok(())
}
