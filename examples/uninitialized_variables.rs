//! The paper's §1 motivating bug class: a Java product line where every
//! *product* the developer happens to build compiles and runs, but some
//! configurations read an uninitialized variable. A plain per-product
//! analysis needs to get lucky with the configuration; the lifted
//! analysis reports the exact guilty configurations in one pass.
//!
//! Run with: `cargo run --example uninitialized_variables`

use spllift::analyses::{UninitFact, UninitVars};
use spllift::features::{BddConstraintContext, FeatureTable};
use spllift::frontend::parse_spl;
use spllift::ir::ProgramIcfg;
use spllift::lift::{LiftedSolution, ModelMode};

const SOURCE: &str = r#"
class Buffer {
    static int size(int hint) {
        int cap;
        #ifdef FIXED_CAPACITY
        cap = 4096;
        #endif
        #ifdef GROWABLE
        cap = hint * 2;
        #endif
        return cap;   // cap is undefined when neither feature is on!
    }
    static void main() {
        int s = Buffer.size(100);
    }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut table = FeatureTable::new();
    let program = parse_spl(SOURCE, &mut table)?;
    let icfg = ProgramIcfg::new(&program);
    let ctx = BddConstraintContext::new(&table);

    let solution = LiftedSolution::solve(&UninitVars::new(), &icfg, &ctx, None, ModelMode::Ignore);

    // Find every use of a maybe-uninitialized local and print the
    // configurations it happens under.
    let mut found = 0;
    for m in spllift::ifds::Icfg::methods(&icfg) {
        for s in spllift::ifds::Icfg::stmts_of(&icfg, m) {
            for used in program.stmt(s).kind.uses() {
                let c = solution.constraint_of(s, &UninitFact::Local(used));
                if !c.is_false() {
                    found += 1;
                    println!(
                        "{}: `{}` may be uninitialized iff {}",
                        spllift::ifds::Icfg::stmt_label(&icfg, s),
                        program.body(m).locals[used.index()].name,
                        c.to_cube_string()
                    );
                }
            }
        }
    }
    assert!(found > 0, "the example must flag the return statement");
    // The return of `cap` is flagged exactly when no feature defines it.
    Ok(())
}
