//! Feature-sensitive typestate checking — one of the classic IFDS
//! clients the paper cites (§1), lifted over a product line.
//!
//! A `Stream` must be opened before reading and not read after closing.
//! The SPL closes the stream early only when `EAGER_CLEANUP` is enabled,
//! and reads it again only when `DOUBLE_READ` is enabled: the protocol
//! violation exists exactly in products with both features.
//!
//! Run with: `cargo run --example typestate`

use spllift::analyses::{State, StateFact, Typestate};
use spllift::features::{BddConstraintContext, FeatureTable};
use spllift::frontend::parse_spl;
use spllift::ir::{ProgramIcfg, StmtKind};
use spllift::lift::{LiftedSolution, ModelMode};

const SOURCE: &str = r#"
class Stream {
    int pos;
    void open() { this.pos = 0; }
    void close() { this.pos = 0 - 1; }
    int read() { return this.pos; }
}
class Main {
    static void main() {
        Stream s = new Stream();
        s.open();
        int a = s.read();
        #ifdef EAGER_CLEANUP
        s.close();
        #endif
        #ifdef DOUBLE_READ
        int b = s.read();
        #endif
        s.close();
    }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut table = FeatureTable::new();
    let program = parse_spl(SOURCE, &mut table)?;
    let icfg = ProgramIcfg::new(&program);
    let ctx = BddConstraintContext::new(&table);

    let stream = program.find_class("Stream").expect("Stream class");
    let analysis = Typestate::new(stream, ["open"], ["close"], ["read"]);
    let solution = LiftedSolution::solve(&analysis, &icfg, &ctx, None, ModelMode::Ignore);

    // Report, for every read() call, the constraint under which the
    // receiver may be closed.
    let main = program.find_method("Main.main").unwrap();
    let mut flagged = 0;
    for s in program.stmts_of(main) {
        let StmtKind::Invoke {
            callee: spllift::ir::Callee::Virtual { base, name, .. },
            ..
        } = &program.stmt(s).kind
        else {
            continue;
        };
        if name != "read" {
            continue;
        }
        let c = solution.constraint_of(s, &StateFact::Local(*base, State::Closed));
        if !c.is_false() {
            flagged += 1;
            println!(
                "read() at [{}] may hit a CLOSED stream iff {}",
                spllift::ifds::Icfg::stmt_label(&icfg, s),
                c.to_cube_string()
            );
        }
    }
    assert_eq!(flagged, 1, "exactly the DOUBLE_READ read is dangerous");
    // The reported constraint is EAGER_CLEANUP (the read itself only
    // exists under DOUBLE_READ; its *danger* is owned by EAGER_CLEANUP).
    Ok(())
}
