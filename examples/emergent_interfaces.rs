//! Emergent interfaces (paper §7): using the lifted reaching-definitions
//! analysis to surface *feature dependencies* — "a value defined by
//! feature COMPRESS is consumed by feature ENCRYPT" — the maintenance aid
//! the paper cites as a key motivation for making feature-sensitive
//! analysis fast.
//!
//! Run with: `cargo run --example emergent_interfaces`

use spllift::analyses::{DefFact, ReachingDefs};
use spllift::features::{BddConstraintContext, FeatureExpr, FeatureTable};
use spllift::frontend::parse_spl;
use spllift::ifds::Icfg as _;
use spllift::ir::ProgramIcfg;
use spllift::lift::{LiftedSolution, ModelMode};

const SOURCE: &str = r#"
class Pipeline {
    static int transform(int data) {
        int out = data;
        #ifdef COMPRESS
        out = data / 2;
        #endif
        #ifdef ENCRYPT
        out = out * 31 + 7;
        #endif
        return out;
    }
    static void main() {
        int r = Pipeline.transform(1000);
    }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut table = FeatureTable::new();
    let program = parse_spl(SOURCE, &mut table)?;
    let icfg = ProgramIcfg::new(&program);
    let ctx = BddConstraintContext::new(&table);

    let solution =
        LiftedSolution::solve(&ReachingDefs::new(), &icfg, &ctx, None, ModelMode::Ignore);

    // For every statement that USES a local, report which feature-
    // annotated definitions may reach it and under which configurations:
    // the "emergent interface" of the maintenance point.
    println!("emergent data-flow interface of Pipeline.transform:");
    let mut hits = 0;
    for m in icfg.methods() {
        for s in icfg.stmts_of(m) {
            let uses = program.stmt(s).kind.uses();
            if uses.is_empty() {
                continue;
            }
            for (fact, c) in solution.results_at(s) {
                let DefFact::Def { site, var } = fact else {
                    continue;
                };
                if !uses.contains(&var) {
                    continue;
                }
                let def_ann = &program.stmt(site).annotation;
                if *def_ann == FeatureExpr::True {
                    continue; // only feature-owned definitions are interesting
                }
                hits += 1;
                println!(
                    "  def at [{}] (feature {}) reaches use at [{}] iff {}",
                    icfg.stmt_label(site),
                    def_ann.display(&table),
                    icfg.stmt_label(s),
                    c.to_cube_string(),
                );
            }
        }
    }
    assert!(hits > 0, "feature-owned definitions must reach uses");
    // E.g. the COMPRESS definition of `out` reaches the ENCRYPT use
    // exactly under COMPRESS (and survives to the return only under
    // COMPRESS && !ENCRYPT).
    Ok(())
}
