//! Linear constant propagation — a *native IDE* analysis (the framework's
//! original motivating client, paper §2.4) running on the same solver the
//! lifted analyses use.
//!
//! Run with: `cargo run --example constant_propagation`

use spllift::analyses::{CpFact, CpValue, LinearConstants};
use spllift::features::FeatureTable;
use spllift::frontend::parse_spl;
use spllift::ide::IdeSolver;
use spllift::ir::ProgramIcfg;

const SOURCE: &str = r#"
class Math {
    static int scale(int v) { return v * 10 + 7; }
    static void main() {
        int a = 4;
        int b = Math.scale(a);
        int c = b - 7;
    }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut table = FeatureTable::new();
    let program = parse_spl(SOURCE, &mut table)?;
    let icfg = ProgramIcfg::new(&program);
    let solver = IdeSolver::solve(&LinearConstants::new(), &icfg);

    let main = program.find_method("Math.main").unwrap();
    let body = program.body(main);
    let last = spllift::ir::StmtRef {
        method: main,
        index: (body.stmts.len() - 1) as u32,
    };
    println!("constants at the end of main:");
    for (i, local) in body.locals.iter().enumerate() {
        let fact = CpFact::Local(spllift::ir::LocalId(i as u32));
        match solver.value_at(last, &fact) {
            CpValue::Const(c) => println!("  {:>4} = {c}", local.name),
            CpValue::Bot => println!("  {:>4} = ⊥ (varies)", local.name),
            CpValue::Top => {}
        }
    }
    // a = 4, b = scale(4) = 47, c = 40.
    assert_eq!(
        solver.value_at(last, &CpFact::Local(spllift::ir::LocalId(1))),
        CpValue::Const(47)
    );
    Ok(())
}
