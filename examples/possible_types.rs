//! Feature-sensitive possible-types analysis, showcasing both the value
//! of the lifting and the paper's §5 "current limitations" discussion.
//!
//! The receiver `s` is a `Circle` under `F` and a `Square` under `!F`.
//! A plain whole-SPL analysis loses the Circle alternative entirely
//! (the second allocation strongly updates `s`); SPLLIFT keeps both,
//! each under its exact feature constraint — while the *call graph*
//! stays feature-insensitive, exactly the imprecision §5 describes.
//!
//! Run with: `cargo run --example possible_types`

use spllift::analyses::{PossibleTypes, TypeFact};
use spllift::features::{BddConstraintContext, FeatureTable};
use spllift::frontend::parse_spl;
use spllift::ifds::Icfg as _;
use spllift::ir::{ProgramIcfg, StmtKind};
use spllift::lift::{LiftedSolution, ModelMode};

const SOURCE: &str = r#"
class Shape { int area() { return 0; } }
class Circle extends Shape { int area() { return 314; } }
class Square extends Shape { int area() { return 100; } }
class Main {
    static void main() {
        Shape s = new Square();
        #ifdef FANCY_SHAPES
        s = new Circle();
        #endif
        int a = s.area();
    }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut table = FeatureTable::new();
    let program = parse_spl(SOURCE, &mut table)?;
    let icfg = ProgramIcfg::new(&program);
    let ctx = BddConstraintContext::new(&table);

    let solution =
        LiftedSolution::solve(&PossibleTypes::new(), &icfg, &ctx, None, ModelMode::Ignore);

    let main = program.find_method("Main.main").unwrap();
    let call = program
        .stmts_of(main)
        .find(|&s| matches!(program.stmt(s).kind, StmtKind::Invoke { .. }))
        .expect("virtual call");

    println!("possible types of the receiver at `s.area()`:");
    let mut lines: Vec<String> = solution
        .results_at(call)
        .into_iter()
        .filter_map(|(fact, c)| match fact {
            TypeFact::Local(_, class) => Some(format!(
                "  {:<8} iff {}",
                program.class(class).name,
                c.to_cube_string()
            )),
            _ => None,
        })
        .collect();
    lines.sort();
    for l in &lines {
        println!("{l}");
    }
    assert!(lines
        .iter()
        .any(|l| l.contains("Circle") && l.contains("FANCY_SHAPES")));
    assert!(lines
        .iter()
        .any(|l| l.contains("Square") && l.contains("!FANCY_SHAPES")));

    // §5: the call graph itself remains feature-INsensitive — all three
    // area() implementations are CHA targets regardless of features.
    println!(
        "\ncall-graph targets at the call site (feature-insensitive, §5): {}",
        icfg.callees_of(call).len()
    );
    assert_eq!(icfg.callees_of(call).len(), 3);
    Ok(())
}
