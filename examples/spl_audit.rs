//! Auditing a whole product line at benchmark scale: generate the
//! GPL-shaped subject (1 872 valid configurations), run three lifted
//! analyses in one pass each, and summarize what a per-product audit
//! would have needed 1 872 × 3 runs for.
//!
//! Run with: `cargo run --release --example spl_audit`

use spllift::analyses::{TaintAnalysis, TaintFact, UninitFact, UninitVars};
use spllift::benchgen::{subject_by_name, GeneratedSpl};
use spllift::features::{BddConstraintContext, ConstraintContext as _};
use spllift::ifds::{Icfg as _, IfdsSolver};
use spllift::ir::{Operand, StmtKind};
use spllift::lift::{LiftedSolution, ModelMode};

fn main() {
    let spl = GeneratedSpl::generate(subject_by_name("GPL").unwrap());
    println!(
        "subject: {} ({} LoC, {} features, {} valid configurations)",
        spl.spec.name,
        spl.loc,
        spl.spec.total_features,
        spl.count_valid_configs()
    );
    let icfg = spl.icfg();
    let ctx = BddConstraintContext::new(&spl.table);
    let model = spl.model_expr();

    // ---- lifted taint: which configurations can leak? -----------------
    let analysis = TaintAnalysis::new(["secret"], ["print", "sink"]);
    let taint = LiftedSolution::solve(&analysis, &icfg, &ctx, Some(&model), ModelMode::OnEdges);
    let mut leaky_configs = ctx.ff();
    let mut flows = 0;
    for m in icfg.methods() {
        for s in icfg.stmts_of(m) {
            let StmtKind::Invoke { args, .. } = &spl.program.stmt(s).kind else {
                continue;
            };
            for arg in args {
                let Operand::Local(l) = arg else { continue };
                let c = taint.constraint_of(s, &TaintFact::Local(*l));
                if !c.is_false() {
                    flows += 1;
                    leaky_configs = leaky_configs.or(&c);
                }
            }
        }
    }
    // Project the union constraint onto the reachable features (fix the
    // root, quantify everything else away) and count the configurations.
    let root_var = ctx.var_of(spl.root).unwrap();
    let fixed = leaky_configs.restrict(root_var, true);
    let beyond: Vec<_> = fixed
        .support()
        .into_iter()
        .filter(|v| (v.0 as usize) >= spl.reachable.len())
        .collect();
    let count = fixed
        .exists_many(&beyond)
        .sat_count_over(spl.reachable.len() as u32);
    println!(
        "taint: {flows} possibly-tainted sink arguments; configurations with at least one: {count}"
    );

    // ---- lifted uninit: configuration-dependent uninitialized reads ---
    let uninit = LiftedSolution::solve(
        &UninitVars::new(),
        &icfg,
        &ctx,
        Some(&model),
        ModelMode::OnEdges,
    );
    let mut uses = 0;
    for m in icfg.methods() {
        for s in icfg.stmts_of(m) {
            for u in spl.program.stmt(s).kind.uses() {
                if !uninit.constraint_of(s, &UninitFact::Local(u)).is_false() {
                    uses += 1;
                }
            }
        }
    }
    println!("uninitialized-variable analysis: {uses} possibly-uninitialized uses");

    // ---- one concrete witness trace (plain IFDS on one product) -------
    let [full, _] = spl.extrapolation_configs();
    let product = spl.program.derive_product(&full);
    let product_icfg = spllift::ir::ProgramIcfg::new(&product);
    let solver = IfdsSolver::solve(&analysis, &product_icfg);
    'outer: for m in product_icfg.methods() {
        for s in product_icfg.stmts_of(m) {
            let StmtKind::Invoke { args, .. } = &product.stmt(s).kind else {
                continue;
            };
            for arg in args {
                let Operand::Local(l) = arg else { continue };
                if let Some(trace) = solver.witness(s, &TaintFact::Local(*l)) {
                    println!(
                        "witness trace for one flow ({} steps), full configuration:",
                        trace.len()
                    );
                    for (stmt, fact) in trace.iter().take(6) {
                        println!("  {fact:?} at [{}]", product_icfg.stmt_label(*stmt));
                    }
                    if trace.len() > 6 {
                        println!("  ... {} more steps", trace.len() - 6);
                    }
                    break 'outer;
                }
            }
        }
    }
    println!(
        "stats: {} jump functions constructed for the taint pass",
        taint.stats().jump_fn_constructions
    );
}
