#!/usr/bin/env bash
# Local CI: everything must pass with no network access.
#
#   ./scripts/ci.sh
#
# The workspace has no crates.io dependencies (see DESIGN.md §5), so
# every step runs with --offline to catch any accidental registry dep.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo test -q --offline =="
cargo test -q --offline

echo "== fuzz smoke (deterministic seed range, sharded) =="
# A short differential fuzz campaign: 32 seeded random product lines,
# each cross-checked SPLLIFT vs A2 (all five analyses, both directions)
# and against the interpreter. Any mismatch exits non-zero and, with
# set -e, fails CI. The seed range is fixed, so this is fully
# deterministic; --jobs 2 also exercises the sharded driver.
./target/release/spllift-cli fuzz --seeds 0..32 --jobs 2

echo "ci: all green"
