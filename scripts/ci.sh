#!/usr/bin/env bash
# Local CI: everything must pass with no network access.
#
#   ./scripts/ci.sh
#
# The workspace has no crates.io dependencies (see DESIGN.md §5), so
# every step runs with --offline to catch any accidental registry dep.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo test -q --offline =="
cargo test -q --offline

echo "ci: all green"
