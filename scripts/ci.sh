#!/usr/bin/env bash
# Local CI: everything must pass with no network access.
#
#   ./scripts/ci.sh
#
# The workspace has no crates.io dependencies (see DESIGN.md §5), so
# every step runs with --offline to catch any accidental registry dep.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo build --release --offline --workspace =="
# --workspace matters: a plain `cargo build` only covers the root facade
# package and its dependencies, which silently skips the bench crate's
# binaries (solver_bench below would run stale).
cargo build --release --offline --workspace

echo "== cargo test -q --offline --workspace =="
cargo test -q --offline --workspace

echo "== fuzz smoke (deterministic seed range, sharded) =="
# A short differential fuzz campaign: 32 seeded random product lines,
# each cross-checked SPLLIFT vs A2 (all five analyses, both directions)
# and against the interpreter. Any mismatch exits non-zero and, with
# set -e, fails CI. The seed range is fixed, so this is fully
# deterministic; --jobs 2 also exercises the sharded driver.
./target/release/spllift-cli fuzz --seeds 0..32 --jobs 2

echo "== datalog backend crosscheck smoke (MM08/GPL, jobs 1,2) =="
# The second backend (DESIGN.md §13) must agree with the IDE lifting on
# every fact's constraint, and its stdout must be byte-identical across
# --jobs values. `--crosscheck` exits non-zero on any digest mismatch;
# the diff pins the jobs-invariance of the sharded semi-naive fixpoint.
SMOKE_DL1="$(mktemp -t datalog-smoke-j1.XXXXXX.txt)"
SMOKE_DL2="$(mktemp -t datalog-smoke-j2.XXXXXX.txt)"
trap 'rm -f "$SMOKE_DL1" "$SMOKE_DL2"' EXIT
for subject in gen:MM08 gen:GPL; do
    ./target/release/spllift-cli datalog "$subject" --crosscheck --jobs 1 > "$SMOKE_DL1"
    ./target/release/spllift-cli datalog "$subject" --crosscheck --jobs 2 > "$SMOKE_DL2"
    diff -u "$SMOKE_DL1" "$SMOKE_DL2"
    grep -q "SPLLIFT and Datalog agree" "$SMOKE_DL1"
done

echo "== solver bench smoke (emit + validate, threads 1,2) =="
# Emits a fresh benchmark document (schema `spllift-bench-solver/v4`)
# on the small subjects — to a scratch path, never over the committed
# baseline — and schema-validates it, so the emitter, the parser, and
# the measured hot path all stay wired. `--threads 1,2` exercises the
# threads dimension: the validator rejects the document unless every
# entry's results digest is identical across thread counts, so this
# smoke also re-proves solver determinism under the parallel phase-1
# worklist. The committed baseline is refreshed manually with the
# default arguments instead (see EXPERIMENTS.md §BENCH).
SMOKE_BENCH="$(mktemp -t solver-bench-smoke.XXXXXX.json)"
trap 'rm -f "$SMOKE_BENCH" "$SMOKE_DL1" "$SMOKE_DL2"' EXIT
./target/release/solver_bench --samples 1 --subjects fig1,chat,MM08 \
    --threads 1,2 --out "$SMOKE_BENCH"
./target/release/solver_bench --validate "$SMOKE_BENCH"

echo "== committed solver baseline (validate + regression gate) =="
# The committed baseline must always be a valid v4 document...
./target/release/solver_bench --validate BENCH_solver.json
# ...and the regression gate must actually run against it. Smoke mode:
# re-measure a small sub-matrix (restricting --subjects/--threads turns
# baseline cells we skip into non-failures), one sample, and a loose
# tolerance — CI machines are noisy and 1-sample minima are not; the
# full-matrix gate (`solver_bench --check BENCH_solver.json`) is the
# pre-baseline-refresh workflow, not a CI step.
./target/release/solver_bench --check BENCH_solver.json \
    --subjects fig1,chat,MM08 --threads 1 --samples 3 --tolerance 3.0

echo "== regression gate negative test (injected slowdown must fail) =="
# A gate that cannot fail is decoration. Stall one cell far past any
# plausible tolerance and require the exit code to flip.
if ./target/release/solver_bench --check BENCH_solver.json \
    --subjects fig1 --threads 1 --samples 1 --tolerance 3.0 \
    --inject-slow fig1:Taint:2000 2>/dev/null; then
    echo "ci: regression gate FAILED to catch an injected 2s slowdown" >&2
    exit 1
fi
echo "ci: injected slowdown caught as expected"

echo "== serve smoke (golden transcript, jobs-invariant) =="
# Replays the committed request transcript through the resident analysis
# server and diffs the responses byte-exactly — at two --jobs values, so
# both the protocol itself and its jobs-invariance stay pinned. The
# transcript covers a cache hit (zero propagations) and an incremental
# re-analysis after an edit (same digest as the cold solve).
for jobs in 2 1; do
    ./target/release/spllift-cli serve --jobs "$jobs" \
        < tests/serve/transcript.requests \
        | diff -u tests/serve/transcript.expected -
done

echo "== chaos smoke (fault injection, golden per fault class) =="
# Replays the two-session chaos transcript with each deterministic
# injected fault class and diffs the full response stream against the
# committed golden: the victim session must be quarantined (panic) or
# degraded down the abstraction ladder (budget/deadline), the healthy
# session must be byte-identical to a fault-free run, and a re-load must
# recover the victim at full precision.
for fault in panic-in-flow bdd-blowup slow-edge; do
    ./target/release/spllift-cli serve --jobs 1 --inject-fault "$fault@2" \
        < tests/serve/chaos.requests \
        | diff -u "tests/serve/chaos-$fault.expected" -
done
# budget-exhaust arms an exact BDD op budget on the victim's first
# analyze: the golden pins the full lattice descent (full and
# confound(Root) blow the meter, the keep_features-sparing projection
# answers), the degraded-point stats counter, and the full-precision
# unbudgeted retry.
./target/release/spllift-cli serve --jobs 1 \
    --inject-fault budget-exhaust@2000 --inject-fault-session victim \
    < tests/serve/chaos-budget.requests \
    | diff -u tests/serve/chaos-budget-exhaust.expected -

echo "== governed-solve smoke (lattice descent on the 99-feature chain subject) =="
# A paper-scale subject under an op budget no full-precision solve can
# meet: with --keep-features the governor must land on a non-bottom
# lattice point that spares the named features (the response records
# the exact point), and without it the descent must bottom out at the
# PR 5 ladder's constraint-true — pinning that the default ladder is
# unchanged.
GOV_SUBJECT="synthetic:99:12000:71:model=chain:depth=8"
kept=$(printf '%s\n' \
    "{\"type\":\"load\",\"session\":\"g\",\"gen\":\"$GOV_SUBJECT\"}" \
    "{\"type\":\"analyze\",\"session\":\"g\",\"bdd_op_budget\":60000,\"keep_features\":[\"F0\",\"F1\"]}" \
    "{\"type\":\"shutdown\"}" \
    | ./target/release/spllift-cli serve --jobs 1)
echo "$kept" | grep -q '"outcome":"degraded"' \
    || { echo "ci: governed smoke did not degrade: $kept" >&2; exit 1; }
echo "$kept" | grep -q '"rung":"project(' \
    || { echo "ci: governed smoke did not land on a projection point: $kept" >&2; exit 1; }
echo "$kept" | grep -q '"rung":"constraint-true"' \
    && { echo "ci: governed smoke fell to the lattice bottom: $kept" >&2; exit 1; }
bottom=$(printf '%s\n' \
    "{\"type\":\"load\",\"session\":\"g\",\"gen\":\"$GOV_SUBJECT\"}" \
    "{\"type\":\"analyze\",\"session\":\"g\",\"bdd_node_budget\":2}" \
    "{\"type\":\"shutdown\"}" \
    | ./target/release/spllift-cli serve --jobs 1)
echo "$bottom" | grep -q '"rung":"constraint-true"' \
    || { echo "ci: default ladder no longer bottoms out at constraint-true: $bottom" >&2; exit 1; }
echo "$bottom" | grep -Eq '"attempts":\[\{"rung":"full"[^]]*\{"rung":"no-model"' \
    || { echo "ci: default descent is not the full -> no-model ladder: $bottom" >&2; exit 1; }
echo "ci: governed smoke landed on a keep-sparing lattice point"

echo "== socket smoke (3 concurrent clients, golden transcripts) =="
# Serves the protocol over TCP (`--listen`-style in-process server) and
# replays three scripted clients concurrently — each on its own
# connection and session. Every client's response stream must be
# byte-identical to its committed golden, which pins the documented
# per-session determinism of the sharded executor under real
# concurrency (docs/PROTOCOL.md, DESIGN.md §9).
./target/release/server_bench --smoke tests/serve

echo "== server bench document (BENCH_server.json schema) =="
# Schema-validates the committed concurrent-load benchmark document
# (schema `spllift-bench-server/v2`): machine block, at least three
# concurrency levels, zero protocol errors, monotone latency
# percentiles. Regenerating the numbers is a manual step (see
# EXPERIMENTS.md §BENCH server) — CI only proves the committed document
# and the validator stay wired. The server regression gate
# (`server_bench --check BENCH_server.json`) replays all committed
# levels (~256 concurrent connections at the top) and is part of the
# manual baseline-refresh workflow, not a CI step.
./target/release/server_bench --validate BENCH_server.json
echo "ci: all green"
