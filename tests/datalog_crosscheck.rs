//! The Datalog-backend acceptance battery (DESIGN.md §13): reaching
//! definitions solved by the lifted Datalog engine
//! ([`spllift::datalog::solve_reaching_defs`]) must be semantically
//! identical to the IDE lifting — per-fact [`Bdd::semantic_digest`]
//! equality, checked in **both** directions, plus the reachability
//! (Zero-fact) projection — on the paper's benchmark subjects and on
//! every committed fuzz-corpus repro. The engine's relation dump must
//! additionally be **byte-identical** at `jobs = 1` and `jobs = 2`,
//! pinning the sharded semi-naive evaluation deterministic.
//!
//! Lampiro also passes (119 658 facts) but a debug-mode evaluation
//! takes minutes, so it is `#[ignore]`d here and covered by the
//! release-mode CI smoke instead; run it explicitly with
//! `cargo test --release --test datalog_crosscheck -- --ignored`.
//!
//! [`Bdd::semantic_digest`]: spllift::bdd::Bdd::semantic_digest

use spllift::analyses::ReachingDefs;
use spllift::benchgen::{subject_by_name, GeneratedSpl};
use spllift::datalog::{solve_reaching_defs, DumpDoc, EvalOptions};
use spllift::features::{BddConstraintContext, FeatureExpr, FeatureTable};
use spllift::ifds::Icfg;
use spllift::ir::text::parse_repro;
use spllift::ir::{Program, ProgramIcfg};
use spllift::lift::{LiftedSolution, ModelMode};

/// Solves `program` with both backends and asserts semantic equality
/// fact-for-fact plus `jobs` invariance of the dump bytes.
fn assert_backends_agree(
    program: &Program,
    table: &FeatureTable,
    model: Option<&FeatureExpr>,
    label: &str,
) {
    let icfg = ProgramIcfg::new(program);
    let ctx = BddConstraintContext::new(table);
    let ide = LiftedSolution::solve(&ReachingDefs::new(), &icfg, &ctx, model, ModelMode::OnEdges);

    let dl = solve_reaching_defs(&icfg, &ctx, model, &EvalOptions { jobs: 1 })
        .unwrap_or_else(|e| panic!("{label}: datalog evaluation failed: {e}"));
    let sharded = solve_reaching_defs(&icfg, &ctx, model, &EvalOptions { jobs: 2 })
        .unwrap_or_else(|e| panic!("{label}: sharded datalog evaluation failed: {e}"));
    assert_eq!(
        DumpDoc::from_solution(&dl, &ctx, table).render(),
        DumpDoc::from_solution(&sharded, &ctx, table).render(),
        "{label}: dump bytes differ between jobs = 1 and jobs = 2"
    );

    let mut facts = 0usize;
    for m in icfg.methods() {
        for s in icfg.stmts_of(m) {
            let want = ide.results_at(s);
            for (fact, c) in &want {
                let dc = dl.reaching_constraint(s, fact);
                assert_eq!(
                    dc.map(|x| x.semantic_digest()),
                    Some(c.semantic_digest()),
                    "{label}: at {s} fact {fact:?}: IDE has {}, Datalog has {}",
                    c.to_cube_string(),
                    dc.map_or_else(|| "no fact".into(), |x| x.to_cube_string()),
                );
                facts += 1;
            }
            for (fact, c) in dl.reaching_at(s) {
                assert!(
                    want.contains_key(&fact),
                    "{label}: at {s} fact {fact:?} derived only by Datalog ({})",
                    c.to_cube_string()
                );
            }
            let ide_reach = ide.reachability_of(s);
            match dl.reachability_of(s) {
                Some(c) => assert_eq!(
                    c.semantic_digest(),
                    ide_reach.semantic_digest(),
                    "{label}: reachability at {s}: IDE has {}, Datalog has {}",
                    ide_reach.to_cube_string(),
                    c.to_cube_string(),
                ),
                None => assert!(
                    ide_reach.is_false(),
                    "{label}: {s} reachable under {} per IDE but has no Datalog fact",
                    ide_reach.to_cube_string()
                ),
            }
        }
    }
    assert!(facts > 0, "{label}: IDE solution is empty");
}

fn check_generated(name: &str) {
    let spl = GeneratedSpl::generate(subject_by_name(name).expect("known subject"));
    let model = spl.model_expr();
    assert_backends_agree(&spl.program, &spl.table, Some(&model), name);
}

#[test]
fn mm08_matches_ide_and_is_jobs_invariant() {
    check_generated("MM08");
}

#[test]
fn gpl_matches_ide_and_is_jobs_invariant() {
    check_generated("GPL");
}

#[test]
#[ignore = "debug-mode Lampiro evaluation takes minutes; run with --release -- --ignored"]
fn lampiro_matches_ide_and_is_jobs_invariant() {
    check_generated("Lampiro");
}

#[test]
fn corpus_repros_match_ide() {
    let dir = std::path::Path::new("tests/corpus");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("tests/corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "repro"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "corpus must not be empty");
    for path in paths {
        let label = path.display().to_string();
        let text = std::fs::read_to_string(&path).expect("corpus file readable");
        let (program, table) = parse_repro(&text).unwrap_or_else(|e| panic!("{label}: {e:?}"));
        assert_backends_agree(&program, &table, None, &label);
    }
}
