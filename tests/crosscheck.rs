//! Integration: the RQ1 cross-check (§6.1) on a generated benchmark
//! subject — SPLLIFT vs the A2 oracle, both directions, for all four
//! analyses, on every valid MM08 configuration and on sampled GPL ones.

use spllift::benchgen::{subject_by_name, GeneratedSpl};
use spllift::features::BddConstraintContext;
use spllift::spl::crosscheck;

#[test]
fn mm08_all_valid_configs_all_analyses() {
    let spl = GeneratedSpl::generate(subject_by_name("MM08").unwrap());
    let configs = spl.valid_configurations();
    assert_eq!(configs.len(), 26);
    let icfg = spl.icfg();
    let ctx = BddConstraintContext::new(&spl.table);
    let model = spl.model_expr();

    let m = crosscheck(
        &icfg,
        &spllift::analyses::PossibleTypes::new(),
        &ctx,
        Some(&model),
        &configs,
    );
    assert!(m.is_empty(), "possible types: {m:?}");
    let m = crosscheck(
        &icfg,
        &spllift::analyses::ReachingDefs::new(),
        &ctx,
        Some(&model),
        &configs,
    );
    assert!(m.is_empty(), "reaching defs: {m:?}");
    let m = crosscheck(
        &icfg,
        &spllift::analyses::UninitVars::new(),
        &ctx,
        Some(&model),
        &configs,
    );
    assert!(m.is_empty(), "uninit vars: {m:?}");
    let m = crosscheck(
        &icfg,
        &spllift::analyses::TaintAnalysis::secret_to_print(),
        &ctx,
        Some(&model),
        &configs,
    );
    assert!(m.is_empty(), "taint: {m:?}");
}

#[test]
fn lampiro_all_valid_configs() {
    let spl = GeneratedSpl::generate(subject_by_name("Lampiro").unwrap());
    let configs = spl.valid_configurations();
    assert_eq!(configs.len(), 4);
    let icfg = spl.icfg();
    let ctx = BddConstraintContext::new(&spl.table);
    let model = spl.model_expr();
    let m = crosscheck(
        &icfg,
        &spllift::analyses::UninitVars::new(),
        &ctx,
        Some(&model),
        &configs,
    );
    assert!(m.is_empty(), "{m:?}");
}

#[test]
fn gpl_sampled_configs() {
    let spl = GeneratedSpl::generate(subject_by_name("GPL").unwrap());
    let all = spl.valid_configurations();
    assert_eq!(all.len(), 1872);
    // Deterministic stride sample of 6 configurations.
    let configs: Vec<_> = all.into_iter().step_by(312).collect();
    let icfg = spl.icfg();
    let ctx = BddConstraintContext::new(&spl.table);
    let model = spl.model_expr();
    let m = crosscheck(
        &icfg,
        &spllift::analyses::ReachingDefs::new(),
        &ctx,
        Some(&model),
        &configs,
    );
    assert!(m.is_empty(), "{m:?}");
}
