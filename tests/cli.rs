//! Integration: drive the `spllift-cli` binary end to end on the checked-in
//! example data, the way a downstream user would.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_spllift-cli"))
}

#[test]
fn taint_table_on_fig1() {
    let out = cli()
        .args(["examples_data/fig1.minijava", "--analysis", "taint"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Main.main"), "{stdout}");
    // The headline constraint appears in some variable order.
    assert!(
        stdout.contains("!F") && stdout.contains("G") && stdout.contains("!H"),
        "{stdout}"
    );
}

#[test]
fn taint_with_feature_model() {
    let out = cli()
        .args([
            "examples_data/fig1.minijava",
            "--analysis",
            "taint",
            "--model",
            "examples_data/fig1.model",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Under F ⇔ G, y is never tainted at the print call: LocalId(1)
    // must not appear.
    assert!(!stdout.contains("Local(LocalId(1))"), "{stdout}");
}

#[test]
fn dot_output() {
    let out = cli()
        .args(["examples_data/fig1.minijava", "--format", "dot"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("digraph lifted"), "{stdout}");
}

#[test]
fn all_analyses_run() {
    for analysis in ["taint", "types", "reaching-defs", "uninit"] {
        let out = cli()
            .args(["examples_data/fig1.minijava", "--analysis", analysis])
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "analysis {analysis}");
    }
}

#[test]
fn errors_are_reported() {
    let out = cli().args(["does-not-exist.minijava"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));

    let out = cli()
        .args(["examples_data/fig1.minijava", "--analysis", "nope"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown analysis"));
}

#[test]
fn help_lists_subcommands_formats_and_gen_syntax() {
    for invocation in [&["help"][..], &["--help"], &["-h"]] {
        let out = cli().args(invocation).output().unwrap();
        assert!(out.status.success(), "{invocation:?} must exit 0");
        let stdout = String::from_utf8_lossy(&out.stdout);
        for needle in [
            "serve",
            "fuzz",
            "reduce",
            "table|dot|leaks|crosscheck|a2-bench",
            "gen:synthetic:<features>:<loc>:<seed>",
            "gen:MM08",
        ] {
            assert!(stdout.contains(needle), "{invocation:?} missing `{needle}`");
        }
    }
    // `--help` after other analyze-mode arguments also prints it.
    let out = cli()
        .args(["examples_data/fig1.minijava", "--help"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

/// Every serve flag, exactly as the `serve` arg parser spells it. The
/// test below keeps `help`, the README flags table, and the parser
/// reconciled: a flag added to one place must be added to all three.
const SERVE_FLAGS: [&str; 14] = [
    "--listen",
    "--jobs",
    "--threads",
    "--shards",
    "--max-inflight",
    "--cache-entries",
    "--cache-bytes",
    "--solve-timeout-ms",
    "--bdd-node-budget",
    "--bdd-op-budget",
    "--max-propagations",
    "--keep-features",
    "--inject-fault",
    "--inject-fault-session",
];

#[test]
fn serve_help_readme_and_parser_agree_on_the_flag_set() {
    let help = cli().args(["help"]).output().unwrap();
    assert!(help.status.success());
    let help = String::from_utf8_lossy(&help.stdout).into_owned();
    let readme = std::fs::read_to_string("README.md").unwrap();
    for flag in SERVE_FLAGS {
        assert!(help.contains(flag), "help output missing `{flag}`");
        assert!(
            readme.contains(&format!("`{flag}")),
            "README flags table missing `{flag}`"
        );
        // The parser knows the flag: every serve flag takes a value, so
        // a trailing flag must die with a "needs" diagnostic naming it
        // (and not with "unknown argument") before the server starts.
        let out = cli().args(["serve", flag]).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "serve {flag} must exit 2");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(flag) && stderr.contains("needs"),
            "serve {flag} without a value: expected a `needs ...` \
             diagnostic naming the flag, got: {stderr}"
        );
    }
    // The help's serve section points at the full wire contract.
    assert!(
        help.contains("docs/PROTOCOL.md"),
        "help must reference docs/PROTOCOL.md"
    );
    // No serve flag exists in the parser without being listed here:
    // probing an undeclared spelling must be rejected as unknown.
    let out = cli().args(["serve", "--no-such-flag"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unexpected serve argument"));
}

/// Every datalog flag, exactly as the `datalog` arg parser spells it,
/// split by whether the flag takes a value. Mirrors [`SERVE_FLAGS`]:
/// the test below keeps `help`, the README "Datalog backend" section,
/// and the parser reconciled — a flag added to one place must be added
/// to all three.
const DATALOG_VALUE_FLAGS: [&str; 2] = ["--jobs", "--model"];
const DATALOG_SWITCH_FLAGS: [&str; 2] = ["--dump-relations", "--crosscheck"];

#[test]
fn datalog_help_readme_and_parser_agree_on_the_flag_set() {
    let help = cli().args(["help"]).output().unwrap();
    assert!(help.status.success());
    let help = String::from_utf8_lossy(&help.stdout).into_owned();
    assert!(
        help.contains("spllift-cli datalog"),
        "help must list the datalog subcommand"
    );
    let readme = std::fs::read_to_string("README.md").unwrap();
    for flag in DATALOG_VALUE_FLAGS.iter().chain(&DATALOG_SWITCH_FLAGS) {
        assert!(help.contains(flag), "help output missing `{flag}`");
        assert!(
            readme.contains(&format!("`{flag}")),
            "README Datalog section missing `{flag}`"
        );
    }
    // Value flags without a value must die with a `needs` diagnostic
    // naming the flag, before any analysis runs.
    for flag in DATALOG_VALUE_FLAGS {
        let out = cli().args(["datalog", flag]).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "datalog {flag} must exit 2");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(flag) && stderr.contains("needs"),
            "datalog {flag} without a value: expected a `needs ...` \
             diagnostic naming the flag, got: {stderr}"
        );
    }
    // No datalog flag exists in the parser without being listed here.
    let out = cli()
        .args(["datalog", "examples_data/fig1.minijava", "--no-such-flag"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unexpected datalog argument"));
}

#[test]
fn datalog_crosschecks_fig1_and_is_jobs_invariant() {
    let run = |jobs: &str, extra: &[&str]| {
        let mut args = vec![
            "datalog",
            "examples_data/fig1.minijava",
            "--crosscheck",
            "--jobs",
            jobs,
        ];
        args.extend_from_slice(extra);
        let out = cli().args(&args).output().expect("binary runs");
        assert!(
            out.status.success(),
            "jobs {jobs}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let reference = run("1", &[]);
    let text = String::from_utf8_lossy(&reference).into_owned();
    assert!(text.contains("SPLLIFT and Datalog agree on all"), "{text}");
    for jobs in ["2", "5"] {
        assert_eq!(
            run(jobs, &[]),
            reference,
            "stdout differs for --jobs {jobs}"
        );
    }
    // With the feature model the backends must still agree.
    let modeled = run("2", &["--model", "examples_data/fig1.model"]);
    let text = String::from_utf8_lossy(&modeled);
    assert!(text.contains("SPLLIFT and Datalog agree on all"), "{text}");
}

#[test]
fn datalog_dump_has_header_and_relations() {
    let out = cli()
        .args(["datalog", "examples_data/fig1.minijava", "--dump-relations"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("# spllift datalog dump v1"), "{stdout}");
    for needle in ["features ", "relation PE/7", "relation Val/4"] {
        assert!(stdout.contains(needle), "dump missing `{needle}`");
    }
}

#[test]
fn unknown_subcommand_prints_help_to_stderr() {
    let out = cli().args(["analyse"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(out.stdout.is_empty());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown subcommand `analyse`"), "{stderr}");
    assert!(stderr.contains("USAGE"), "{stderr}");
}

#[test]
fn leaks_format() {
    let out = cli()
        .args(["examples_data/fig1.minijava", "--format", "leaks"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("LEAK at"), "{stdout}");

    // Under the model F ⇔ G the leak disappears.
    let out = cli()
        .args([
            "examples_data/fig1.minijava",
            "--format",
            "leaks",
            "--model",
            "examples_data/fig1.model",
        ])
        .output()
        .unwrap();
    assert!(String::from_utf8_lossy(&out.stdout).contains("no source-to-sink flows"));

    // leaks + non-taint analysis is an error.
    let out = cli()
        .args([
            "examples_data/fig1.minijava",
            "--analysis",
            "uninit",
            "--format",
            "leaks",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn fuzz_stdout_is_byte_identical_across_jobs() {
    // Acceptance criterion of the fuzz driver: for a fixed seed range the
    // report on stdout is byte-identical no matter how the seeds were
    // sharded. Timings and shard stats go to stderr only.
    let run = |jobs: &str| {
        let out = cli()
            .args(["fuzz", "--seeds", "0..16", "--jobs", jobs])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "jobs {jobs}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let reference = run("1");
    let text = String::from_utf8_lossy(&reference).into_owned();
    assert!(text.contains("fuzz: 16 seeds checked, 16 ok"), "{text}");
    for jobs in ["2", "8"] {
        assert_eq!(run(jobs), reference, "stdout differs for --jobs {jobs}");
    }
}

#[test]
fn fuzz_reports_and_reduces_injected_bug() {
    let out = cli()
        .args([
            "fuzz",
            "--seeds",
            "0..4",
            "--jobs",
            "2",
            "--inject-bug",
            "kill-call-to-return",
        ])
        .output()
        .expect("binary runs");
    // Mismatches => exit code 2, like a failing crosscheck.
    assert_eq!(out.status.code(), Some(2));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FAIL"), "{stdout}");
    assert!(stdout.contains("reduced seed"), "{stdout}");
}

#[test]
fn reduce_gen_emits_parseable_repro() {
    let out = cli()
        .args(["reduce", "gen:3:3:3"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("# spllift repro v1"), "{stdout}");
    assert!(stdout.contains("entry main"), "{stdout}");
}

#[test]
fn chat_product_line_leak_analysis() {
    // Without a model: the raw key reaches the log under LOGGING && !ENCRYPT.
    let out = cli()
        .args(["examples_data/chat.minijava", "--format", "leaks"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("LEAK at"), "{stdout}");
    assert!(stdout.contains("LOGGING"), "{stdout}");
    assert!(stdout.contains("!ENCRYPT"), "{stdout}");

    // The model does not forbid LOGGING && !ENCRYPT, so the leak remains.
    let out = cli()
        .args([
            "examples_data/chat.minijava",
            "--format",
            "leaks",
            "--model",
            "examples_data/chat.model",
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("LEAK at"), "{stdout}");
}
