//! Integration: the A1 (generate-and-analyze) and A2 (feature-aware,
//! configuration-specific) baselines agree on derived products — the
//! structural property that makes A2 a legitimate stand-in for A1 in
//! Table 2, as argued in §6.2.

use spllift::analyses::{TaintAnalysis, UninitVars};
use spllift::benchgen::{subject_by_name, GeneratedSpl};
use spllift::ifds::Icfg as _;
use spllift::lift::LiftedIcfg;
use spllift::spl::{solve_a2, A1Run};

#[test]
fn a1_equals_a2_on_mm08_products() {
    let spl = GeneratedSpl::generate(subject_by_name("MM08").unwrap());
    let icfg = spl.icfg();
    let lifted_icfg = LiftedIcfg::new(&icfg);
    let analysis = UninitVars::new();
    // Statement indices are stable under product derivation (disabled
    // statements become nops in place), so results are comparable.
    for config in spl.valid_configurations().into_iter().step_by(5) {
        let a2 = solve_a2(&analysis, &lifted_icfg, &config);
        let a1 = A1Run::analyze(&spl.program, &analysis, config.clone());
        for m in icfg.methods() {
            for s in icfg.stmts_of(m) {
                assert_eq!(a2.results_at(s), a1.results_at(s), "at {s} for {config:?}");
            }
        }
    }
}

#[test]
fn a1_equals_a2_on_lampiro_products_taint() {
    let spl = GeneratedSpl::generate(subject_by_name("Lampiro").unwrap());
    let icfg = spl.icfg();
    let lifted_icfg = LiftedIcfg::new(&icfg);
    let analysis = TaintAnalysis::secret_to_print();
    for config in spl.valid_configurations() {
        let a2 = solve_a2(&analysis, &lifted_icfg, &config);
        let a1 = A1Run::analyze(&spl.program, &analysis, config.clone());
        for m in icfg.methods() {
            for s in icfg.stmts_of(m) {
                assert_eq!(a2.results_at(s), a1.results_at(s), "at {s}");
            }
        }
    }
}

#[test]
fn a1_shares_no_state_across_products() {
    // Each A1 run derives its own product and call graph: the runs are
    // independent (this is exactly the cost A2 amortizes).
    let spl = GeneratedSpl::generate(subject_by_name("Lampiro").unwrap());
    let analysis = UninitVars::new();
    let configs = spl.valid_configurations();
    let runs: Vec<_> = configs
        .iter()
        .map(|c| A1Run::analyze(&spl.program, &analysis, c.clone()))
        .collect();
    assert_eq!(runs.len(), 4);
    for (run, config) in runs.iter().zip(&configs) {
        assert_eq!(&run.config, config);
        assert!(run.stats.propagations > 0);
    }
}
