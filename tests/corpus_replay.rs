//! Replay the committed repro corpus: every `tests/corpus/*.repro` file
//! (reduced repros from past fuzz campaigns, plus representative
//! generated subjects) is parsed and pushed through the full differential
//! battery — all five lifted analyses cross-checked against A2 in both
//! directions, reaching definitions re-solved by the independent lifted
//! Datalog engine, the abstraction differential (full-precision
//! constraints must entail a random lattice point's), plus the
//! interpreter-soundness oracle — with **no** injected bug. A healthy
//! implementation reports zero mismatches on every corpus entry.
//!
//! `gen-stratified-negation.repro` is hand-written to exercise the
//! Datalog backend's stratified negation: a feature-annotated
//! redefinition kills a reaching def on the `act` (statement executes)
//! path while the def survives on the `idn` (statement compiled out)
//! path, so the kill-check `neg(defs, …)` must interact correctly with
//! the lifted constraints.
//!
//! The corpus grows over time: `spllift-cli fuzz --corpus-dir
//! tests/corpus` appends a reduced repro for every failure a campaign
//! finds, so any bug the fuzzer ever caught stays caught.

use spllift::features::FeatureId;
use spllift::ir::text::parse_repro;
use spllift::spl::{check_program, InjectedBug};

#[test]
fn corpus_is_present_and_replays_clean() {
    let dir = std::path::Path::new("tests/corpus");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("tests/corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "repro"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 3,
        "corpus should hold at least 3 repro programs, found {}",
        paths.len()
    );

    for path in paths {
        let text = std::fs::read_to_string(&path).expect("corpus file readable");
        let (program, table) =
            parse_repro(&text).unwrap_or_else(|e| panic!("{}: {e:?}", path.display()));
        program
            .check()
            .unwrap_or_else(|e| panic!("{}: ill-formed IR: {e:?}", path.display()));
        let features: Vec<FeatureId> = table.iter().map(|(f, _)| f).collect();
        // `threads: 2` makes every corpus replay also pin the threaded
        // solve byte-identical to the sequential one. Repro files carry
        // no campaign seed; 0 seeds the lattice-point stream.
        let (verdicts, unpredicted) =
            check_program(&program, &table, &features, 0, InjectedBug::None, 100, 2);
        for v in &verdicts {
            assert!(
                v.mismatches.is_empty(),
                "{}: {} crosscheck mismatches: {:?}",
                path.display(),
                v.analysis,
                v.mismatches
            );
        }
        assert!(
            unpredicted.is_empty(),
            "{}: dynamic events unpredicted by the lifted analyses: {unpredicted:?}",
            path.display()
        );
    }
}
