//! Integration: the full paper pipeline through the facade crate —
//! source text → frontend → IR/ICFG → lifting → constraints.

use spllift::analyses::{TaintAnalysis, TaintFact};
use spllift::features::{
    BddConstraintContext, Configuration, ConstraintContext, FeatureExpr, FeatureTable,
};
use spllift::frontend::parse_spl;
use spllift::ir::{Callee, ProgramIcfg, StmtKind, StmtRef};
use spllift::lift::{LiftedSolution, ModelMode};

const FIG1: &str = r#"
class Main {
    static int secret() { return 42; }
    static void print(int v) { }
    static int foo(int p) {
        #ifdef H
        p = 0;
        #endif
        return p;
    }
    static void main() {
        int x = secret();
        int y = 0;
        #ifdef F
        x = 0;
        #endif
        #ifdef G
        y = Main.foo(x);
        #endif
        Main.print(y);
    }
}
"#;

fn print_call_and_arg(program: &spllift::ir::Program) -> (StmtRef, spllift::ir::LocalId) {
    let main = program.find_method("Main.main").unwrap();
    let print = program.find_method("Main.print").unwrap();
    program
        .stmts_of(main)
        .find_map(|s| match &program.stmt(s).kind {
            StmtKind::Invoke {
                callee: Callee::Static(m),
                args,
                ..
            } if *m == print => Some((s, args[0].as_local().unwrap())),
            _ => None,
        })
        .unwrap()
}

#[test]
fn paper_headline_result() {
    let mut table = FeatureTable::new();
    let program = parse_spl(FIG1, &mut table).unwrap();
    let icfg = ProgramIcfg::new(&program);
    let ctx = BddConstraintContext::new(&table);
    let analysis = TaintAnalysis::secret_to_print();
    let solution = LiftedSolution::solve(&analysis, &icfg, &ctx, None, ModelMode::Ignore);
    let (call, arg) = print_call_and_arg(&program);
    let got = solution.constraint_of(call, &TaintFact::Local(arg));
    let expected = ctx.of_expr(&FeatureExpr::parse("!F && G && !H", &mut table).unwrap());
    assert_eq!(got, expected);
}

#[test]
fn feature_model_neutralizes_leak() {
    let mut table = FeatureTable::new();
    let program = parse_spl(FIG1, &mut table).unwrap();
    let icfg = ProgramIcfg::new(&program);
    let ctx = BddConstraintContext::new(&table);
    let analysis = TaintAnalysis::secret_to_print();
    let model = FeatureExpr::parse("(F && G) || (!F && !G)", &mut table).unwrap();
    let solution = LiftedSolution::solve(&analysis, &icfg, &ctx, Some(&model), ModelMode::OnEdges);
    let (call, arg) = print_call_and_arg(&program);
    assert!(solution
        .constraint_of(call, &TaintFact::Local(arg))
        .is_false());
}

#[test]
fn constraint_evaluates_per_configuration() {
    let mut table = FeatureTable::new();
    let program = parse_spl(FIG1, &mut table).unwrap();
    let icfg = ProgramIcfg::new(&program);
    let ctx = BddConstraintContext::new(&table);
    let analysis = TaintAnalysis::secret_to_print();
    let solution = LiftedSolution::solve(&analysis, &icfg, &ctx, None, ModelMode::Ignore);
    let (call, arg) = print_call_and_arg(&program);
    let fact = TaintFact::Local(arg);
    let f = table.get("F").unwrap();
    let g = table.get("G").unwrap();
    let h = table.get("H").unwrap();
    // Exactly one of the eight configurations leaks.
    let mut leaky = Vec::new();
    for bits in 0u64..8 {
        let mut cfg = Configuration::empty();
        for (i, feat) in [f, g, h].into_iter().enumerate() {
            if bits & (1 << i) != 0 {
                cfg.enable(feat);
            }
        }
        if solution.holds_in(&ctx, call, &fact, &cfg) {
            leaky.push(cfg.clone());
        }
    }
    assert_eq!(leaky, vec![Configuration::from_enabled([g])]);
}

#[test]
fn reachability_side_effect() {
    // §3.3: the zero fact's value is the reachability constraint.
    let mut table = FeatureTable::new();
    let program = parse_spl(FIG1, &mut table).unwrap();
    let icfg = ProgramIcfg::new(&program);
    let ctx = BddConstraintContext::new(&table);
    let analysis = TaintAnalysis::secret_to_print();
    let solution = LiftedSolution::solve(&analysis, &icfg, &ctx, None, ModelMode::Ignore);
    let foo = program.find_method("Main.foo").unwrap();
    let g = ctx.lit(table.get("G").unwrap(), true);
    assert_eq!(solution.reachability_of(program.entry_of(foo)), g);
    let main = program.find_method("Main.main").unwrap();
    assert!(solution.reachability_of(program.entry_of(main)).is_true());
}
