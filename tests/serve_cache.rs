//! Solution-cache eviction under a byte budget: with a budget that fits
//! roughly one rendered solution, analyzing several subjects in
//! rotation must evict (visible in the `stats` counters), and a
//! re-analyze after eviction must be a genuine cold solve whose digest
//! is bit-identical to the original — eviction costs time, never
//! correctness.

use spllift::json::{parse_json, Json};
use spllift::server::{Server, ServerOptions};

fn drive(server: &mut Server, line: &str) -> Json {
    let (resp, _shutdown) = server.handle_line(line);
    parse_json(&resp).expect("server responses are valid json")
}

fn field<'a>(resp: &'a Json, key: &str) -> &'a Json {
    resp.get(key)
        .unwrap_or_else(|| panic!("response missing `{key}`: {resp:?}"))
}

fn analyze(server: &mut Server, session: &str) -> (String, String) {
    let resp = drive(
        server,
        &format!("{{\"type\":\"analyze\",\"session\":\"{session}\"}}"),
    );
    assert_eq!(field(&resp, "type").as_str(), Some("ok"), "{resp:?}");
    (
        field(&resp, "solve").as_str().unwrap().to_owned(),
        field(&resp, "digest").as_str().unwrap().to_owned(),
    )
}

#[test]
fn eviction_under_byte_budget_keeps_solves_bit_identical() {
    // ~8 KiB fits one rendered solution of these subjects, not three.
    let mut server = Server::new(ServerOptions {
        cache_bytes: 8 << 10,
        ..ServerOptions::default()
    });
    let subjects = [
        ("a", "synthetic:3:80:1"),
        ("b", "synthetic:3:80:2"),
        ("c", "synthetic:3:80:3"),
    ];
    for (name, spec) in subjects {
        let resp = drive(
            &mut server,
            &format!("{{\"type\":\"load\",\"session\":\"{name}\",\"gen\":\"{spec}\"}}"),
        );
        assert_eq!(field(&resp, "type").as_str(), Some("ok"), "{resp:?}");
    }

    // First pass: three cold solves, whose digests we pin.
    let mut cold = Vec::new();
    for (name, _) in subjects {
        let (solve, digest) = analyze(&mut server, name);
        assert_eq!(solve, "cold");
        cold.push(digest);
    }

    // The byte budget cannot hold all three: evictions must be counted.
    let stats = drive(&mut server, "{\"type\":\"stats\"}");
    let cache = field(&stats, "cache");
    let evictions = field(cache, "evictions").as_u64().unwrap();
    let entries = field(cache, "entries").as_u64().unwrap();
    assert!(evictions >= 2, "no evictions under 8 KiB budget: {stats:?}");
    // The newest entry is always retained, even when it alone exceeds
    // the byte budget; everything older must have been evicted.
    assert_eq!(entries, 1, "{stats:?}");

    // Second pass: the evicted subjects re-solve (cold — their sessions'
    // memos are intact but the rotation also proves the cache path), and
    // every digest is bit-identical to the first pass.
    let mut hits = 0;
    for ((name, _), expected) in subjects.iter().zip(&cold) {
        let (solve, digest) = analyze(&mut server, name);
        assert_eq!(
            &digest, expected,
            "re-analyze of `{name}` after eviction diverged"
        );
        if solve == "cached" {
            hits += 1;
        }
    }
    assert!(hits < 3, "nothing was evicted, test is vacuous");

    let stats = drive(&mut server, "{\"type\":\"stats\"}");
    let cache = field(&stats, "cache");
    assert!(field(cache, "evictions").as_u64().unwrap() >= evictions);
    assert!(field(cache, "misses").as_u64().unwrap() >= 4);
}
