//! Solution-cache eviction under a byte budget: with a budget that fits
//! roughly one rendered solution, analyzing several subjects in
//! rotation must evict (visible in the `stats` counters), and a
//! re-analyze after eviction must be a genuine cold solve whose digest
//! is bit-identical to the original — eviction costs time, never
//! correctness.

use spllift::json::{parse_json, Json};
use spllift::server::{Server, ServerOptions};

fn drive(server: &mut Server, line: &str) -> Json {
    let (resp, _shutdown) = server.handle_line(line);
    parse_json(&resp).expect("server responses are valid json")
}

fn field<'a>(resp: &'a Json, key: &str) -> &'a Json {
    resp.get(key)
        .unwrap_or_else(|| panic!("response missing `{key}`: {resp:?}"))
}

fn analyze(server: &mut Server, session: &str) -> (String, String) {
    let resp = drive(
        server,
        &format!("{{\"type\":\"analyze\",\"session\":\"{session}\"}}"),
    );
    assert_eq!(field(&resp, "type").as_str(), Some("ok"), "{resp:?}");
    (
        field(&resp, "solve").as_str().unwrap().to_owned(),
        field(&resp, "digest").as_str().unwrap().to_owned(),
    )
}

#[test]
fn eviction_under_byte_budget_keeps_solves_bit_identical() {
    // ~8 KiB fits one rendered solution of these subjects, not three.
    let mut server = Server::new(ServerOptions {
        cache_bytes: 8 << 10,
        ..ServerOptions::default()
    });
    let subjects = [
        ("a", "synthetic:3:80:1"),
        ("b", "synthetic:3:80:2"),
        ("c", "synthetic:3:80:3"),
    ];
    for (name, spec) in subjects {
        let resp = drive(
            &mut server,
            &format!("{{\"type\":\"load\",\"session\":\"{name}\",\"gen\":\"{spec}\"}}"),
        );
        assert_eq!(field(&resp, "type").as_str(), Some("ok"), "{resp:?}");
    }

    // First pass: three cold solves, whose digests we pin.
    let mut cold = Vec::new();
    for (name, _) in subjects {
        let (solve, digest) = analyze(&mut server, name);
        assert_eq!(solve, "cold");
        cold.push(digest);
    }

    // The byte budget cannot hold all three: evictions must be counted.
    let stats = drive(&mut server, "{\"type\":\"stats\"}");
    let cache = field(&stats, "cache");
    let evictions = field(cache, "evictions").as_u64().unwrap();
    let entries = field(cache, "entries").as_u64().unwrap();
    assert!(evictions >= 2, "no evictions under 8 KiB budget: {stats:?}");
    // The newest entry is always retained, even when it alone exceeds
    // the byte budget; everything older must have been evicted.
    assert_eq!(entries, 1, "{stats:?}");

    // Second pass: the evicted subjects re-solve (cold — their sessions'
    // memos are intact but the rotation also proves the cache path), and
    // every digest is bit-identical to the first pass.
    let mut hits = 0;
    for ((name, _), expected) in subjects.iter().zip(&cold) {
        let (solve, digest) = analyze(&mut server, name);
        assert_eq!(
            &digest, expected,
            "re-analyze of `{name}` after eviction diverged"
        );
        if solve == "cached" {
            hits += 1;
        }
    }
    assert!(hits < 3, "nothing was evicted, test is vacuous");

    let stats = drive(&mut server, "{\"type\":\"stats\"}");
    let cache = field(&stats, "cache");
    assert!(field(cache, "evictions").as_u64().unwrap() >= evictions);
    assert!(field(cache, "misses").as_u64().unwrap() >= 4);
}

#[test]
fn degraded_solves_at_any_lattice_point_never_enter_the_cache() {
    // A budget that forces the governor off full precision but not to
    // the bottom: on the 12-feature groups subject 2000 BDD ops rule out
    // `full` and `confound(Root)` while the keep-sparing projection
    // fits, so the solve lands on a composite, non-bottom lattice point.
    let mut server = Server::new(ServerOptions::default());
    let resp = drive(
        &mut server,
        "{\"type\":\"load\",\"session\":\"s\",\"gen\":\"synthetic:12:400:23:model=groups\"}",
    );
    assert_eq!(field(&resp, "type").as_str(), Some("ok"), "{resp:?}");

    let degraded = drive(
        &mut server,
        "{\"type\":\"analyze\",\"session\":\"s\",\"bdd_op_budget\":2000,\
         \"keep_features\":[\"F0\",\"F1\"]}",
    );
    assert_eq!(field(&degraded, "outcome").as_str(), Some("degraded"));
    let rung = field(&degraded, "rung").as_str().unwrap().to_owned();
    assert!(
        rung.starts_with("project(") && rung != "constraint-true",
        "want a non-bottom lattice point, got `{rung}`"
    );
    // The degraded answer must not occupy a cache slot: a later,
    // better-funded solve of the same program would be shadowed by it
    // (the key carries no budget).
    let stats = drive(&mut server, "{\"type\":\"stats\"}");
    assert_eq!(
        field(field(&stats, "cache"), "entries").as_u64(),
        Some(0),
        "degraded solution entered the cache: {stats:?}"
    );

    // Retry with the budget raised (lifted entirely): a genuine cold
    // re-solve at full precision.
    let (solve, digest) = analyze(&mut server, "s");
    assert_eq!(solve, "cold");
    let full = drive(&mut server, "{\"type\":\"analyze\",\"session\":\"s\"}");
    assert_eq!(field(&full, "solve").as_str(), Some("cached"));
    assert_eq!(field(&full, "outcome").as_str(), Some("complete"));
    assert_eq!(field(&full, "rung").as_str(), Some("full"));
    assert_eq!(field(&full, "digest").as_str(), Some(digest.as_str()));
    let stats = drive(&mut server, "{\"type\":\"stats\"}");
    assert_eq!(field(field(&stats, "cache"), "entries").as_u64(), Some(1));
    // The governance counters attribute the one degradation to the
    // exact lattice point it landed on.
    let gov = field(&stats, "governance");
    let by_point = field(field(gov, "degraded_points"), &rung);
    assert_eq!(by_point.as_u64(), Some(1), "{stats:?}");
}
