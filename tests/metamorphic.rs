//! Metamorphic oracles for the lifted analysis — properties that relate
//! *two* SPLLIFT runs (or a SPLLIFT run and an A1 run) without needing a
//! ground-truth answer for either:
//!
//! 1. **Pinning**: a feature model that pins exactly one configuration
//!    collapses SPLLIFT to the traditional A1 analysis of the derived
//!    product — same facts, and every surviving constraint admits the
//!    pinned configuration.
//! 2. **Strengthening**: conjoining extra clauses onto the feature model
//!    can only *restrict* the per-fact constraints (BDD implication);
//!    no fact gains configurations by tightening the model.
//!
//! Both properties hold for every IFDS problem, so they double as cheap
//! oracles in the fuzz campaign (`spllift::spl::fuzz`) where no A2
//! baseline has been run.

use spllift::analyses::{PossibleTypes, ReachingDefs, TaintAnalysis, Typestate, UninitVars};
use spllift::benchgen::{random_spl, subject_by_name, GeneratedSpl};
use spllift::features::{
    BddConstraintContext, Configuration, ConstraintContext, FeatureExpr, FeatureId, FeatureTable,
};
use spllift::frontend::parse_spl;
use spllift::ifds::{Icfg, IfdsProblem};
use spllift::ir::{ClassId, Program, ProgramIcfg};
use spllift::lift::{LiftedSolution, ModelMode};
use spllift::spl::A1Run;
use std::fmt::Debug;
use std::hash::Hash;

/// The feature expression `⋀ f∈universe (f | ¬f)` that is satisfied by
/// exactly `config` — the "model" that turns a product line back into a
/// single product.
fn pin_model(universe: &[FeatureId], config: &Configuration) -> FeatureExpr {
    universe
        .iter()
        .map(|&f| {
            if config.is_enabled(f) {
                FeatureExpr::var(f)
            } else {
                FeatureExpr::var(f).not()
            }
        })
        .reduce(FeatureExpr::and)
        .expect("non-empty feature universe")
}

/// Property 1: SPLLIFT under a pinning model ≡ A1 on the derived product,
/// in both directions (mirrors the §6.1 cross-check, with A1 as oracle).
fn assert_pinned_equals_a1<D, P>(
    program: &Program,
    table: &FeatureTable,
    universe: &[FeatureId],
    problem: &P,
    config: &Configuration,
    label: &str,
) where
    D: Clone + Eq + Hash + Debug + Send + Sync,
    P: for<'a> IfdsProblem<ProgramIcfg<'a>, Fact = D> + Sync,
{
    let icfg = ProgramIcfg::new(program);
    let ctx = BddConstraintContext::new(table);
    let pin = pin_model(universe, config);
    let lifted = LiftedSolution::solve(problem, &icfg, &ctx, Some(&pin), ModelMode::OnEdges);
    let a1 = A1Run::analyze(program, problem, config.clone());
    for m in icfg.methods() {
        for s in icfg.stmts_of(m) {
            let a1_facts = a1.results_at(s);
            // A1 fact ⟹ the pinned constraint admits the configuration.
            for fact in &a1_facts {
                let c = lifted.constraint_of(s, fact);
                assert!(
                    ctx.satisfied_by(&c, config),
                    "{label}: A1 fact {fact:?} at {s} rejected by pinned SPLLIFT \
                     under {config:?}"
                );
            }
            // Satisfiable pinned constraint ⟹ A1 computed the fact.
            for (fact, c) in lifted.results_at(s) {
                if !c.is_false() && ctx.satisfied_by(&c, config) {
                    assert!(
                        a1_facts.contains(&fact),
                        "{label}: pinned SPLLIFT fact {fact:?} at {s} absent from A1 \
                         under {config:?}"
                    );
                }
            }
        }
    }
}

/// Runs property 1 for all five liftable analyses over every
/// configuration in `configs`.
fn check_all_analyses_pinned(
    program: &Program,
    table: &FeatureTable,
    universe: &[FeatureId],
    configs: &[Configuration],
    label: &str,
) {
    for config in configs {
        assert_pinned_equals_a1(
            program,
            table,
            universe,
            &TaintAnalysis::secret_to_print(),
            config,
            &format!("{label}/taint"),
        );
        assert_pinned_equals_a1(
            program,
            table,
            universe,
            &PossibleTypes::new(),
            config,
            &format!("{label}/types"),
        );
        assert_pinned_equals_a1(
            program,
            table,
            universe,
            &ReachingDefs::new(),
            config,
            &format!("{label}/reaching"),
        );
        assert_pinned_equals_a1(
            program,
            table,
            universe,
            &UninitVars::new(),
            config,
            &format!("{label}/uninit"),
        );
        assert_pinned_equals_a1(
            program,
            table,
            universe,
            &Typestate::new(ClassId(0), ["open"], ["close"], ["read"]),
            config,
            &format!("{label}/typestate"),
        );
    }
}

fn all_configurations(n: usize) -> Vec<Configuration> {
    (0u64..(1 << n))
        .map(|b| Configuration::from_bits(b, n))
        .collect()
}

#[test]
fn pinning_collapses_to_a1_on_fig1() {
    let ex = spllift::ir::samples::fig1();
    let universe: Vec<FeatureId> = ex.features.to_vec();
    check_all_analyses_pinned(
        &ex.program,
        &ex.table,
        &universe,
        &all_configurations(universe.len()),
        "fig1",
    );
}

#[test]
fn pinning_collapses_to_a1_on_chat() {
    let source =
        std::fs::read_to_string("examples_data/chat.minijava").expect("chat example present");
    let mut table = FeatureTable::new();
    let program = parse_spl(&source, &mut table).expect("chat parses");
    let universe: Vec<FeatureId> = table.iter().map(|(f, _)| f).collect();
    check_all_analyses_pinned(
        &program,
        &table,
        &universe,
        &all_configurations(universe.len()),
        "chat",
    );
}

#[test]
fn pinning_collapses_to_a1_on_benchgen_subject() {
    let spl = GeneratedSpl::generate(subject_by_name("Lampiro").unwrap());
    let universe: Vec<FeatureId> = spl.table.iter().map(|(f, _)| f).collect();
    // Only the model-valid configurations: those are the products A1
    // would ever build, and enumerating the full universe would square
    // the test's cost for no extra coverage.
    check_all_analyses_pinned(
        &spl.program,
        &spl.table,
        &universe,
        &spl.valid_configurations(),
        "Lampiro",
    );
}

/// Property 2: for every (statement, fact), the constraint computed under
/// the stronger model entails the one computed under the weaker model.
fn assert_strengthening_restricts<D, P>(
    program: &Program,
    table: &FeatureTable,
    problem: &P,
    weak: Option<&FeatureExpr>,
    strong: &FeatureExpr,
    label: &str,
) where
    D: Clone + Eq + Hash + Debug + Send + Sync,
    P: for<'a> IfdsProblem<ProgramIcfg<'a>, Fact = D> + Sync,
{
    let icfg = ProgramIcfg::new(program);
    let ctx = BddConstraintContext::new(table);
    let weak_sol = LiftedSolution::solve(problem, &icfg, &ctx, weak, ModelMode::OnEdges);
    let strong_sol = LiftedSolution::solve(problem, &icfg, &ctx, Some(strong), ModelMode::OnEdges);
    for (s, fact, c_strong) in strong_sol.all_results() {
        let c_weak = weak_sol.constraint_of(s, fact);
        assert!(
            c_strong.entails(&c_weak),
            "{label}: strengthening the model widened {fact:?} at {s}: \
             {} ⊬ {}",
            c_strong.to_cube_string(),
            c_weak.to_cube_string(),
        );
    }
}

#[test]
fn strengthening_the_model_only_restricts_constraints() {
    for seed in 0..8u64 {
        let spl = random_spl(seed, 3, 3);
        let f = &spl.features;
        // A chain of strictly stronger models: True ⊇ (f0 ⟹ f1)
        // ⊇ (f0 ⟹ f1) ∧ ¬f2.
        let weak = FeatureExpr::var(f[0]).implies(FeatureExpr::var(f[1]));
        let strong = weak.clone().and(FeatureExpr::var(f[2]).not());
        let label = format!("seed {seed}");
        macro_rules! check {
            ($problem:expr, $name:literal) => {{
                let problem = $problem;
                assert_strengthening_restricts(
                    &spl.program,
                    &spl.table,
                    &problem,
                    None,
                    &weak,
                    &format!("{label}/{}/none->weak", $name),
                );
                assert_strengthening_restricts(
                    &spl.program,
                    &spl.table,
                    &problem,
                    Some(&weak),
                    &strong,
                    &format!("{label}/{}/weak->strong", $name),
                );
            }};
        }
        check!(TaintAnalysis::secret_to_print(), "taint");
        check!(PossibleTypes::new(), "types");
        check!(ReachingDefs::new(), "reaching");
        check!(UninitVars::new(), "uninit");
        check!(
            Typestate::new(ClassId(0), ["open"], ["close"], ["read"]),
            "typestate"
        );
    }
}
