//! Integration: the parallel configuration-sharded drivers must produce
//! results *identical* to the sequential pass for every `--jobs` value —
//! on the checked-in example SPLs and on a seeded benchgen program, both
//! through the library API and through the CLI binary.

use spllift::analyses::{ReachingDefs, TaintAnalysis};
use spllift::benchgen::{synthetic_spec, GeneratedSpl};
use spllift::features::{
    parse_feature_model, BddConstraintContext, Configuration, FeatureExpr, FeatureTable,
};
use spllift::frontend::parse_spl;
use spllift::ir::{Program, ProgramIcfg};
use spllift::spl::{a2_campaign_parallel, crosscheck_parallel, crosscheck_with, ParallelOptions};
use std::process::Command;

const JOBS: [usize; 3] = [1, 2, 8];

fn load_example(name: &str, model: bool) -> (Program, FeatureTable, Option<FeatureExpr>) {
    let source = std::fs::read_to_string(format!("examples_data/{name}.minijava")).unwrap();
    let mut table = FeatureTable::new();
    let program = parse_spl(&source, &mut table).unwrap();
    let model = model.then(|| {
        let text = std::fs::read_to_string(format!("examples_data/{name}.model")).unwrap();
        parse_feature_model(&text, &mut table).unwrap().to_expr()
    });
    (program, table, model)
}

fn all_configs(table: &FeatureTable, model: Option<&FeatureExpr>) -> Vec<Configuration> {
    let n = table.iter().count();
    assert!(n <= 16, "example SPLs are small");
    (0u64..(1u64 << n))
        .map(|bits| Configuration::from_bits(bits, n))
        .filter(|cfg| model.is_none_or(|m| cfg.satisfies(m)))
        .collect()
}

fn assert_jobs_invariant(
    program: &Program,
    table: &FeatureTable,
    model: Option<&FeatureExpr>,
    configs: &[Configuration],
) {
    let icfg = ProgramIcfg::new(program);
    let analysis = TaintAnalysis::secret_to_print();
    let ctx = BddConstraintContext::new(table);
    let sequential = crosscheck_with(&icfg, &analysis, &ctx, model, configs, 100);
    let campaign_reference = a2_campaign_parallel(&icfg, &analysis, configs, 1).facts;
    for jobs in JOBS {
        let outcome = crosscheck_parallel(
            &icfg,
            &analysis,
            || BddConstraintContext::new(table),
            model,
            configs,
            &ParallelOptions {
                jobs,
                max_mismatches: 100,
            },
        );
        assert_eq!(outcome.mismatches, sequential, "crosscheck, jobs = {jobs}");
        assert_eq!(
            a2_campaign_parallel(&icfg, &analysis, configs, jobs).facts,
            campaign_reference,
            "A2 campaign checksum, jobs = {jobs}"
        );
    }
}

#[test]
fn fig1_parallel_equals_sequential() {
    let (program, table, model) = load_example("fig1", true);
    // Once without the model (all 8 configurations), once with it.
    let unconstrained = all_configs(&table, None);
    assert_jobs_invariant(&program, &table, None, &unconstrained);
    let constrained = all_configs(&table, model.as_ref());
    assert!(
        constrained.len() < unconstrained.len(),
        "fig1 model excludes configs"
    );
    assert_jobs_invariant(&program, &table, model.as_ref(), &constrained);
}

#[test]
fn chat_parallel_equals_sequential() {
    let (program, table, model) = load_example("chat", true);
    let configs = all_configs(&table, model.as_ref());
    assert!(!configs.is_empty());
    assert_jobs_invariant(&program, &table, model.as_ref(), &configs);
}

#[test]
fn benchgen_program_parallel_equals_sequential() {
    // A seeded generated product line: 4 unconstrained features, all 16
    // configurations valid.
    let spl = GeneratedSpl::generate(synthetic_spec(4, 250, 0xD15EA5E));
    let configs = spl.valid_configurations();
    assert_eq!(configs.len(), 16);
    let icfg = spl.icfg();
    let analysis = ReachingDefs::new();
    let ctx = BddConstraintContext::new(&spl.table);
    let model = spl.model_expr();
    let sequential = crosscheck_with(&icfg, &analysis, &ctx, Some(&model), &configs, 100);
    let reference = a2_campaign_parallel(&icfg, &analysis, &configs, 1).facts;
    assert!(reference > 0);
    for jobs in JOBS {
        let outcome = crosscheck_parallel(
            &icfg,
            &analysis,
            || BddConstraintContext::new(&spl.table),
            Some(&model),
            &configs,
            &ParallelOptions {
                jobs,
                max_mismatches: 100,
            },
        );
        assert_eq!(outcome.mismatches, sequential, "crosscheck, jobs = {jobs}");
        assert_eq!(
            a2_campaign_parallel(&icfg, &analysis, &configs, jobs).facts,
            reference
        );
    }
}

#[test]
fn cli_parallel_stdout_is_jobs_invariant() {
    // stdout of both parallel formats must be byte-identical for every
    // --jobs value (shard timings go to stderr).
    let runs = [
        vec!["examples_data/fig1.minijava", "--format", "crosscheck"],
        vec![
            "examples_data/chat.minijava",
            "--format",
            "crosscheck",
            "--model",
            "examples_data/chat.model",
        ],
        vec![
            "gen:synthetic:4:250:99",
            "--analysis",
            "reaching-defs",
            "--format",
            "a2-bench",
        ],
    ];
    for args in runs {
        let mut outputs = Vec::new();
        for jobs in JOBS {
            let out = Command::new(env!("CARGO_BIN_EXE_spllift-cli"))
                .args(&args)
                .args(["--jobs", &jobs.to_string()])
                .output()
                .expect("binary runs");
            assert!(
                out.status.success(),
                "{args:?} --jobs {jobs}: {}",
                String::from_utf8_lossy(&out.stderr)
            );
            outputs.push(out.stdout);
        }
        assert!(
            outputs.windows(2).all(|w| w[0] == w[1]),
            "stdout differs across --jobs for {args:?}"
        );
    }
}
