//! Differential validation from a third angle: *concrete execution*.
//!
//! The RQ1 cross-check validates SPLLIFT against the A2 oracle — but both
//! are static. This test closes the loop dynamically: derive a product,
//! *run* it in the IR interpreter (which tracks real taint bits and real
//! uninitialized reads), and require that every dynamically observed
//! event is predicted by the lifted analysis under that configuration.
//! A sound may-analysis can over-approximate, never miss.

use spllift::analyses::{TaintAnalysis, TaintFact, UninitFact, UninitVars};
use spllift::benchgen::{subject_by_name, GeneratedSpl};
use spllift::features::{BddConstraintContext, Configuration};
use spllift::ir::interp::{run, Event, InterpConfig};
use spllift::ir::{Operand, ProgramIcfg, StmtKind};
use spllift::lift::{LiftedSolution, ModelMode};

/// Checks one product: every dynamic event must be statically predicted.
fn check_config(
    spl: &GeneratedSpl,
    icfg: &ProgramIcfg<'_>,
    taint: &LiftedSolution<'_, ProgramIcfg<'_>, TaintFact, spllift::bdd::Bdd>,
    uninit: &LiftedSolution<'_, ProgramIcfg<'_>, UninitFact, spllift::bdd::Bdd>,
    ctx: &BddConstraintContext,
    config: &Configuration,
) -> Result<(), String> {
    let product = spl.program.derive_product(config);
    let trace = run(
        &product,
        &InterpConfig {
            sources: vec!["secret".into()],
            sinks: vec!["print".into()],
            step_budget: 200_000,
        },
    );
    for event in &trace.events {
        match event {
            Event::Leak(call) => {
                // Some argument of the sink call must be statically
                // tainted under this configuration.
                let StmtKind::Invoke { args, .. } = &spl.program.stmt(*call).kind else {
                    return Err(format!("leak at non-call {call}"));
                };
                let covered = args.iter().any(|a| {
                    matches!(a, Operand::Local(l)
                        if taint.holds_in(ctx, *call, &TaintFact::Local(*l), config))
                });
                if !covered {
                    return Err(format!(
                        "dynamic leak at {call} not predicted under {config:?}"
                    ));
                }
            }
            Event::UninitRead(stmt, local) => {
                if !uninit.holds_in(ctx, *stmt, &UninitFact::Local(*local), config) {
                    return Err(format!(
                        "dynamic uninit read of {local} at {stmt} not predicted under {config:?}"
                    ));
                }
            }
        }
    }
    let _ = icfg;
    Ok(())
}

fn check_subject(name: &str, sample_stride: usize) {
    let spl = GeneratedSpl::generate(subject_by_name(name).unwrap());
    let icfg = spl.icfg();
    let ctx = BddConstraintContext::new(&spl.table);
    // One lifted pass each, reused for every configuration — exactly the
    // economics the paper advertises.
    let taint = LiftedSolution::solve(
        &TaintAnalysis::secret_to_print(),
        &icfg,
        &ctx,
        None,
        ModelMode::Ignore,
    );
    let uninit = LiftedSolution::solve(&UninitVars::new(), &icfg, &ctx, None, ModelMode::Ignore);
    let mut checked = 0;
    for config in spl
        .valid_configurations()
        .into_iter()
        .step_by(sample_stride)
    {
        if let Err(msg) = check_config(&spl, &icfg, &taint, &uninit, &ctx, &config) {
            panic!("{name}: {msg}");
        }
        checked += 1;
    }
    assert!(checked > 0);
}

#[test]
fn mm08_dynamic_events_are_statically_predicted() {
    check_subject("MM08", 1); // all 26 configurations
}

#[test]
fn lampiro_dynamic_events_are_statically_predicted() {
    check_subject("Lampiro", 1); // all 4
}

#[test]
fn gpl_dynamic_events_are_statically_predicted() {
    check_subject("GPL", 156); // 12 sampled configurations
}

#[test]
fn fig1_dynamic_leak_matches_exactly() {
    // On the running example the static result is exact, so dynamic and
    // static agree in BOTH directions.
    let ex = spllift::ir::samples::fig1();
    let icfg = ProgramIcfg::new(&ex.program);
    let ctx = BddConstraintContext::new(&ex.table);
    let taint = LiftedSolution::solve(
        &TaintAnalysis::secret_to_print(),
        &icfg,
        &ctx,
        None,
        ModelMode::Ignore,
    );
    for bits in 0u64..8 {
        let config = Configuration::from_bits(bits, 3);
        let product = ex.program.derive_product(&config);
        let trace = run(&product, &InterpConfig::secret_to_print());
        let dynamic_leak = trace.events.iter().any(|e| matches!(e, Event::Leak(_)));
        let static_leak = taint.holds_in(
            &ctx,
            ex.print_call,
            &TaintFact::Local(spllift::ir::LocalId(1)),
            &config,
        );
        assert_eq!(dynamic_leak, static_leak, "config bits {bits:b}");
    }
}
