//! Golden-transcript test for `spllift-cli serve`: replays the
//! committed request file and diffs the responses byte-exactly against
//! the committed expected output, at several `--jobs` values — the
//! protocol promises responses independent of worker-pool size.

use std::io::Write;
use std::process::{Command, Stdio};

const REQUESTS: &str = "tests/serve/transcript.requests";
const EXPECTED: &str = "tests/serve/transcript.expected";

fn serve(jobs: &str, input: &str) -> (String, bool) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_spllift-cli"))
        .args(["serve", "--jobs", jobs])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(input.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    (
        String::from_utf8(out.stdout).expect("utf-8 responses"),
        out.status.success(),
    )
}

#[test]
fn golden_transcript_replays_byte_exactly() {
    let requests = std::fs::read_to_string(REQUESTS).unwrap();
    let expected = std::fs::read_to_string(EXPECTED).unwrap();
    for jobs in ["1", "2", "4"] {
        let (stdout, ok) = serve(jobs, &requests);
        assert!(ok, "serve --jobs {jobs} failed");
        assert_eq!(
            stdout, expected,
            "serve --jobs {jobs} diverges from the committed transcript"
        );
    }
}

#[test]
fn malformed_requests_keep_the_server_serving() {
    // Truncated JSON, an unknown request type, and a query against a
    // session that was never loaded each yield a structured error; the
    // final valid request still succeeds.
    let input = concat!(
        "{\"type\":\"que\n",
        "{\"type\":\"warmup\"}\n",
        "{\"type\":\"query\",\"session\":\"ghost\",\"queries\":[]}\n",
        "{\"type\":\"load\",\"session\":\"s\",\"path\":\"tests/serve/subject.repro\"}\n",
        "{\"type\":\"shutdown\"}\n",
    );
    let (stdout, ok) = serve("2", input);
    assert!(ok);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 5, "{stdout}");
    assert!(lines[0].starts_with("{\"type\":\"error\""), "{}", lines[0]);
    assert!(lines[0].contains("json parse error"), "{}", lines[0]);
    assert!(lines[1].contains("unknown request type"), "{}", lines[1]);
    assert!(lines[2].contains("unknown session"), "{}", lines[2]);
    assert!(lines[3].starts_with("{\"type\":\"ok\""), "{}", lines[3]);
    assert!(lines[4].contains("shutdown"), "{}", lines[4]);
}

#[test]
fn eof_without_shutdown_exits_cleanly() {
    let (stdout, ok) = serve("1", "{\"type\":\"stats\"}\n");
    assert!(ok);
    assert!(stdout.starts_with("{\"type\":\"ok\""), "{stdout}");
}
