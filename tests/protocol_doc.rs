//! Conformance between the router and `docs/PROTOCOL.md`: every
//! request type the server accepts is documented, and the document
//! describes no request type the server does not accept. Also pins the
//! documented error kinds and budget-override fields to the
//! implementation's strings, so the spec cannot rot silently.

use spllift::server::REQUEST_TYPES;

fn protocol_doc() -> String {
    std::fs::read_to_string("docs/PROTOCOL.md").expect("docs/PROTOCOL.md exists")
}

/// The request-type headings (`### `type``) of the Requests section.
fn documented_types(doc: &str) -> Vec<String> {
    doc.lines()
        .filter_map(|l| l.strip_prefix("### `"))
        .filter_map(|rest| rest.strip_suffix('`'))
        .map(str::to_owned)
        .collect()
}

#[test]
fn every_request_type_is_documented_and_vice_versa() {
    let doc = protocol_doc();
    let documented = documented_types(&doc);
    for ty in REQUEST_TYPES {
        assert!(
            documented.iter().any(|d| d == ty),
            "request type `{ty}` (accepted by the router) has no \
             `### \\`{ty}\\`` section in docs/PROTOCOL.md"
        );
    }
    for d in &documented {
        assert!(
            REQUEST_TYPES.contains(&d.as_str()),
            "docs/PROTOCOL.md documents `{d}`, which the router does not accept"
        );
    }
    // The unknown-type error message enumerates the same list, in the
    // same order the document introduces the sections.
    assert_eq!(
        documented,
        REQUEST_TYPES.to_vec(),
        "PROTOCOL.md sections must appear in the canonical REQUEST_TYPES order"
    );
}

#[test]
fn documented_error_kinds_and_budget_fields_match_the_implementation() {
    let doc = protocol_doc();
    // Flagged error kinds the executor/handler emit.
    for kind in ["panic", "overloaded", "shutting-down", "internal"] {
        assert!(
            doc.contains(&format!("`{kind}`")),
            "error kind `{kind}` missing from docs/PROTOCOL.md"
        );
    }
    // Per-request budget/tuning overrides accepted by `analyze`.
    for field in [
        "timeout_ms",
        "bdd_node_budget",
        "bdd_op_budget",
        "max_propagations",
        "threads",
        "keep_features",
    ] {
        assert!(
            doc.contains(&format!("`{field}`")),
            "budget field `{field}` missing from docs/PROTOCOL.md"
        );
    }
    // Core vocabulary that responses use.
    for needle in [
        "\"cold\"",
        "\"incremental\"",
        "\"cached\"",
        "\"full\"",
        "\"no-model\"",
        "\"constraint-true\"",
        "quarantined",
    ] {
        assert!(
            doc.contains(needle),
            "`{needle}` missing from docs/PROTOCOL.md"
        );
    }
}

#[test]
fn documented_lattice_and_governor_vocabulary_matches_the_implementation() {
    use spllift::features::{AbstractionStep, FeatureId, LatticePoint};

    let doc = protocol_doc();
    // The canonical point names the implementation renders must appear
    // verbatim (they are the stable rung vocabulary)...
    for point in [
        LatticePoint::full(),
        LatticePoint::no_model(),
        LatticePoint::constraint_true(),
    ] {
        assert!(
            doc.contains(&format!("\"{}\"", point.name())),
            "canonical lattice point `{}` missing from docs/PROTOCOL.md",
            point.name()
        );
    }
    // ...and the composite rendering scheme is documented with names
    // built exactly as `LatticePoint::name` builds them.
    let composite = LatticePoint::abstracted(vec![AbstractionStep::project(vec![
        (FeatureId(2), "F2".to_string()),
        (FeatureId(3), "F3".to_string()),
    ])]);
    assert!(
        doc.contains(&format!("`\"{}\"`", composite.name())),
        "composite point example `{}` missing from docs/PROTOCOL.md",
        composite.name()
    );
    assert!(
        doc.contains(&format!("`\"no-model+{}\"`", composite.name())),
        "model-dropping composite example missing from docs/PROTOCOL.md"
    );
    // The per-point degradation counters and the governor's fault kind.
    for needle in ["`degraded_points`", "degraded_solves", "budget-exhaust"] {
        assert!(
            doc.contains(needle),
            "`{needle}` missing from docs/PROTOCOL.md"
        );
    }
    // The strict per-request keep_features error is quoted verbatim.
    assert!(
        doc.contains("unknown feature `X` in `keep_features`"),
        "strict keep_features error missing from docs/PROTOCOL.md"
    );
    assert!(
        doc.contains("--keep-features"),
        "server-wide --keep-features default missing from docs/PROTOCOL.md"
    );
}
