//! Soundness of the governed solver's abstraction ladder: every rung
//! answers with constraints that are weaker-or-equal (entailed by) the
//! full-precision ones, so degrading under resource pressure can only
//! over-approximate — it never loses a fact.

use spllift::analyses::TaintAnalysis;
use spllift::benchgen::{synthetic_spec, GeneratedSpl};
use spllift::features::BddConstraintContext;
use spllift::ifds::SolveAbort;
use spllift::ir::ProgramIcfg;
use spllift::lift::{GovernorOptions, LiftedSolution, ModelMode, Rung, SolveOutcome};

fn subject() -> GeneratedSpl {
    GeneratedSpl::generate(synthetic_spec(4, 160, 11))
}

/// Rung 2 differential: dropping the feature model (`NoModel`) weakens
/// every constraint (`c ∧ m ⊨ c`), for facts and reachability alike.
#[test]
fn no_model_rung_is_weaker_or_equal_than_full() {
    let spl = subject();
    let icfg = ProgramIcfg::new(&spl.program);
    let ctx = BddConstraintContext::new(&spl.table);
    let model = spl.model_expr();
    let analysis = TaintAnalysis::secret_to_print();
    let full = LiftedSolution::solve(&analysis, &icfg, &ctx, Some(&model), ModelMode::OnEdges);
    let no_model = LiftedSolution::solve(&analysis, &icfg, &ctx, None, ModelMode::Ignore);
    let mut checked = 0usize;
    for (stmt, fact, c) in full.all_results() {
        assert!(
            c.entails(&no_model.constraint_of(stmt, fact)),
            "no-model constraint at {stmt:?}/{fact:?} is not weaker-or-equal"
        );
        checked += 1;
    }
    assert!(
        checked > 50,
        "subject too small to be meaningful: {checked}"
    );
}

/// Rung 3 differential, forced through the governor: a node budget too
/// small for any constraint work sends the ladder to `ConstraintTrue`,
/// which still completes and reports every full-precision fact — under
/// the trivially weaker constraint `true`.
#[test]
fn blowup_subject_completes_under_node_budget_via_the_ladder() {
    let spl = subject();
    let icfg = ProgramIcfg::new(&spl.program);
    // Fresh context: with a warm unique table (from an earlier solve of
    // the same product line) the full rung needs no *new* nodes and
    // legitimately completes under any node budget. The blowup scenario
    // is a cold manager.
    let ctx = BddConstraintContext::new(&spl.table);
    let model = spl.model_expr();
    let analysis = TaintAnalysis::secret_to_print();
    let gov = GovernorOptions {
        max_bdd_nodes: Some(2),
        ..GovernorOptions::default()
    };
    let (degraded, outcome) = LiftedSolution::solve_governed(
        &analysis,
        &icfg,
        &ctx,
        Some(&model),
        ModelMode::OnEdges,
        gov,
    )
    .expect("bottom rung needs no constraint nodes and must complete");
    assert_eq!(outcome.rung(), Rung::ConstraintTrue);
    let SolveOutcome::Degraded { attempts, .. } = &outcome else {
        panic!("expected a degraded outcome, got {outcome:?}");
    };
    let tried: Vec<Rung> = attempts.iter().map(|(r, _)| *r).collect();
    assert_eq!(tried, [Rung::Full, Rung::NoModel]);
    for (_, reason) in attempts {
        assert!(
            reason.contains("budget exhausted") && reason.contains("nodes"),
            "unexpected abort reason: {reason}"
        );
    }
    // Sound over-approximation: every fact the precise solve reports is
    // reported by the degraded one, with the weaker constraint `true`.
    // (The full solve runs second, on the now-unbudgeted manager.)
    let full = LiftedSolution::solve(&analysis, &icfg, &ctx, Some(&model), ModelMode::OnEdges);
    for (stmt, fact, c) in full.all_results() {
        let weak = degraded.constraint_of(stmt, fact);
        assert!(
            weak.is_true(),
            "constraint-true rung reported {} at {stmt:?}/{fact:?}",
            weak.to_cube_string()
        );
        assert!(c.entails(&weak));
    }
}

/// With no limits armed, the governed entry point is exactly the plain
/// solver plus `Complete`.
#[test]
fn ungoverned_solve_is_unchanged() {
    let spl = subject();
    let icfg = ProgramIcfg::new(&spl.program);
    let ctx = BddConstraintContext::new(&spl.table);
    let model = spl.model_expr();
    let analysis = TaintAnalysis::secret_to_print();
    let plain = LiftedSolution::solve(&analysis, &icfg, &ctx, Some(&model), ModelMode::OnEdges);
    let (governed, outcome) = LiftedSolution::solve_governed(
        &analysis,
        &icfg,
        &ctx,
        Some(&model),
        ModelMode::OnEdges,
        GovernorOptions::default(),
    )
    .expect("unlimited governed solve cannot abort");
    assert_eq!(outcome, SolveOutcome::Complete);
    let mut rows = 0usize;
    for (stmt, fact, c) in plain.all_results() {
        assert_eq!(*c, governed.constraint_of(stmt, fact));
        rows += 1;
    }
    assert!(rows > 0);
}

/// A limit that no rung can satisfy (the propagation count does not
/// shrink down the ladder) surfaces as a structured abort, not a hang
/// or a panic.
#[test]
fn impossible_limit_aborts_every_rung_with_a_structured_error() {
    let spl = subject();
    let icfg = ProgramIcfg::new(&spl.program);
    let ctx = BddConstraintContext::new(&spl.table);
    let model = spl.model_expr();
    let analysis = TaintAnalysis::secret_to_print();
    let gov = GovernorOptions {
        max_propagations: Some(1),
        ..GovernorOptions::default()
    };
    let err = LiftedSolution::solve_governed(
        &analysis,
        &icfg,
        &ctx,
        Some(&model),
        ModelMode::OnEdges,
        gov,
    )
    .expect_err("1 propagation cannot finish any rung");
    assert_eq!(err, SolveAbort::PropagationLimit(1));
}
