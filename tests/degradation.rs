//! Soundness of the governed solver's variability-abstraction lattice:
//! every lattice point answers with constraints that are weaker-or-equal
//! (entailed by) the full-precision ones, so degrading under resource
//! pressure can only over-approximate — it never loses a fact.
//!
//! The lattice generalizes the old three-rung ladder (full → no-model →
//! constraint-true) with composable abstraction steps: *project* away
//! feature subsets (∃-quantification), *join* features into one proxy
//! decision, and *confound* a feature-model OR group into its parent.
//! These tests run the entailment differential for each step, for
//! compositions of steps, and for the adaptive descent the governor
//! performs when a request names `keep_features`.

use spllift::analyses::TaintAnalysis;
use spllift::benchgen::{subject_by_name, synthetic_spec, GeneratedSpl, ModelShape};
use spllift::features::{BddConstraintContext, FeatureId};
use spllift::ifds::SolveAbort;
use spllift::ir::ProgramIcfg;
use spllift::lift::{
    AbstractionStep, GovernorOptions, LatticeHints, LatticePoint, LiftedSolution, ModelMode,
    SolveOutcome, SolverMemo,
};
use spllift::spl::{ChaosWrapper, FaultKind};
use std::time::Duration;

fn subject() -> GeneratedSpl {
    GeneratedSpl::generate(synthetic_spec(4, 160, 11))
}

/// `(id, name)` pairs for the whole feature universe, in table order.
fn universe(spl: &GeneratedSpl) -> Vec<(FeatureId, String)> {
    spl.table.iter().map(|(id, n)| (id, n.to_owned())).collect()
}

/// Asserts the entailment differential at `point`: every constraint the
/// full-precision solve reports must entail the abstracted one, for
/// facts and reachability alike. Returns how many rows were compared.
fn assert_weaker_or_equal(spl: &GeneratedSpl, point: &LatticePoint) -> usize {
    let icfg = ProgramIcfg::new(&spl.program);
    let ctx = BddConstraintContext::new(&spl.table);
    let model = spl.model_expr();
    let analysis = TaintAnalysis::secret_to_print();
    let full = LiftedSolution::solve(&analysis, &icfg, &ctx, Some(&model), ModelMode::OnEdges);
    let weak = LiftedSolution::solve_abstracted(
        &analysis,
        &icfg,
        &ctx,
        Some(&model),
        ModelMode::OnEdges,
        point,
    );
    let mut checked = 0usize;
    for (stmt, fact, c) in full.all_results() {
        assert!(
            c.entails(&weak.constraint_of(stmt, fact)),
            "{}: constraint at {stmt:?}/{fact:?} is not weaker-or-equal",
            point.name()
        );
        assert!(
            full.reachability_of(stmt)
                .entails(&weak.reachability_of(stmt)),
            "{}: reachability at {stmt:?} is not weaker-or-equal",
            point.name()
        );
        checked += 1;
    }
    checked
}

/// A spread of lattice points exercising every abstraction step and
/// their compositions, derived from the subject's own universe: project
/// a prefix, join a suffix, both at once, and the same with the model
/// dropped on top.
fn sample_points(spl: &GeneratedSpl) -> Vec<LatticePoint> {
    let uni = universe(spl);
    let half = (uni.len() / 2).max(1);
    let front: Vec<_> = uni.iter().take(half).cloned().collect();
    let back: Vec<_> = uni.iter().skip(half).cloned().collect();
    let mut points = vec![
        LatticePoint::abstracted(vec![AbstractionStep::project(front.clone())]),
        LatticePoint::abstracted(vec![AbstractionStep::project(uni.clone())]),
    ];
    if !back.is_empty() {
        points.push(LatticePoint::abstracted(vec![AbstractionStep::join(
            back.clone(),
        )]));
        points.push(LatticePoint::abstracted(vec![
            AbstractionStep::project(front.clone()),
            AbstractionStep::join(back.clone()),
        ]));
        points.push(
            LatticePoint::abstracted(vec![
                AbstractionStep::project(front),
                AbstractionStep::join(back),
            ])
            .without_model(),
        );
    }
    // Confound every OR group the model has (none for `free`-shaped
    // models; the groups-model test below exercises a real one).
    let confounds: Vec<AbstractionStep> = spl
        .model
        .or_groups()
        .into_iter()
        .map(|(p, ms)| {
            let name = |id: FeatureId| (id, spl.table.name(id).to_owned());
            AbstractionStep::confound(name(p), ms.into_iter().map(name))
        })
        .collect();
    if !confounds.is_empty() {
        points.push(LatticePoint::abstracted(confounds));
    }
    points
}

/// The entailment differential on the small synthetic subject, one
/// point at a time, with a minimum row count so the check is not
/// vacuous.
#[test]
fn every_abstraction_is_weaker_or_equal_on_synthetic() {
    let spl = subject();
    for point in sample_points(&spl) {
        let checked = assert_weaker_or_equal(&spl, &point);
        assert!(checked > 50, "{}: only {checked} rows", point.name());
    }
}

/// The same differential across the Table 1 subjects the paper
/// evaluates (scaled): MM08, GPL, and Lampiro.
#[test]
fn every_abstraction_is_weaker_or_equal_on_table1_subjects() {
    for name in ["MM08", "GPL", "Lampiro"] {
        let spl = GeneratedSpl::generate(subject_by_name(name).expect("table 1 subject"));
        for point in sample_points(&spl) {
            let checked = assert_weaker_or_equal(&spl, &point);
            assert!(checked > 0, "{name}/{}: no rows compared", point.name());
        }
    }
}

/// Confounding a real OR group (groups-shaped model) is a weakening,
/// and joining a group's members is at-least-as-coarse as projecting
/// them away is weak: `join(S) ⊨ project(S)` per point, pointwise.
#[test]
fn confound_and_join_on_a_groups_model_are_weaker_or_equal() {
    let spl =
        GeneratedSpl::generate(synthetic_spec(12, 400, 23).with_model_shape(ModelShape::Groups));
    let groups = spl.model.or_groups();
    assert!(
        !groups.is_empty(),
        "groups-shaped model must have OR groups"
    );
    for point in sample_points(&spl) {
        assert_weaker_or_equal(&spl, &point);
    }
    // join(S) is more precise than project(S): the full solve entails
    // the join point, and the join point entails the project point.
    let name = |id: FeatureId| (id, spl.table.name(id).to_owned());
    let (_, members) = groups[0].clone();
    let named: Vec<_> = members.iter().map(|&m| name(m)).collect();
    let join = LatticePoint::abstracted(vec![AbstractionStep::join(named.clone())]);
    let project = LatticePoint::abstracted(vec![AbstractionStep::project(named)]);
    let icfg = ProgramIcfg::new(&spl.program);
    let ctx = BddConstraintContext::new(&spl.table);
    let model = spl.model_expr();
    let analysis = TaintAnalysis::secret_to_print();
    let solve_at = |point: &LatticePoint| {
        LiftedSolution::solve_abstracted(
            &analysis,
            &icfg,
            &ctx,
            Some(&model),
            ModelMode::OnEdges,
            point,
        )
    };
    let joined = solve_at(&join);
    let projected = solve_at(&project);
    let mut rows = 0usize;
    for (stmt, fact, c) in joined.all_results() {
        assert!(
            c.entails(&projected.constraint_of(stmt, fact)),
            "join point must entail project point at {stmt:?}/{fact:?}"
        );
        rows += 1;
    }
    assert!(rows > 0);
}

/// Rung 2 differential: dropping the feature model (`no-model`) weakens
/// every constraint (`c ∧ m ⊨ c`), for facts and reachability alike.
#[test]
fn no_model_rung_is_weaker_or_equal_than_full() {
    let spl = subject();
    let icfg = ProgramIcfg::new(&spl.program);
    let ctx = BddConstraintContext::new(&spl.table);
    let model = spl.model_expr();
    let analysis = TaintAnalysis::secret_to_print();
    let full = LiftedSolution::solve(&analysis, &icfg, &ctx, Some(&model), ModelMode::OnEdges);
    let no_model = LiftedSolution::solve(&analysis, &icfg, &ctx, None, ModelMode::Ignore);
    let mut checked = 0usize;
    for (stmt, fact, c) in full.all_results() {
        assert!(
            c.entails(&no_model.constraint_of(stmt, fact)),
            "no-model constraint at {stmt:?}/{fact:?} is not weaker-or-equal"
        );
        checked += 1;
    }
    assert!(
        checked > 50,
        "subject too small to be meaningful: {checked}"
    );
}

/// Bottom-of-lattice differential, forced through the governor: a node
/// budget too small for any constraint work sends the default descent
/// to `constraint-true`, which still completes and reports every
/// full-precision fact — under the trivially weaker constraint `true`.
/// The default descent (no `keep_features`) is exactly the old ladder:
/// full → no-model → constraint-true.
#[test]
fn blowup_subject_completes_under_node_budget_via_the_ladder() {
    let spl = subject();
    let icfg = ProgramIcfg::new(&spl.program);
    // Fresh context: with a warm unique table (from an earlier solve of
    // the same product line) the full point needs no *new* nodes and
    // legitimately completes under any node budget. The blowup scenario
    // is a cold manager.
    let ctx = BddConstraintContext::new(&spl.table);
    let model = spl.model_expr();
    let analysis = TaintAnalysis::secret_to_print();
    let gov = GovernorOptions {
        max_bdd_nodes: Some(2),
        ..GovernorOptions::default()
    };
    let (degraded, outcome) = LiftedSolution::solve_governed(
        &analysis,
        &icfg,
        &ctx,
        Some(&model),
        ModelMode::OnEdges,
        gov,
    )
    .expect("bottom point needs no constraint nodes and must complete");
    assert_eq!(outcome.rung_name(), "constraint-true");
    assert!(outcome.point().is_collapsed());
    let SolveOutcome::Degraded { attempts, .. } = &outcome else {
        panic!("expected a degraded outcome, got {outcome:?}");
    };
    let tried: Vec<String> = attempts.iter().map(|(p, _)| p.name()).collect();
    assert_eq!(tried, ["full", "no-model"]);
    for (_, reason) in attempts {
        assert!(
            reason.contains("budget exhausted") && reason.contains("nodes"),
            "unexpected abort reason: {reason}"
        );
    }
    // Sound over-approximation: every fact the precise solve reports is
    // reported by the degraded one, with the weaker constraint `true`.
    // (The full solve runs second, on the now-unbudgeted manager.)
    let full = LiftedSolution::solve(&analysis, &icfg, &ctx, Some(&model), ModelMode::OnEdges);
    for (stmt, fact, c) in full.all_results() {
        let weak = degraded.constraint_of(stmt, fact);
        assert!(
            weak.is_true(),
            "constraint-true point reported {} at {stmt:?}/{fact:?}",
            weak.to_cube_string()
        );
        assert!(c.entails(&weak));
    }
}

/// The lattice bottom is exactly today's constraint-true semantics:
/// solving at [`LatticePoint::constraint_true`] reports the same rows
/// as the governor's bottom fallback.
#[test]
fn lattice_bottom_matches_constraint_true_semantics() {
    let spl = subject();
    let icfg = ProgramIcfg::new(&spl.program);
    let ctx = BddConstraintContext::new(&spl.table);
    let model = spl.model_expr();
    let analysis = TaintAnalysis::secret_to_print();
    let explicit = LiftedSolution::solve_abstracted(
        &analysis,
        &icfg,
        &ctx,
        Some(&model),
        ModelMode::OnEdges,
        &LatticePoint::constraint_true(),
    );
    let fresh_ctx = BddConstraintContext::new(&spl.table);
    let (governed, outcome) = LiftedSolution::solve_governed(
        &analysis,
        &icfg,
        &fresh_ctx,
        Some(&model),
        ModelMode::OnEdges,
        GovernorOptions {
            max_bdd_nodes: Some(2),
            ..GovernorOptions::default()
        },
    )
    .expect("bottom completes");
    assert!(outcome.point().is_collapsed());
    let mut rows = 0usize;
    for (stmt, fact, c) in explicit.all_results() {
        assert!(c.is_true());
        assert!(governed.constraint_of(stmt, fact).is_true());
        rows += 1;
    }
    let governed_rows = governed.all_results().count();
    assert_eq!(rows, governed_rows);
    assert!(rows > 0);
}

/// Adaptive descent: on a wide groups-model subject whose full-precision
/// solve blows a tiny op budget, a request that names `keep_features`
/// lands on a feature-sparing lattice point — not the bottom — and the
/// outcome records exactly which abstraction answered.
#[test]
fn adaptive_descent_spares_kept_features() {
    let spl =
        GeneratedSpl::generate(synthetic_spec(128, 900, 7).with_model_shape(ModelShape::Groups));
    let icfg = ProgramIcfg::new(&spl.program);
    let ctx = BddConstraintContext::new(&spl.table);
    let model = spl.model_expr();
    let analysis = TaintAnalysis::secret_to_print();
    let uni = universe(&spl);
    // Keep the first two reachable features precise.
    let keep: Vec<FeatureId> = spl.reachable.iter().take(2).copied().collect();
    assert_eq!(keep.len(), 2);
    // Tuned window (measured: full ≈770k ops, confound ≈560k, the
    // keep-sparing projection ≈31k): full precision and the confound
    // point blow 50k, the projection fits.
    let gov = GovernorOptions {
        max_bdd_ops: Some(50_000),
        lattice: LatticeHints {
            universe: uni,
            keep: Some(keep.clone()),
            or_groups: spl.model.or_groups(),
        },
        ..GovernorOptions::default()
    };
    let (solution, outcome) = LiftedSolution::solve_governed(
        &analysis,
        &icfg,
        &ctx,
        Some(&model),
        ModelMode::OnEdges,
        gov,
    )
    .expect("some lattice point must fit the envelope");
    let point = outcome.point();
    assert!(outcome.is_degraded(), "full precision must not fit 2k ops");
    assert!(
        !point.is_collapsed(),
        "descent fell to the bottom: {outcome:?}"
    );
    // The point spares exactly the kept features: nothing it projects,
    // joins, or confounds is in `keep`.
    let abstracted = point.abstracted_features();
    for id in &keep {
        assert!(
            !abstracted.iter().any(|(a, _)| a == id),
            "kept feature {id:?} was abstracted by {}",
            point.name()
        );
    }
    assert!(
        !abstracted.is_empty(),
        "non-bottom degraded point must abstract something"
    );
    // And the name records the exact lattice point, machine-readably.
    assert!(
        point.name().contains("project(") || point.name().contains("confound("),
        "unexpected point name: {}",
        point.name()
    );
    // Soundness spot-check against full precision (the governed solve
    // disarmed the budget on success, so the same manager can run the
    // precise solve now).
    let full = LiftedSolution::solve(&analysis, &icfg, &ctx, Some(&model), ModelMode::OnEdges);
    for (stmt, fact, c) in full.all_results() {
        assert!(c.entails(&solution.constraint_of(stmt, fact)));
    }
}

/// Selective memo reuse at a degraded point: methods whose constraints
/// the abstraction leaves unchanged keep their jump functions, and the
/// warm-started result is identical to a cold solve at the same point.
#[test]
fn degraded_memo_reuse_matches_cold_solve() {
    let spl = subject();
    let icfg = ProgramIcfg::new(&spl.program);
    let ctx = BddConstraintContext::new(&spl.table);
    let model = spl.model_expr();
    let analysis = TaintAnalysis::secret_to_print();
    let uni = universe(&spl);
    let keep: Vec<FeatureId> = uni.iter().take(2).map(|(id, _)| *id).collect();
    // Warm up: a full-precision memoized solve retains jump functions.
    let (_, outcome, memo) = LiftedSolution::solve_governed_memoized(
        &analysis,
        &icfg,
        &ctx,
        Some(&model),
        ModelMode::OnEdges,
        GovernorOptions::default(),
        &SolverMemo::default(),
        &|_| false,
    )
    .expect("unlimited solve completes");
    assert_eq!(outcome, SolveOutcome::Complete);
    // Degrade: a one-charge injected blow-up fails exactly the full
    // attempt (warm unique tables make node budgets unreliable here);
    // the keep-sparing projection then runs clean, consulting the memo
    // selectively.
    let chaotic = ChaosWrapper::new(
        &analysis,
        FaultKind::BudgetExhaust,
        1,
        Duration::from_millis(0),
        Box::new(|| ctx.manager().charge_ops(u64::MAX)),
    );
    let gov = GovernorOptions {
        max_bdd_ops: Some(u64::MAX / 2),
        lattice: LatticeHints {
            universe: uni.clone(),
            keep: Some(keep),
            or_groups: vec![],
        },
        ..GovernorOptions::default()
    };
    let (warm, outcome, returned) = LiftedSolution::solve_governed_memoized(
        &chaotic,
        &icfg,
        &ctx,
        Some(&model),
        ModelMode::OnEdges,
        gov,
        &memo,
        &|_| true,
    )
    .expect("the projection point must complete");
    assert!(outcome.is_degraded());
    let point = outcome.point();
    assert!(!point.is_collapsed(), "descent fell to bottom: {outcome:?}");
    assert!(
        returned.is_empty(),
        "a degraded solve must not seed later full-precision rounds"
    );
    let cold = LiftedSolution::solve_abstracted(
        &analysis,
        &icfg,
        &ctx,
        Some(&model),
        ModelMode::OnEdges,
        &point,
    );
    let mut rows = 0usize;
    for (stmt, fact, c) in cold.all_results() {
        assert_eq!(
            *c,
            warm.constraint_of(stmt, fact),
            "warm-started degraded solve diverged at {stmt:?}/{fact:?}"
        );
        rows += 1;
    }
    assert_eq!(rows, warm.all_results().count());
    assert!(rows > 0);
}

/// With no limits armed, the governed entry point is exactly the plain
/// solver plus `Complete`.
#[test]
fn ungoverned_solve_is_unchanged() {
    let spl = subject();
    let icfg = ProgramIcfg::new(&spl.program);
    let ctx = BddConstraintContext::new(&spl.table);
    let model = spl.model_expr();
    let analysis = TaintAnalysis::secret_to_print();
    let plain = LiftedSolution::solve(&analysis, &icfg, &ctx, Some(&model), ModelMode::OnEdges);
    let (governed, outcome) = LiftedSolution::solve_governed(
        &analysis,
        &icfg,
        &ctx,
        Some(&model),
        ModelMode::OnEdges,
        GovernorOptions::default(),
    )
    .expect("unlimited governed solve cannot abort");
    assert_eq!(outcome, SolveOutcome::Complete);
    let mut rows = 0usize;
    for (stmt, fact, c) in plain.all_results() {
        assert_eq!(*c, governed.constraint_of(stmt, fact));
        rows += 1;
    }
    assert!(rows > 0);
}

/// A limit that no lattice point can satisfy (the propagation count
/// does not shrink down the descent) surfaces as a structured abort,
/// not a hang or a panic.
#[test]
fn impossible_limit_aborts_every_rung_with_a_structured_error() {
    let spl = subject();
    let icfg = ProgramIcfg::new(&spl.program);
    let ctx = BddConstraintContext::new(&spl.table);
    let model = spl.model_expr();
    let analysis = TaintAnalysis::secret_to_print();
    let gov = GovernorOptions {
        max_propagations: Some(1),
        ..GovernorOptions::default()
    };
    let err = LiftedSolution::solve_governed(
        &analysis,
        &icfg,
        &ctx,
        Some(&model),
        ModelMode::OnEdges,
        gov,
    )
    .expect_err("1 propagation cannot finish any rung");
    assert_eq!(err, SolveAbort::PropagationLimit(1));
}

/// A `budget-exhaust` chaos fault burning the op budget *mid-solve* (a
/// delayed [`ChaosWrapper`]) degrades the governed solve exactly like
/// an organic blow-up: the full attempt aborts with a budget reason,
/// the wrapper's charge is spent, and a lower point answers clean.
#[test]
fn mid_solve_budget_exhaustion_degrades_deterministically() {
    let spl = subject();
    let icfg = ProgramIcfg::new(&spl.program);
    let ctx = BddConstraintContext::new(&spl.table);
    let model = spl.model_expr();
    let analysis = TaintAnalysis::secret_to_print();
    let chaotic = ChaosWrapper::with_delay(
        &analysis,
        FaultKind::BudgetExhaust,
        1,
        40,
        Duration::from_millis(0),
        Box::new(|| ctx.manager().charge_ops(u64::MAX)),
    );
    let gov = GovernorOptions {
        max_bdd_ops: Some(1_000_000),
        ..GovernorOptions::default()
    };
    let (degraded, outcome) = LiftedSolution::solve_governed(
        &chaotic,
        &icfg,
        &ctx,
        Some(&model),
        ModelMode::OnEdges,
        gov,
    )
    .expect("the fault carries one charge; a lower point completes");
    assert_eq!(chaotic.charges_left(), 0, "the fault never fired");
    let SolveOutcome::Degraded { attempts, .. } = &outcome else {
        panic!("expected a degraded outcome, got {outcome:?}");
    };
    assert_eq!(attempts[0].0.name(), "full");
    assert!(
        attempts[0].1.contains("budget exhausted"),
        "unexpected abort reason: {}",
        attempts[0].1
    );
    // Soundness unchanged under injected exhaustion (full solve second,
    // on the now-unbudgeted manager).
    let full = LiftedSolution::solve(&analysis, &icfg, &ctx, Some(&model), ModelMode::OnEdges);
    for (stmt, fact, c) in full.all_results() {
        assert!(c.entails(&degraded.constraint_of(stmt, fact)));
    }
}
