//! Integration: the emergent-interfaces application (paper §7).

use spllift::emergent::EmergentInterface;
use spllift::features::{BddConstraintContext, FeatureExpr, FeatureTable};
use spllift::frontend::parse_spl;
use spllift::ir::{ProgramIcfg, StmtKind, StmtRef};
use std::collections::BTreeSet;

const SOURCE: &str = r#"
class Pipeline {
    static int transform(int data) {
        int out = data;
        #ifdef COMPRESS
        out = data / 2;
        #endif
        #ifdef ENCRYPT
        out = out * 31;
        #endif
        return out;
    }
    static void main() {
        int seed = 1000;
        int r = Pipeline.transform(seed);
    }
}
"#;

fn compress_stmts(program: &spllift::ir::Program, table: &FeatureTable) -> BTreeSet<StmtRef> {
    // The maintenance point: every statement annotated with COMPRESS.
    let compress = table.get("COMPRESS").unwrap();
    let mut out = BTreeSet::new();
    for (mi, m) in program.methods().iter().enumerate() {
        let Some(body) = &m.body else { continue };
        for (i, stmt) in body.stmts.iter().enumerate() {
            if stmt.annotation == FeatureExpr::var(compress) {
                out.insert(StmtRef {
                    method: spllift::ir::MethodId(mi as u32),
                    index: i as u32,
                });
            }
        }
    }
    out
}

#[test]
fn compress_feature_provides_into_encrypt_and_return() {
    let mut table = FeatureTable::new();
    let program = parse_spl(SOURCE, &mut table).unwrap();
    let icfg = ProgramIcfg::new(&program);
    let ctx = BddConstraintContext::new(&table);
    let point = compress_stmts(&program, &table);
    assert!(!point.is_empty());

    let iface = EmergentInterface::compute(&icfg, &ctx, None, &point);
    // COMPRESS defines `out`, consumed outside the point.
    assert!(!iface.provides.is_empty());
    // COMPRESS reads `data` (the parameter definition is outside).
    assert!(!iface.requires.is_empty());
    assert!(!iface.is_closed());
    // Every provided dependency happens only when COMPRESS is on.
    let compress = table.get("COMPRESS").unwrap();
    use spllift::features::ConstraintContext as _;
    for dep in &iface.provides {
        assert!(
            dep.constraint.entails(&ctx.lit(compress, true)),
            "{} should entail COMPRESS",
            dep.constraint.to_cube_string()
        );
    }
    let rendered = iface.display(&icfg);
    assert!(rendered.contains("provides"));
    assert!(rendered.contains("COMPRESS"));
}

#[test]
fn isolated_code_has_closed_interface() {
    let src = r#"
    class C {
        static void main() {
            int a = 1;
            #ifdef LOG
            int t = 99;
            t = t + 1;
            #endif
            int b = a + 2;
        }
    }
    "#;
    let mut table = FeatureTable::new();
    let program = parse_spl(src, &mut table).unwrap();
    let icfg = ProgramIcfg::new(&program);
    let ctx = BddConstraintContext::new(&table);
    let log = table.get("LOG").unwrap();
    let mut point = BTreeSet::new();
    for (mi, m) in program.methods().iter().enumerate() {
        let Some(body) = &m.body else { continue };
        for (i, stmt) in body.stmts.iter().enumerate() {
            if stmt.annotation == FeatureExpr::var(log) {
                point.insert(StmtRef {
                    method: spllift::ir::MethodId(mi as u32),
                    index: i as u32,
                });
            }
        }
    }
    let iface = EmergentInterface::compute(&icfg, &ctx, None, &point);
    // The LOG block's data flow is self-contained.
    assert!(iface.provides.is_empty(), "{:?}", iface.provides);
}

#[test]
fn model_restricts_reported_dependencies() {
    let mut table = FeatureTable::new();
    let program = parse_spl(SOURCE, &mut table).unwrap();
    let icfg = ProgramIcfg::new(&program);
    let ctx = BddConstraintContext::new(&table);
    let point = compress_stmts(&program, &table);
    // Model forbidding COMPRESS: the interface collapses.
    let model = FeatureExpr::parse("!COMPRESS", &mut table).unwrap();
    let iface = EmergentInterface::compute(&icfg, &ctx, Some(&model), &point);
    assert!(iface.provides.is_empty());
    let _ = StmtKind::Nop; // keep the import used in both tests
}
