//! Socket-transport tests for the multi-client server: per-session
//! determinism (each session's response stream is byte-identical to the
//! single-client stdio server, at any shard count and under
//! concurrency), fault isolation between co-resident sessions, and
//! admission control.
//!
//! The committed fixtures `tests/serve/socket-client{1,2,3}.*` are the
//! same ones the CI smoke (`server_bench --smoke tests/serve`) replays.

use spllift::server::{Server, ServerOptions, SocketServer};
use spllift_spl::FaultPlan;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

fn fixture(name: &str) -> String {
    std::fs::read_to_string(format!("tests/serve/{name}")).expect("fixture file")
}

/// Replays `requests` over one fresh connection, one response per
/// request, and returns the newline-terminated response stream.
fn replay(addr: SocketAddr, requests: &str) -> String {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut got = String::new();
    for req in requests.lines().filter(|l| !l.trim().is_empty()) {
        writeln!(writer, "{req}").expect("write");
        writer.flush().expect("flush");
        let mut resp = String::new();
        assert!(
            reader.read_line(&mut resp).expect("read") > 0,
            "server closed the connection mid-script"
        );
        got.push_str(&resp);
    }
    got
}

/// Runs the three fixture clients concurrently against `addr` and
/// returns their response streams in client order.
fn replay_fixtures_concurrently(addr: SocketAddr) -> Vec<String> {
    let clients: Vec<_> = (1..=3)
        .map(|n| {
            let requests = fixture(&format!("socket-client{n}.requests"));
            std::thread::spawn(move || replay(addr, &requests))
        })
        .collect();
    clients
        .into_iter()
        .map(|c| c.join().expect("client thread"))
        .collect()
}

fn shut_down(addr: SocketAddr, server: SocketServer) {
    let out = replay(addr, r#"{"type":"shutdown"}"#);
    assert_eq!(out, "{\"type\":\"ok\",\"request\":\"shutdown\"}\n");
    server.join();
}

/// What the single-client stdio server answers for `requests` — the
/// reference the socket streams are pinned to.
fn stdio_reference(requests: &str) -> String {
    let mut out = Vec::new();
    Server::new(ServerOptions::default())
        .run(requests.as_bytes(), &mut out)
        .expect("stdio serve");
    String::from_utf8(out).expect("utf-8 responses")
}

/// The core determinism claim: every session's response stream over the
/// socket transport — concurrent with other sessions, at 1, 2, and 4
/// shards — is byte-identical to the single-client stdio server's
/// answers for the same requests, which in turn match the committed
/// goldens (so the smoke fixtures cannot rot silently).
#[test]
fn concurrent_socket_streams_match_single_client_server_at_every_shard_count() {
    let reference: Vec<String> = (1..=3)
        .map(|n| stdio_reference(&fixture(&format!("socket-client{n}.requests"))))
        .collect();
    for (n, r) in reference.iter().enumerate() {
        assert_eq!(
            r,
            &fixture(&format!("socket-client{}.expected", n + 1)),
            "committed golden socket-client{}.expected is stale",
            n + 1
        );
    }
    for shards in [1, 2, 4] {
        let opts = ServerOptions {
            shards,
            ..ServerOptions::default()
        };
        let server = SocketServer::spawn(opts, "127.0.0.1:0").expect("bind");
        let addr = server.addr();
        let streams = replay_fixtures_concurrently(addr);
        for (n, (got, want)) in streams.iter().zip(&reference).enumerate() {
            assert_eq!(
                got,
                want,
                "client {} stream diverged from the stdio server at --shards {shards}",
                n + 1
            );
        }
        shut_down(addr, server);
    }
}

/// Fault isolation under concurrency: a session quarantined by an
/// injected panic must not perturb the response streams of healthy
/// sessions sharing its shard (shards = 1 forces co-residency), and the
/// engine keeps the healthy sessions' cached solutions.
#[test]
fn quarantined_session_does_not_perturb_concurrent_healthy_sessions() {
    let opts = ServerOptions {
        shards: 1,
        inject_fault: Some(FaultPlan::parse("panic-in-flow@1").expect("fault plan")),
        fault_session: Some("victim".to_owned()),
        ..ServerOptions::default()
    };
    let server = SocketServer::spawn(opts, "127.0.0.1:0").expect("bind");
    let addr = server.addr();

    let victim = std::thread::spawn(move || {
        let script = concat!(
            r#"{"type":"load","session":"victim","gen":"synthetic:3:40:77"}"#,
            "\n",
            r#"{"type":"analyze","session":"victim","analysis":"taint"}"#,
            "\n",
            r#"{"type":"analyze","session":"victim","analysis":"taint"}"#,
            "\n",
            r#"{"type":"load","session":"victim","gen":"synthetic:3:40:77"}"#,
            "\n",
        );
        replay(addr, script)
    });
    let healthy = replay_fixtures_concurrently(addr);
    let victim = victim.join().expect("victim thread");

    // Healthy sessions: byte-identical to their goldens despite the
    // concurrent panic on their own shard worker.
    for (n, got) in healthy.iter().enumerate() {
        assert_eq!(
            got,
            &fixture(&format!("socket-client{}.expected", n + 1)),
            "healthy client {} diverged while victim was quarantined",
            n + 1
        );
    }

    // Victim session: load ok, analyze answers the isolated panic and
    // quarantines, the next request bounces off the quarantine, a fresh
    // load recovers.
    let victim: Vec<&str> = victim.lines().collect();
    assert_eq!(victim.len(), 4, "{victim:?}");
    assert!(victim[0].contains("\"request\":\"load\""), "{}", victim[0]);
    assert!(
        victim[1].contains("\"error\":\"panic\"") && victim[1].contains("\"quarantined\":true"),
        "{}",
        victim[1]
    );
    assert!(
        victim[2].contains("is quarantined after a panic"),
        "{}",
        victim[2]
    );
    assert!(victim[3].contains("\"request\":\"load\""), "{}", victim[3]);

    // Governance + cache state after the dust settles: exactly one
    // isolated panic, nobody quarantined (the reload recovered), and
    // the healthy sessions' solutions still cached (the panicked solve
    // contributed nothing and evicted nothing).
    let stats = replay(addr, r#"{"type":"stats"}"#);
    let stats = spllift::json::parse_json(stats.trim()).expect("stats parses");
    let gov = stats.get("governance").expect("governance");
    assert_eq!(gov.get("panics_isolated").and_then(|j| j.as_u64()), Some(1));
    assert_eq!(
        gov.get("quarantined")
            .and_then(|j| j.as_arr())
            .map(|a| a.len()),
        Some(0)
    );
    let cache = stats.get("cache").expect("cache");
    assert!(
        cache.get("entries").and_then(|j| j.as_u64()).unwrap_or(0) >= 3,
        "healthy sessions' solutions must stay cached: {cache:?}"
    );
    shut_down(addr, server);
}

/// Admission control: with a per-shard in-flight bound of 1, a request
/// submitted while another is still being solved on the same shard is
/// refused with an `overloaded` error instead of queueing.
///
/// Whichever of the two competing connections wins admission stalls on
/// the injected slow edge (a generous solve timeout widens the stall
/// to seconds, so the loser is guaranteed to arrive mid-flight even on
/// a loaded single-core runner); scheduling decides the winner, so the
/// assertion is role-symmetric: exactly one request completes and the
/// other bounces with `overloaded`.
#[test]
fn admission_control_refuses_requests_beyond_the_inflight_bound() {
    let opts = ServerOptions {
        shards: 1,
        max_inflight: 1,
        // The per-rung deadline sets the injected stall length
        // (deadline + margin), keeping the winner in flight for >3s.
        solve_timeout_ms: Some(2500),
        inject_fault: Some(FaultPlan::parse("slow-edge@1").expect("fault plan")),
        ..ServerOptions::default()
    };
    let server = SocketServer::spawn(opts, "127.0.0.1:0").expect("bind");
    let addr = server.addr();

    assert!(replay(
        addr,
        r#"{"type":"load","session":"s","gen":"synthetic:3:40:5"}"#
    )
    .contains("\"request\":\"load\""));

    const ANALYZE: &str = r#"{"type":"analyze","session":"s","analysis":"taint"}"#;
    let racer = std::thread::spawn(move || replay(addr, ANALYZE));
    std::thread::sleep(std::time::Duration::from_millis(300));
    let second = replay(addr, ANALYZE);
    let first = racer.join().expect("racer client");

    let refused = |s: &str| s.contains("\"error\":\"overloaded\"") && s.contains("at capacity");
    let completed = |s: &str| s.contains("\"request\":\"analyze\"") && !s.contains("overloaded");
    assert!(
        (completed(&first) && refused(&second)) || (refused(&first) && completed(&second)),
        "exactly one analyze must complete and the other bounce:\n\
         first:  {first}\
         second: {second}"
    );
    shut_down(addr, server);
}
