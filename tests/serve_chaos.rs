//! Chaos tests for the resident server's fault isolation: replay the
//! committed chaos request file with each `--inject-fault` class and
//! check that (a) the healthy session's responses are byte-identical to
//! a fault-free run at every `--jobs` value, (b) the victim session is
//! handled per fault class (quarantined after a panic, degraded down
//! the abstraction ladder on budget/deadline exhaustion), and (c) a
//! fresh `load` fully recovers the victim.

use std::io::Write;
use std::process::{Command, Stdio};

const REQUESTS: &str = "tests/serve/chaos.requests";

fn serve(extra_args: &[&str], input: &str) -> String {
    let mut args = vec!["serve"];
    args.extend_from_slice(extra_args);
    let mut child = Command::new(env!("CARGO_BIN_EXE_spllift-cli"))
        .args(&args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(input.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "serve {extra_args:?} failed");
    String::from_utf8(out.stdout).expect("utf-8 responses")
}

/// Responses that belong to the healthy session (every response
/// carrying its session name). The `stats` response is excluded: it
/// aggregates over all sessions and the governance counters, which
/// legitimately record the fault.
fn healthy_lines(stdout: &str) -> Vec<&str> {
    stdout
        .lines()
        .filter(|l| l.contains("\"session\":\"healthy\"") && !l.contains("\"request\":\"stats\""))
        .collect()
}

fn victim_lines(stdout: &str) -> Vec<&str> {
    stdout
        .lines()
        .filter(|l| l.contains("\"session\":\"victim\"") || l.contains("`victim`"))
        .collect()
}

/// The core chaos invariant: for each fault class and each `--jobs`
/// value, the healthy session's responses are byte-identical to the
/// fault-free run's.
#[test]
fn healthy_session_is_byte_identical_under_every_fault_class() {
    let requests = std::fs::read_to_string(REQUESTS).unwrap();
    for jobs in ["1", "2"] {
        let baseline = serve(&["--jobs", jobs], &requests);
        let healthy_baseline = healthy_lines(&baseline);
        assert!(
            healthy_baseline.len() >= 5,
            "fixture must exercise the healthy session: {baseline}"
        );
        for fault in ["panic-in-flow@2", "bdd-blowup@2", "slow-edge@2"] {
            let faulted = serve(&["--jobs", jobs, "--inject-fault", fault], &requests);
            assert_eq!(
                healthy_lines(&faulted),
                healthy_baseline,
                "healthy session diverged under --inject-fault {fault} --jobs {jobs}"
            );
        }
    }
}

#[test]
fn injected_panic_quarantines_only_the_victim_and_load_recovers() {
    let requests = std::fs::read_to_string(REQUESTS).unwrap();
    let out = serve(
        &["--jobs", "2", "--inject-fault", "panic-in-flow@2"],
        &requests,
    );
    let victim = victim_lines(&out);
    // Victim's sabotaged analyze -> structured panic error + quarantine.
    assert!(
        victim.iter().any(|l| l.contains("\"error\":\"panic\"")
            && l.contains("injected fault: panic-in-flow")
            && l.contains("\"quarantined\":true")),
        "{out}"
    );
    // Queries against the quarantined session answer structured errors.
    assert!(victim.iter().any(|l| l.contains("is quarantined")), "{out}");
    // The stats response records the isolation.
    let stats = out
        .lines()
        .find(|l| l.contains("\"request\":\"stats\""))
        .expect("stats response");
    assert!(stats.contains("\"panics_isolated\":1"), "{stats}");
    assert!(stats.contains("\"quarantined\":[\"victim\"]"), "{stats}");
    // After the re-load, the victim analyzes cleanly at full precision.
    let recovered = victim
        .iter()
        .filter(|l| l.contains("\"request\":\"analyze\"") && l.contains("\"outcome\":\"complete\""))
        .count();
    assert_eq!(recovered, 1, "{out}");
}

#[test]
fn budget_and_deadline_faults_degrade_soundly_and_recover() {
    let requests = std::fs::read_to_string(REQUESTS).unwrap();
    for (fault, reason) in [
        ("bdd-blowup@2", "budget exhausted"),
        ("slow-edge@2", "deadline exceeded"),
    ] {
        let out = serve(&["--jobs", "2", "--inject-fault", fault], &requests);
        let victim = victim_lines(&out);
        // The sabotaged solve degrades one rung down and says why.
        let degraded = victim
            .iter()
            .find(|l| l.contains("\"outcome\":\"degraded\""))
            .unwrap_or_else(|| panic!("no degraded analyze under {fault}: {out}"));
        assert!(degraded.contains("\"rung\":\"no-model\""), "{degraded}");
        assert!(degraded.contains(reason), "{degraded}");
        // Degraded query answers are flagged.
        assert!(
            victim
                .iter()
                .any(|l| l.contains("\"request\":\"query\"") && l.contains("\"degraded\":true")),
            "{out}"
        );
        // No quarantine: the session survived, merely degraded.
        let stats = out
            .lines()
            .find(|l| l.contains("\"request\":\"stats\""))
            .expect("stats response");
        assert!(stats.contains("\"degraded_solves\":1"), "{stats}");
        assert!(stats.contains("\"quarantined\":[]"), "{stats}");
        // Degraded results are not cached: the post-reload analyze of
        // the same fingerprint re-solves cold and completes fully.
        assert!(
            victim.iter().any(|l| l.contains("\"solve\":\"cold\"")
                && l.contains("\"outcome\":\"complete\"")
                && l.contains("\"rung\":\"full\"")),
            "{out}"
        );
    }
}

const BUDGET_REQUESTS: &str = "tests/serve/chaos-budget.requests";
const BUDGET_FAULT: &[&str] = &[
    "--inject-fault",
    "budget-exhaust@2000",
    "--inject-fault-session",
    "victim",
];

/// `budget-exhaust@N` arms a BDD op budget of exactly N on the victim's
/// first analyze: the full-precision attempt and the confound point
/// both blow it, the `keep_features`-sparing projection completes, and
/// the response records the exact lattice descent. The healthy session
/// never notices, the degraded answer stays out of the cache, and the
/// unbudgeted retry re-solves at full precision.
#[test]
fn budget_exhaust_descends_the_lattice_and_spares_kept_features() {
    let requests = std::fs::read_to_string(BUDGET_REQUESTS).unwrap();
    let mut args = vec!["--jobs", "1"];
    args.extend_from_slice(BUDGET_FAULT);
    let out = serve(&args, &requests);
    let victim = victim_lines(&out);
    // The sabotaged solve lands on the keep-sparing projection — a
    // non-bottom lattice point that names every abstracted feature and
    // spares F0/F1 — after full and confound(Root) both blew the meter.
    let degraded = victim
        .iter()
        .find(|l| l.contains("\"outcome\":\"degraded\""))
        .unwrap_or_else(|| panic!("no degraded analyze: {out}"));
    assert!(
        degraded.contains("\"rung\":\"project(F10,F11,F2,F3,F4,F5,F6,F7,F8,F9,Root)\""),
        "{degraded}"
    );
    assert!(
        degraded.contains("{\"rung\":\"full\",\"reason\":\"budget exhausted: bdd ops budget exceeded: 2001 > 2000\"}"),
        "{degraded}"
    );
    assert!(
        degraded.contains("\"rung\":\"confound(Root)\""),
        "{degraded}"
    );
    // Degraded query answers are flagged.
    assert!(
        victim
            .iter()
            .any(|l| l.contains("\"request\":\"query\"") && l.contains("\"degraded\":true")),
        "{out}"
    );
    // Stats: the per-point counter names the exact lattice point; no
    // quarantine, one injected fault.
    let stats = out
        .lines()
        .find(|l| l.contains("\"request\":\"stats\""))
        .expect("stats response");
    assert!(
        stats.contains("\"degraded_points\":{\"project(F10,F11,F2,F3,F4,F5,F6,F7,F8,F9,Root)\":1}"),
        "{stats}"
    );
    assert!(stats.contains("\"faults_injected\":1"), "{stats}");
    assert!(stats.contains("\"quarantined\":[]"), "{stats}");
    // Uncached: the unbudgeted retry re-solves cold at full precision.
    assert!(
        victim.iter().any(|l| l.contains("\"solve\":\"cold\"")
            && l.contains("\"outcome\":\"complete\"")
            && l.contains("\"rung\":\"full\"")),
        "{out}"
    );
}

/// The healthy session is byte-identical under an injected budget
/// exhaustion, at multiple `--jobs` values.
#[test]
fn healthy_session_is_byte_identical_under_budget_exhaust() {
    let requests = std::fs::read_to_string(BUDGET_REQUESTS).unwrap();
    for jobs in ["1", "2"] {
        let baseline = serve(&["--jobs", jobs], &requests);
        let mut args = vec!["--jobs", jobs];
        args.extend_from_slice(BUDGET_FAULT);
        let faulted = serve(&args, &requests);
        assert_eq!(
            healthy_lines(&faulted),
            healthy_lines(&baseline),
            "healthy session diverged under budget-exhaust --jobs {jobs}"
        );
    }
}

/// A request naming an unknown feature in `keep_features` is rejected
/// with a structured error; the session keeps serving.
#[test]
fn unknown_keep_feature_is_a_structured_error() {
    let input = concat!(
        "{\"type\":\"load\",\"session\":\"s\",\"gen\":\"synthetic:4:120:7\"}\n",
        "{\"type\":\"analyze\",\"session\":\"s\",\"keep_features\":[\"NotAFeature\"]}\n",
        "{\"type\":\"analyze\",\"session\":\"s\",\"keep_features\":42}\n",
        "{\"type\":\"analyze\",\"session\":\"s\"}\n",
        "{\"type\":\"shutdown\"}\n",
    );
    let out = serve(&["--jobs", "1"], input);
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 5, "{out}");
    assert!(
        lines[1].contains("unknown feature `NotAFeature` in `keep_features`"),
        "{}",
        lines[1]
    );
    assert!(
        lines[2].contains("`keep_features` must be an array of feature-name strings"),
        "{}",
        lines[2]
    );
    assert!(
        lines[3].contains("\"outcome\":\"complete\"") && lines[3].contains("\"rung\":\"full\""),
        "{}",
        lines[3]
    );
}

/// Out-of-range numeric governance fields in requests are rejected with
/// structured errors instead of truncation or panic, and a valid
/// per-request budget degrades the solve (retrying with a bigger budget
/// then completes it — the retry-after-degrade path).
#[test]
fn per_request_budgets_validate_and_degrade() {
    let input = concat!(
        "{\"type\":\"load\",\"session\":\"s\",\"gen\":\"synthetic:4:120:7\"}\n",
        "{\"type\":\"analyze\",\"session\":\"s\",\"bdd_node_budget\":-3}\n",
        "{\"type\":\"analyze\",\"session\":\"s\",\"timeout_ms\":1.5}\n",
        "{\"type\":\"analyze\",\"session\":\"s\",\"max_propagations\":0}\n",
        "{\"type\":\"analyze\",\"session\":\"s\",\"bdd_op_budget\":\"many\"}\n",
        "{\"type\":\"analyze\",\"session\":\"s\",\"max_propagations\":5}\n",
        "{\"type\":\"analyze\",\"session\":\"s\"}\n",
        "{\"type\":\"shutdown\"}\n",
    );
    let out = serve(&["--jobs", "1"], input);
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 8, "{out}");
    assert!(
        lines[1].contains("`bdd_node_budget` must be a non-negative integer"),
        "{}",
        lines[1]
    );
    assert!(
        lines[2].contains("`timeout_ms` must be a non-negative integer"),
        "{}",
        lines[2]
    );
    assert!(
        lines[3].contains("`max_propagations` must be >= 1"),
        "{}",
        lines[3]
    );
    assert!(
        lines[4].contains("`bdd_op_budget` must be a non-negative integer"),
        "{}",
        lines[4]
    );
    // 5 propagations cannot finish any rung on this subject -> the
    // ladder itself aborts, with a structured error naming the limit.
    assert!(
        lines[5].contains("propagation limit 5 reached"),
        "{}",
        lines[5]
    );
    // The unrestricted retry completes at full precision.
    assert!(
        lines[6].contains("\"outcome\":\"complete\"") && lines[6].contains("\"rung\":\"full\""),
        "{}",
        lines[6]
    );
    assert!(lines[7].contains("shutdown"), "{}", lines[7]);
}
