//! The parallel phase-1 differential battery: solving with `threads`
//! 1/2/4/8 must produce *byte-identical* results for every analysis on
//! every benchmark subject.
//!
//! The parallel worklist (DESIGN.md §12) relies on the IDE fixpoint
//! being order-independent: jump/summary maps grow monotonically under
//! a commutative, associative, idempotent join, and BDD constraints
//! are canonical per manager, so any propagation schedule converges to
//! the same maps. These tests pin that argument end to end — each
//! solution is rendered to a canonical string (per-statement
//! reachability cube plus sorted `(fact, cube)` rows) and compared
//! across thread counts — and additionally run the §6.1 A2 crosscheck
//! with the threaded solver, so the parallel schedule is also checked
//! against the exhaustive per-configuration oracle.

use spllift::analyses::{PossibleTypes, ReachingDefs, TaintAnalysis, Typestate, UninitVars};
use spllift::benchgen::{subject_by_name, GeneratedSpl};
use spllift::features::{BddConstraintContext, FeatureExpr};
use spllift::ide::IdeSolverOptions;
use spllift::ifds::{Icfg, IfdsProblem};
use spllift::ir::{ClassId, ProgramIcfg};
use spllift::lift::{LiftedSolution, ModelMode};
use spllift::spl::crosscheck_with_options;
use std::fmt::Write as _;
use std::hash::Hash;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const SUBJECTS: [&str; 3] = ["MM08", "GPL", "Lampiro"];

fn options(threads: usize) -> IdeSolverOptions {
    IdeSolverOptions {
        threads,
        ..IdeSolverOptions::default()
    }
}

/// Solves and renders canonically: one line per statement with its
/// reachability cube, plus one line per `(fact, constraint-cube)` row
/// in fact order. Cube strings are canonical per BDD, so equal
/// renderings mean semantically identical solutions.
fn solve_rendered<'p, P, D>(
    icfg: &ProgramIcfg<'p>,
    problem: &P,
    ctx: &BddConstraintContext,
    model: Option<&FeatureExpr>,
    threads: usize,
) -> String
where
    P: IfdsProblem<ProgramIcfg<'p>, Fact = D> + Sync,
    D: Clone + Eq + Ord + Hash + std::fmt::Debug + Send + Sync,
{
    let solution = LiftedSolution::solve_with(
        problem,
        icfg,
        ctx,
        model,
        ModelMode::OnEdges,
        options(threads),
    );
    let mut out = String::new();
    for m in icfg.methods() {
        for s in icfg.stmts_of(m) {
            let _ = writeln!(
                out,
                "{s} reach {}",
                solution.reachability_of(s).to_cube_string()
            );
            let mut rows: Vec<(D, spllift::bdd::Bdd)> =
                solution.results_at(s).into_iter().collect();
            rows.sort_by(|a, b| a.0.cmp(&b.0));
            for (d, c) in rows {
                let _ = writeln!(out, "{s} {d:?} {}", c.to_cube_string());
            }
        }
    }
    out
}

/// Renders all five liftable analyses at `threads` and asserts each one
/// byte-identical to the `reference` produced at `threads == 1`.
fn check_subject(name: &str) {
    let spl = GeneratedSpl::generate(subject_by_name(name).expect("known subject"));
    let icfg = spl.icfg();
    let ctx = BddConstraintContext::new(&spl.table);
    let model = spl.model_expr();
    let model = Some(&model);
    // The typestate protocol from the fuzz campaign: the lattice may
    // stay empty on generated subjects, but the full lifted pipeline
    // still runs and must stay schedule-independent.
    let typestate = Typestate::new(ClassId(0), ["open"], ["close"], ["read"]);

    macro_rules! check {
        ($label:expr, $problem:expr) => {{
            let p = $problem;
            let reference = solve_rendered(&icfg, &p, &ctx, model, 1);
            assert!(!reference.is_empty(), "{name}/{}: empty rendering", $label);
            for threads in THREAD_COUNTS {
                let rendered = solve_rendered(&icfg, &p, &ctx, model, threads);
                assert_eq!(
                    rendered, reference,
                    "{name}/{}: threads = {threads} diverged from sequential",
                    $label
                );
            }
        }};
    }
    check!("taint", TaintAnalysis::secret_to_print());
    check!("types", PossibleTypes::new());
    check!("reaching-defs", ReachingDefs::new());
    check!("uninit", UninitVars::new());
    check!("typestate", typestate);
}

#[test]
fn mm08_all_analyses_thread_invariant() {
    check_subject(SUBJECTS[0]);
}

#[test]
fn gpl_all_analyses_thread_invariant() {
    check_subject(SUBJECTS[1]);
}

#[test]
fn lampiro_all_analyses_thread_invariant() {
    check_subject(SUBJECTS[2]);
}

/// The §6.1 bidirectional A2 crosscheck with the *threaded* solver:
/// beyond schedule-invariance, the parallel solve must agree with the
/// exhaustive configuration-by-configuration oracle in both directions
/// on every valid MM08 configuration.
#[test]
fn mm08_a2_crosscheck_with_threaded_solver() {
    let spl = GeneratedSpl::generate(subject_by_name("MM08").expect("known subject"));
    let configs = spl.valid_configurations();
    assert_eq!(configs.len(), 26);
    let icfg = spl.icfg();
    let ctx = BddConstraintContext::new(&spl.table);
    let model = spl.model_expr();

    macro_rules! crosscheck_threaded {
        ($label:expr, $problem:expr) => {{
            let m = crosscheck_with_options(
                &icfg,
                &$problem,
                &ctx,
                Some(&model),
                &configs,
                100,
                options(4),
            );
            assert!(m.is_empty(), "{} (threads = 4): {m:?}", $label);
        }};
    }
    crosscheck_threaded!("taint", TaintAnalysis::secret_to_print());
    crosscheck_threaded!("types", PossibleTypes::new());
    crosscheck_threaded!("reaching-defs", ReachingDefs::new());
    crosscheck_threaded!("uninit", UninitVars::new());
}
