//! Randomized three-way differential testing: for seeded random annotated
//! programs, compare
//!
//! 1. **SPLLIFT** (one lifted pass) against
//! 2. **A2** (the static oracle, per configuration) — both directions —
//!    and against
//! 3. **concrete execution** (the IR interpreter with real taint bits and
//!    uninitialized-read detection) — soundness direction.
//!
//! This is the workspace's widest net: it exercises the frontend-less IR
//! path, every lifted flow-function class, the BDD algebra, product
//! derivation, and the interpreter, on programs nobody hand-picked.

use spllift::analyses::{TaintAnalysis, TaintFact, UninitFact, UninitVars};
use spllift::benchgen::random_spl;
use spllift::features::{BddConstraintContext, Configuration};
use spllift::ir::interp::{run, Event, InterpConfig};
use spllift::ir::{Operand, ProgramIcfg, StmtKind};
use spllift::lift::{LiftedSolution, ModelMode};
use spllift::spl::crosscheck;

/// Sweep over feature-universe sizes. Each extra feature doubles the
/// number of configurations (and so the A2 / interpreter work per seed),
/// so the seed budget shrinks as the universe grows; the totals keep the
/// suite's wall-clock close to the old fixed `NFEATURES = 3, 60 seeds`
/// shape while covering the degenerate 1-feature case and the denser
/// 4-feature one.
fn sweep() -> impl Iterator<Item = (usize, u64)> {
    [(1usize, 24u64), (2, 20), (3, 40), (4, 10)]
        .into_iter()
        .flat_map(|(nfeatures, seeds)| (0..seeds).map(move |seed| (nfeatures, seed)))
}

#[test]
fn random_programs_crosscheck_against_a2() {
    for (nfeatures, seed) in sweep() {
        let spl = random_spl(seed, nfeatures, 3);
        let icfg = ProgramIcfg::new(&spl.program);
        let ctx = BddConstraintContext::new(&spl.table);
        let configs: Vec<_> = (0u64..(1 << nfeatures))
            .map(|b| Configuration::from_bits(b, nfeatures))
            .collect();
        let m = crosscheck(
            &icfg,
            &TaintAnalysis::secret_to_print(),
            &ctx,
            None,
            &configs,
        );
        assert!(
            m.is_empty(),
            "nfeatures {nfeatures} seed {seed} taint: {m:?}"
        );
        let m = crosscheck(&icfg, &UninitVars::new(), &ctx, None, &configs);
        assert!(
            m.is_empty(),
            "nfeatures {nfeatures} seed {seed} uninit: {m:?}"
        );
    }
}

#[test]
fn random_programs_dynamic_events_are_statically_predicted() {
    for (nfeatures, seed) in sweep() {
        let spl = random_spl(seed, nfeatures, 3);
        let icfg = ProgramIcfg::new(&spl.program);
        let ctx = BddConstraintContext::new(&spl.table);
        let taint = LiftedSolution::solve(
            &TaintAnalysis::secret_to_print(),
            &icfg,
            &ctx,
            None,
            ModelMode::Ignore,
        );
        let uninit =
            LiftedSolution::solve(&UninitVars::new(), &icfg, &ctx, None, ModelMode::Ignore);
        for bits in 0u64..(1 << nfeatures) {
            let config = Configuration::from_bits(bits, nfeatures);
            let product = spl.program.derive_product(&config);
            let trace = run(&product, &InterpConfig::secret_to_print());
            for event in &trace.events {
                match event {
                    Event::Leak(call) => {
                        let StmtKind::Invoke { args, .. } = &spl.program.stmt(*call).kind else {
                            panic!("nfeatures {nfeatures} seed {seed}: leak at non-call {call}");
                        };
                        let covered = args.iter().any(|a| {
                            matches!(a, Operand::Local(l)
                                if taint.holds_in(&ctx, *call, &TaintFact::Local(*l), &config))
                        });
                        assert!(
                            covered,
                            "nfeatures {nfeatures} seed {seed}: dynamic leak at {call} unpredicted, config {bits:b}"
                        );
                    }
                    Event::UninitRead(stmt, local) => {
                        assert!(
                            uninit.holds_in(
                                &ctx,
                                *stmt,
                                &UninitFact::Local(*local),
                                &config
                            ),
                            "nfeatures {nfeatures} seed {seed}: uninit read at {stmt} of {local} unpredicted, config {bits:b}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn random_programs_are_deterministic() {
    let a = random_spl(7, 3, 2);
    let b = random_spl(7, 3, 2);
    assert_eq!(a.program, b.program);
    let c = random_spl(8, 3, 2);
    assert_ne!(a.program, c.program);
}
